"""Shared helpers for the figure-regeneration benchmarks."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, **payload) -> None:
    """Write the gate's machine-readable ``BENCH_<name>.json`` at the
    repo root (see ``repro.bench.reporting.write_bench_json``)."""
    from repro.bench.reporting import write_bench_json

    path = write_bench_json(name, payload)
    print(f"[bench-json] {path}")
