"""Ablation: scan+projection traversal vs pointer chasing (§4.1).

The design choice DESIGN.md calls out: Beldi downloads a projected
skeleton of the whole chain in one query; the strawman walks NextRow
pointers with one round trip per row. The gap must widen with chain
length — this is why the linked DAAL stays cheap even before GC trims it.
"""

from conftest import emit, emit_json

from repro.bench.fig13_ops import traversal_ablation
from repro.bench.reporting import format_table

LENGTHS = (2, 10, 25, 50)


def test_traversal_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: traversal_ablation(chain_lengths=LENGTHS, samples=40),
        rounds=1, iterations=1)
    rows = [[rows_n, results[rows_n]["scan_p50"],
             results[rows_n]["chase_p50"],
             results[rows_n]["chase_p50"] / results[rows_n]["scan_p50"]]
            for rows_n in LENGTHS]
    emit("ablation_traversal", format_table(
        "Ablation — DAAL traversal median latency (virtual ms)",
        ["chain rows", "scan+projection", "pointer chase", "chase/scan"],
        rows))
    emit_json("ablation_traversal",
              latency_ms={str(n): results[n] for n in LENGTHS})

    # Pointer chasing degrades linearly with depth; the scan stays flat.
    shallow, deep = LENGTHS[0], LENGTHS[-1]
    scan_growth = (results[deep]["scan_p50"]
                   / results[shallow]["scan_p50"])
    chase_growth = (results[deep]["chase_p50"]
                    / results[shallow]["chase_p50"])
    assert chase_growth > 5.0, f"chase growth only {chase_growth}"
    assert scan_growth < 3.0, f"scan grew {scan_growth}"
    # At depth, the scan wins by a wide margin.
    assert (results[deep]["chase_p50"]
            > results[deep]["scan_p50"] * 3.0)
