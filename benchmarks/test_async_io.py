"""Async storage I/O ablation gate: overlap + batched log writes.

Runs the travel-style booking transaction (``bench/fig_async_io.py``)
under the four ``async_io`` x ``batch_log_writes`` settings and gates
the tentpole claims:

- both flags on cut request p50 by **>= 20%** versus both off (the
  acceptance bar; overlapped commit fan-out is most of it);
- ``$/op`` stays flat: neither flag may change billed request units —
  they collapse round trips and virtual time only;
- the batched claim path actually batches (``batch_write`` round trips
  appear, total round trips drop) without losing a single
  exactly-once effect;
- a replicated deployment (shards=2, replicas=3, eventual reads) runs
  the same workload with both flags on, correctly.
"""

from __future__ import annotations

from conftest import emit, emit_json

from repro.bench.fig_async_io import (
    N_KEYS,
    REQUESTS,
    ablation_table,
    run_ablation,
    run_point,
)


def test_async_io_ablation(benchmark):
    def run_all():
        points = run_ablation()
        replicated = run_point("on-on-r3", async_io=True,
                               batch_log_writes=True, replicas=3,
                               read_consistency="eventual")
        return points, replicated

    points, replicated = benchmark.pedantic(run_all, rounds=1,
                                            iterations=1)
    by_config = {point["config"]: point for point in points}
    text = ablation_table(points + [replicated])
    emit("async_io_ablation", text)
    emit_json("async_io", points=points + [replicated])

    baseline = by_config["off-off"]
    both = by_config["on-on"]
    for point in points + [replicated]:
        # No failures, and exactly-once effects everywhere: every
        # committed booking incremented every key exactly once.
        assert point["failures"] == 0
        assert point["completed"] == REQUESTS
        assert point["effects"] == [REQUESTS] * N_KEYS, point["config"]

    # The acceptance bar: both flags on cut p50 by at least 20%.
    reduction = 1.0 - both["p50_ms"] / baseline["p50_ms"]
    assert reduction >= 0.20, (
        f"p50 {baseline['p50_ms']:.1f} -> {both['p50_ms']:.1f} ms, "
        f"only {reduction:.0%} reduction")
    # Each flag alone already helps (or at worst is neutral).
    assert by_config["async-only"]["p50_ms"] < baseline["p50_ms"]
    assert by_config["batch-only"]["p50_ms"] <= baseline["p50_ms"]

    # $/op flat or better: the flags move time and round trips, never
    # billed units (batched writes bill identically to sequential ones).
    for point in points:
        assert point["dollars_per_op"] <= baseline["dollars_per_op"] * (
            1.0 + 1e-9), point["config"]

    # The batch path really batches: batch_write round trips appear and
    # the total round-trip count drops versus the sequential claims.
    assert by_config["batch-only"]["batch_writes"] > 0
    assert both["batch_writes"] > 0
    assert (by_config["batch-only"]["round_trips"]
            < baseline["round_trips"])
    # Overlap alone must not change what happens — only when: identical
    # round-trip mix, no batch writes.
    assert by_config["async-only"]["round_trips"] == baseline[
        "round_trips"]
    assert by_config["async-only"]["batch_writes"] == 0
