"""§7.3 "Other costs": storage, network, and request-cost overheads.

Paper's numbers (for orientation, their values/value sizes differ): a
20-row DAAL holding large values took ~8 MB; each op stores an extra
20-36 bytes of log+metadata; a 20-row scan fetches ~2 KB more than a
single-row read; each Beldi read adds one scan + one write, a write adds
at least one scan, an invoke adds one read and two writes; on-demand
pricing charges $2.5e-7 per read and $1.25e-6 per write unit.
"""

from conftest import emit, emit_json

from repro.bench.costs import measure_costs
from repro.bench.reporting import format_table


def test_costs_overhead(benchmark):
    costs = benchmark.pedantic(measure_costs, rounds=1, iterations=1)
    rows = [
        ["DAAL rows", costs["daal_rows"]],
        ["DAAL storage (bytes)", costs["daal_storage_bytes"]],
        ["scan+projection fetch (bytes)", costs["scan_projection_bytes"]],
        ["single-row fetch (bytes)", costs["single_row_bytes"]],
        ["baseline store ops / request", costs["baseline_total_ops"]],
        ["beldi store ops / request", costs["beldi_total_ops"]],
        ["baseline bytes written", costs["baseline_bytes_written"]],
        ["beldi bytes written", costs["beldi_bytes_written"]],
        ["baseline marginal $", f"{costs['baseline_dollars']:.2e}"],
        ["beldi marginal $", f"{costs['beldi_dollars']:.2e}"],
    ]
    emit("costs", format_table(
        "§7.3 — storage / network / request-cost overheads "
        "(1 read + 1 write + 1 condWrite + 1 invoke per mode)",
        ["metric", "value"], rows))
    emit_json("costs", **costs)

    # Beldi multiplies store operations: read -> scan+read+log-write,
    # write -> scan+cond-write, invoke -> log write + callback update...
    assert costs["beldi_total_ops"] >= costs["baseline_total_ops"] * 2
    # ...and therefore bytes and dollars.
    assert (costs["beldi_bytes_written"]
            > costs["baseline_bytes_written"])
    assert costs["beldi_dollars"] > costs["baseline_dollars"]
    # Per-op durable overhead lands in the paper's tens-of-bytes band
    # (log entry + metadata per op; ours carries slightly larger keys).
    per_op_extra = (costs["beldi_bytes_written"]
                    - costs["baseline_bytes_written"]) / 4
    assert 20 <= per_op_extra <= 400, f"per-op extra {per_op_extra}B"
    # The projected scan moves far less than the full rows would, but
    # more than a single-row point read (the paper's ~2 KB extra for 20
    # rows; ours is smaller because values are 16 B).
    assert (costs["scan_projection_bytes"]
            > costs["single_row_bytes"] / 2)
