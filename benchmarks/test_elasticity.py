"""Elasticity gate: live migration must recover skewed throughput.

Drives the Zipf(s=1.1) hot-key workload of ``repro.bench.fig_elasticity``
(24-user closed loop, 4 shards, bounded per-shard capacity, periodic GC)
twice — static consistent-hash placement vs ``elastic=True`` — and pins
the tentpole properties:

- elastic throughput >= 1.4x static on the identical request series;
- median latency falls;
- the *workload's* $/op stays flat (the migration traffic's own request
  units are metered separately by the migrator and excluded here, but
  asserted small);
- the per-shard load-imbalance summary (max/mean share, Gini) improves;
- every row ends up exactly where routing says it lives (no migration
  residue on any node).
"""

from __future__ import annotations

from conftest import emit, emit_json

from repro.bench.fig_elasticity import (
    elasticity_table,
    run_elasticity,
    shard_dashboards,
)


def test_elasticity_recovers_skewed_throughput():
    points = run_elasticity()
    emit("elasticity", elasticity_table(points))
    emit("elasticity_metering", shard_dashboards(points))
    emit_json("elasticity", static=points["static"],
              elastic=points["elastic"])
    static, elastic = points["static"], points["elastic"]

    # Identical, fully served request series in both placements.
    assert static["failures"] == elastic["failures"] == 0
    assert static["completed"] == elastic["completed"] > 0

    # The static run must actually exhibit the hot shard this gate is
    # about (otherwise the comparison is vacuous)...
    assert static["imbalance"]["max_mean"] >= 1.5, static["imbalance"]
    assert static["migrations"] == 0

    # ...and elasticity must recover the throughput it costs.
    speedup = elastic["throughput_rps"] / static["throughput_rps"]
    assert speedup >= 1.4, f"elastic speedup only {speedup:.2f}x"
    assert elastic["p50_ms"] < static["p50_ms"]

    # Chains actually moved, through the durable protocol.
    assert elastic["migrations"] > 0
    assert elastic["rows_moved"] > 0
    assert elastic["forwards"] > 0

    # $/op flat modulo the (separately metered) migration writes.
    assert elastic["migration_dollars"] > 0
    flat = abs(elastic["workload_dollars_per_op"]
               - static["workload_dollars_per_op"])
    assert flat <= 0.07 * static["workload_dollars_per_op"], (
        static["workload_dollars_per_op"],
        elastic["workload_dollars_per_op"])
    # The move itself is a bounded one-time cost, not a second workload.
    assert elastic["migration_dollars"] <= 0.15 * (
        elastic["dollars_per_op"] * elastic["completed"])

    # The dashboard's imbalance summary shows the recovery.
    assert (elastic["imbalance"]["max_mean"]
            < static["imbalance"]["max_mean"])
    assert elastic["imbalance"]["gini"] < static["imbalance"]["gini"]
    assert elastic["imbalance"]["max_mean"] <= 1.25

    # Placement invariant: after the run every row lives exactly where
    # the (forward-aware) ring routes it — no half-moved chains.
    assert static["residue"] == []
    assert elastic["residue"] == []
