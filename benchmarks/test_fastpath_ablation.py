"""DAAL fast-path ablation: tail caching + batched chain reads (§4.4).

Runs the Figure-13-style single-item read/write loop (pre-grown 20-row
chain, calibrated virtual latency) under each fast-path flag setting and
reports per-operation latency, store round trips, and request-unit
dollar cost. The headline claim this file gates:

    tail_cache ON cuts the per-op store *requests* — specifically the
    metered ``query`` count of skeleton traversals — by at least 40%
    versus OFF on the hot loop.

A second table ablates ``batch_reads`` on the transaction commit path
(shadow-tail fetches and GC liveness checks coalesce into
``batch_get`` round trips).
"""

from __future__ import annotations

from conftest import emit, emit_json

from repro.bench.fig13_ops import KEY, VALUE, _pre_grow_chain
from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.workload.recorder import LatencyRecorder

ROWS = 20
READS = 60
WRITES = 60
TXNS = 12


def _flags(tail_cache: bool, batch_reads: bool) -> BeldiConfig:
    return BeldiConfig(gc_t=1e12, tail_cache=tail_cache,
                       batch_reads=batch_reads)


def run_hot_loop(tail_cache: bool, seed: int = 41) -> dict:
    """The fig13-style loop: READS reads + WRITES writes of one item."""
    runtime = BeldiRuntime(seed=seed, latency_scale=1.0,
                           config=_flags(tail_cache, False))
    read_rec, write_rec = LatencyRecorder(), LatencyRecorder()

    def handler(ctx, payload):
        for _ in range(READS):
            start = ctx.platform_ctx.now
            ctx.read("kv", KEY)
            read_rec.record(0.0, ctx.platform_ctx.now - start)
        for i in range(WRITES):
            start = ctx.platform_ctx.now
            ctx.write("kv", KEY, f"{VALUE}-{i}")
            write_rec.record(0.0, ctx.platform_ctx.now - start)
        return "ok"

    ssf = runtime.register_ssf("bench", handler, tables=["kv"])
    table = ssf.env.data_table("kv")
    _pre_grow_chain(runtime.store, table, KEY, ROWS,
                    runtime.config.row_log_capacity)
    before = runtime.store.metering.copy()
    cost_before = runtime.store.metering.dollar_cost()
    runtime.run_workflow("bench")
    runtime.kernel.shutdown()
    delta = runtime.store.metering.diff(before)
    counts = {op: rec.count for op, rec in delta.items()}
    n_ops = READS + WRITES
    return {
        "queries": counts.get("query", 0),
        "round_trips": sum(counts.values()),
        "requests_per_op": sum(counts.values()) / n_ops,
        "read_p50": read_rec.p50,
        "write_p50": write_rec.p50,
        "dollars_per_op": (runtime.store.metering.dollar_cost()
                           - cost_before) / n_ops,
        "cache": runtime.tail_cache.stats.snapshot(),
    }


def run_txn_commits(tail_cache: bool, batch_reads: bool,
                    seed: int = 17) -> dict:
    """TXNS multi-key transactions; counts commit-path round trips.

    ``row_log_capacity=1`` plus two writes per key makes every shadow
    chain span multiple rows, so the commit phase has real tail fetches
    to coalesce (single-row shadows ride along with the index query).
    """
    config = _flags(tail_cache, batch_reads)
    config.row_log_capacity = 1
    runtime = BeldiRuntime(seed=seed, latency_scale=1.0, config=config)

    def transfer(ctx, payload):
        with ctx.transaction() as tx:
            a = ctx.read("accts", "a") or 0
            b = ctx.read("accts", "b") or 0
            c = ctx.read("accts", "c") or 0
            ctx.write("accts", "a", a)
            ctx.write("accts", "a", a - 1)
            ctx.write("accts", "b", b)
            ctx.write("accts", "b", b + 1)
            ctx.write("accts", "c", c)
            ctx.write("accts", "c", c)
        return tx.outcome

    ssf = runtime.register_ssf("transfer", transfer, tables=["accts"])
    for name in ("a", "b", "c"):
        ssf.env.seed("accts", name, 100)
    before = runtime.store.metering.copy()

    def client():
        for _ in range(TXNS):
            runtime.client_call("transfer", None)
            runtime.kernel.sleep(50.0)

    runtime.kernel.spawn(client)
    runtime.kernel.run()
    runtime.kernel.shutdown()
    delta = runtime.store.metering.diff(before)
    counts = {op: rec.count for op, rec in delta.items()}
    return {
        "queries": counts.get("query", 0),
        "gets": counts.get("read", 0),
        "batch_gets": counts.get("batch_get", 0),
        "round_trips": sum(counts.values()),
    }


def test_fastpath_ablation(benchmark):
    def run_all():
        hot = {on: run_hot_loop(on) for on in (False, True)}
        txn = {(tc, br): run_txn_commits(tc, br)
               for tc in (False, True) for br in (False, True)}
        return hot, txn

    hot, txn = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for on in (False, True):
        r = hot[on]
        rows.append([
            "on" if on else "off",
            r["queries"],
            r["round_trips"],
            round(r["requests_per_op"], 2),
            round(r["read_p50"], 2),
            round(r["write_p50"], 2),
            f"{r['dollars_per_op']:.2e}",
        ])
    text = format_table(
        f"Fast-path ablation — fig13-style loop ({READS}r+{WRITES}w, "
        f"{ROWS}-row DAAL)",
        ["tail_cache", "queries", "round trips", "req/op", "read p50",
         "write p50", "$/op"], rows)

    rows = []
    for (tc, br), r in sorted(txn.items()):
        rows.append([
            "on" if tc else "off",
            "on" if br else "off",
            r["queries"],
            r["gets"],
            r["batch_gets"],
            r["round_trips"],
        ])
    text += "\n" + format_table(
        f"Fast-path ablation — {TXNS} 3-key transactions (commit path)",
        ["tail_cache", "batch_reads", "queries", "gets", "batch_gets",
         "round trips"], rows)
    emit("fastpath_ablation", text)
    emit_json("fastpath_ablation",
              hot_loop={"on" if on else "off": r
                        for on, r in hot.items()},
              txn_commits={f"tc={'on' if tc else 'off'},"
                           f"br={'on' if br else 'off'}": r
                           for (tc, br), r in sorted(txn.items())})

    # Acceptance: tail cache ON cuts traversal queries by >= 40% on the
    # hot loop (it eliminates nearly all of them).
    assert hot[True]["queries"] <= 0.6 * hot[False]["queries"], (
        f"queries on={hot[True]['queries']} off={hot[False]['queries']}")
    # And the total store round trips (request-rate pressure) drop too.
    assert hot[True]["round_trips"] < hot[False]["round_trips"]
    # The cache must actually be hitting, not just bypassed.
    assert hot[True]["cache"]["tail_hits"] > 0
    # Latency: going straight to the tail is no slower, and the op mix
    # is strictly cheaper in request dollars.
    assert hot[True]["dollars_per_op"] < hot[False]["dollars_per_op"]

    # batch_reads coalesces commit-path reads into batch_get round trips
    # without changing the query budget of the tail cache setting.
    assert txn[(True, True)]["batch_gets"] > 0
    assert txn[(True, True)]["round_trips"] <= txn[(True, False)][
        "round_trips"]
    # Both flags together dominate the seed configuration.
    assert txn[(True, True)]["round_trips"] < txn[(False, False)][
        "round_trips"]
