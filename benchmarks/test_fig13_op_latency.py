"""Figure 13: median/p99 latency of Beldi's primitives, 20-row DAAL.

Paper's shape: every Beldi operation lands ~2-4x the baseline's median;
the cross-table-transaction variant pays ~2-2.5x Beldi's linked-DAAL cost
on writes but *less* than Beldi on reads (no chain scan).
"""

from conftest import emit, emit_json

from repro.bench.fig13_ops import OPS, measure_primitive_ops
from repro.bench.reporting import format_table

ROWS = 20


def run_measurement():
    return {mode: measure_primitive_ops(mode, rows=ROWS, samples=120,
                                        batch=10)
            for mode in ("baseline", "beldi", "crosstable")}


def test_fig13_primitive_latency(benchmark):
    results = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    rows = []
    for op in OPS:
        rows.append([
            op,
            results["baseline"][op]["p50"],
            results["baseline"][op]["p99"],
            results["beldi"][op]["p50"],
            results["beldi"][op]["p99"],
            results["crosstable"][op]["p50"],
            results["crosstable"][op]["p99"],
        ])
    emit("fig13", format_table(
        f"Figure 13 — primitive op latency (virtual ms), {ROWS}-row DAAL",
        ["op", "base p50", "base p99", "beldi p50", "beldi p99",
         "xtable p50", "xtable p99"], rows))
    emit_json("fig13", rows=ROWS, latency_ms=results)

    for op in OPS:
        base = results["baseline"][op]["p50"]
        beldi = results["beldi"][op]["p50"]
        ratio = beldi / base
        # "all of Beldi's operations are around 2-4x more expensive"
        assert 1.5 <= ratio <= 6.0, f"{op}: beldi/baseline p50 = {ratio}"
    # Cross-table transactions cost ~2-2.5x Beldi on the write path...
    for op in ("write", "cond_write"):
        ratio = (results["crosstable"][op]["p50"]
                 / results["beldi"][op]["p50"])
        assert 1.5 <= ratio <= 3.5, f"{op}: xtable/beldi p50 = {ratio}"
    # ...but less than Beldi on reads (no chain scan, §7.3).
    assert (results["crosstable"]["read"]["p50"]
            < results["beldi"]["read"]["p50"])
    # Invocation costs are storage-mode independent.
    invoke_ratio = (results["crosstable"]["invoke"]["p50"]
                    / results["beldi"]["invoke"]["p50"])
    assert 0.7 <= invoke_ratio <= 1.4
