"""Figure 14: movie review service, latency vs throughput.

Paper's shape: Beldi's median tracks the baseline at a 2-3.3x premium at
low load; the offered-load sweep drives the account into its concurrency
cap where achieved throughput plateaus and the gateway rejects the rest.
Scaled ~10x down from the paper's 100-800 req/s @ 1,000-Lambda setup
(see EXPERIMENTS.md).
"""

from conftest import emit, emit_json

from repro.bench.fig1415_apps import app_sweep
from repro.bench.reporting import format_table

RATES = (10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 110.0)
APP_KWARGS = {"n_movies": 40, "n_users": 40}


def run_sweeps():
    return {
        mode: app_sweep("movie", mode, rates=RATES, duration_ms=4_000.0,
                        warmup_ms=1_000.0, app_kwargs=APP_KWARGS)
        for mode in ("baseline", "beldi")
    }


def test_fig14_movie_review_sweep(benchmark):
    curves = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = []
    for base_row, beldi_row in zip(curves["baseline"], curves["beldi"]):
        rows.append([
            base_row["offered_rps"],
            base_row["achieved_rps"], base_row["p50_ms"],
            base_row["p99_ms"],
            beldi_row["achieved_rps"], beldi_row["p50_ms"],
            beldi_row["p99_ms"],
        ])
    emit("fig14", format_table(
        "Figure 14 — movie review: latency vs throughput "
        "(virtual ms / req/s)",
        ["offered", "base rps", "base p50", "base p99",
         "beldi rps", "beldi p50", "beldi p99"], rows))
    emit_json("fig14", rates=list(RATES), curves=curves)

    low_base = curves["baseline"][0]
    low_beldi = curves["beldi"][0]
    # Both systems deliver the offered load when unsaturated.
    assert low_base["achieved_rps"] >= RATES[0] * 0.9
    assert low_beldi["achieved_rps"] >= RATES[0] * 0.9
    # Low-load median premium in the paper's 2-3.3x band (we allow up to
    # 4x: our baseline has no real HTTP stack under it).
    ratio = low_beldi["p50_ms"] / low_base["p50_ms"]
    assert 1.5 <= ratio <= 4.5, f"low-load median ratio {ratio}"
    # Beldi hits the concurrency-cap knee within the sweep: achieved
    # throughput plateaus while offered keeps growing.
    final = curves["beldi"][-1]
    assert final["rejected"] > 0
    assert final["achieved_rps"] < RATES[-1] * 0.75
    plateau = [r["achieved_rps"] for r in curves["beldi"][-3:]]
    assert max(plateau) / max(1e-9, min(plateau)) < 1.6
    # The baseline saturates later (it occupies each Lambda for less
    # time), and its ceiling is higher than Beldi's.
    assert (curves["baseline"][-1]["achieved_rps"]
            > final["achieved_rps"] * 1.5)
    # Median latency stays stable for admitted requests (the gateway
    # sheds the excess), matching the paper's flat-then-reject shape.
    assert final["p50_ms"] < low_beldi["p50_ms"] * 2.5
