"""Figure 15: travel reservation, latency vs throughput — plus the §7.4
"Beldi without transactions" configuration.

Paper's shape: same as Fig. 14, but the reserve path runs a cross-SSF
transaction; at saturation Beldi-with-txn's median is the highest (~3.3x
baseline), and disabling transactions recovers ~16% median / ~20% p99.
The baseline returns inconsistent results (no atomicity across the hotel
and flight) — quantified here by the capacity-mismatch count.
"""

from conftest import emit, emit_json

from repro.bench.fig1415_apps import _build, app_sweep
from repro.bench.reporting import format_table
from repro.workload import run_constant_load

RATES = (10.0, 20.0, 30.0, 40.0, 60.0, 80.0)
APP_KWARGS = {"n_hotels": 50, "n_flights": 50, "n_users": 30}


def run_sweeps():
    curves = {}
    curves["baseline"] = app_sweep("travel", "baseline", rates=RATES,
                                   duration_ms=4_000.0, warmup_ms=1_000.0,
                                   app_kwargs=APP_KWARGS)
    curves["beldi"] = app_sweep("travel", "beldi", rates=RATES,
                                duration_ms=4_000.0, warmup_ms=1_000.0,
                                app_kwargs=APP_KWARGS)
    no_txn = dict(APP_KWARGS)
    no_txn["transactional"] = False
    curves["beldi_notxn"] = app_sweep("travel", "beldi", rates=RATES,
                                      duration_ms=4_000.0,
                                      warmup_ms=1_000.0,
                                      app_kwargs=no_txn)
    return curves


def test_fig15_travel_sweep(benchmark):
    curves = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = []
    for base, beldi, notxn in zip(curves["baseline"], curves["beldi"],
                                  curves["beldi_notxn"]):
        rows.append([
            base["offered_rps"],
            base["achieved_rps"], base["p50_ms"], base["p99_ms"],
            beldi["achieved_rps"], beldi["p50_ms"], beldi["p99_ms"],
            notxn["p50_ms"], notxn["p99_ms"],
        ])
    emit("fig15", format_table(
        "Figure 15 — travel reservation: latency vs throughput "
        "(virtual ms / req/s); right columns: Beldi w/o transactions",
        ["offered", "base rps", "base p50", "base p99", "beldi rps",
         "beldi p50", "beldi p99", "notxn p50", "notxn p99"], rows))
    emit_json("fig15", rates=list(RATES), curves=curves)

    low_base, low_beldi = curves["baseline"][0], curves["beldi"][0]
    ratio = low_beldi["p50_ms"] / low_base["p50_ms"]
    assert 1.5 <= ratio <= 4.5, f"low-load median ratio {ratio}"
    # Beldi saturates within the sweep; the baseline's ceiling is higher.
    final = curves["beldi"][-1]
    assert final["rejected"] > 0
    assert (curves["baseline"][-1]["achieved_rps"]
            > final["achieved_rps"] * 1.5)
    # §7.4: dropping transactions makes the app cheaper (the paper
    # measures ~16% median / ~20% p99 at saturation).
    txn_p50 = [r["p50_ms"] for r in curves["beldi"]]
    notxn_p50 = [r["p50_ms"] for r in curves["beldi_notxn"]]
    assert sum(notxn_p50) < sum(txn_p50)
    saved = 1 - (notxn_p50[-1] / txn_p50[-1])
    assert 0.0 <= saved <= 0.5, f"no-txn median saving {saved:.0%}"


def test_fig15_baseline_is_inconsistent(benchmark):
    """The control the paper states in §7.2/§7.4: without Beldi, hotel
    and flight bookings are not atomic, so concurrent sold-out races
    leave mismatched capacity consumption."""
    def run():
        runtime, entry, _sample = _build(
            "travel", "baseline", seed=71, concurrency=100,
            app_kwargs={"n_hotels": 2, "n_flights": 2,
                        "rooms_per_hotel": 3, "seats_per_flight": 3,
                        "n_users": 5})
        result = run_constant_load(
            runtime, entry,
            lambda rand: {
                "action": "reserve",
                "user": "user-0000",
                "hotel": f"hotel-{rand.randint(0, 1):04d}",
                "flight": f"flight-{rand.randint(0, 1):04d}"},
            rate_rps=40.0, duration_ms=2_000.0, seed=5)
        # Capacity actually consumed on each side:
        hotel_env = runtime.envs["reserve_hotel"]
        flight_env = runtime.envs["reserve_flight"]
        rooms = sum(hotel_env.peek("inventory", f"hotel-{i:04d}")
                    ["available"] for i in range(2))
        seats = sum(flight_env.peek("seats", f"flight-{i:04d}")
                    ["available"] for i in range(2))
        runtime.kernel.shutdown()
        return result.completed, rooms, seats

    completed, rooms, seats = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    emit("fig15_inconsistency",
         f"Baseline travel inconsistency: {completed} reserves "
         f"completed; rooms left {rooms}, seats left {seats} "
         f"(equal capacity was provisioned on both sides)")
    emit_json("fig15_inconsistency", completed=completed,
              rooms_left=rooms, seats_left=seats)
    # Far more requests than capacity: both inventories drain to 0, but
    # the non-atomic baseline 'succeeds' anyway (inconsistent bookings) —
    # in a transactional system overall bookings could never exceed
    # min(total rooms, total seats) = 6, yet >6 requests reported ok.
    assert completed > 6
    assert rooms == 0 and seats == 0
