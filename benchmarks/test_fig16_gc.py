"""Figure 16: effect of garbage collection on a hot-key write SSF.

Paper's shape: without GC the linked DAAL grows and median response time
climbs steadily; with the GC triggered periodically (the paper tries 1,
10, and 30-minute triggers) latency stays flat regardless of the choice;
the cross-table-transaction variant is flat too but pays its constant
premium on every write.

Time is scaled 10x: the paper's 60-minute run becomes 6 virtual minutes,
and its 1/10/30-minute triggers become 6/60/180 virtual seconds.
"""

from conftest import emit, emit_json

from repro.bench.fig16_gc import gc_timeseries
from repro.bench.reporting import format_series

DURATION = 360_000.0
BUCKET = 30_000.0
CONFIGS = {
    "without GC": dict(gc_period_ms=None),
    "with GC (1 min)": dict(gc_period_ms=6_000.0),
    "with GC (10 min)": dict(gc_period_ms=60_000.0),
    "with GC (30 min)": dict(gc_period_ms=180_000.0),
    "cross-table txn": dict(gc_period_ms=None, mode="crosstable"),
}


def run_all():
    return {label: gc_timeseries(duration_ms=DURATION, bucket_ms=BUCKET,
                                 rate_rps=20.0, **kwargs)
            for label, kwargs in CONFIGS.items()}


def test_fig16_gc_effect(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("fig16", format_series(
        "Figure 16 — median write-SSF response vs time (virtual ms), "
        "10x time scale",
        {label: r["series"] for label, r in results.items()}))
    emit_json("fig16", series={label: r["series"]
                               for label, r in results.items()},
              p50_ms={label: r["p50"] for label, r in results.items()},
              final_chain_rows={label: r["final_chain_rows"]
                                for label, r in results.items()})

    def first_last(label):
        series = results[label]["series"]
        return series[0][1], series[-1][1]

    # Without GC the chain grows and the median climbs markedly.
    start, no_gc_end = first_last("without GC")
    assert no_gc_end > start * 1.5, f"no-GC grew {start} -> {no_gc_end}"
    assert results["without GC"]["final_chain_rows"] > 100
    # A frequent GC keeps latency flat...
    start, end = first_last("with GC (1 min)")
    assert end < start * 1.35, f"1-min GC grew {start} -> {end}"
    assert results["with GC (1 min)"]["final_chain_rows"] < 40
    # ...a 10-minute trigger plateaus well below the uncollected line...
    _, end_10 = first_last("with GC (10 min)")
    assert end_10 < no_gc_end * 0.85, f"10-min GC ended at {end_10}"
    # ...and the 30-minute trigger completes only one collection inside
    # the (scaled) window, so it merely must not exceed no-GC (the
    # paper's 60-minute window shows the same first-collection lag).
    _, end_30 = first_last("with GC (30 min)")
    assert end_30 <= no_gc_end * 1.1
    # Cross-table is flat but strictly costlier than collected Beldi.
    start, end = first_last("cross-table txn")
    assert end < start * 1.35
    assert (results["cross-table txn"]["p50"]
            > results["with GC (1 min)"]["p50"])
