"""Figure 25 (Appendix C): Fig. 13's measurement with a 5-row DAAL.

The paper's optimistic setting: shorter chains, slightly cheaper Beldi
reads/writes, same qualitative ordering.
"""

from conftest import emit, emit_json

from repro.bench.fig13_ops import OPS, measure_primitive_ops
from repro.bench.reporting import format_table

ROWS = 5


def run_measurement():
    return {mode: measure_primitive_ops(mode, rows=ROWS, samples=120,
                                        batch=10)
            for mode in ("baseline", "beldi", "crosstable")}


def test_fig25_primitive_latency_5row(benchmark):
    results = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    rows = []
    for op in OPS:
        rows.append([
            op,
            results["baseline"][op]["p50"],
            results["baseline"][op]["p99"],
            results["beldi"][op]["p50"],
            results["beldi"][op]["p99"],
            results["crosstable"][op]["p50"],
            results["crosstable"][op]["p99"],
        ])
    emit("fig25", format_table(
        f"Figure 25 — primitive op latency (virtual ms), {ROWS}-row DAAL",
        ["op", "base p50", "base p99", "beldi p50", "beldi p99",
         "xtable p50", "xtable p99"], rows))
    emit_json("fig25", rows=ROWS, latency_ms=results)

    for op in OPS:
        ratio = (results["beldi"][op]["p50"]
                 / results["baseline"][op]["p50"])
        assert 1.5 <= ratio <= 6.0, f"{op}: beldi/baseline p50 = {ratio}"
    # A 5-row chain must not cost more to operate on than a 20-row one:
    # compare reads against the Fig. 13 configuration.
    deep = measure_primitive_ops("beldi", rows=20, samples=60, batch=10)
    assert results["beldi"]["read"]["p50"] <= deep["read"]["p50"] * 1.1
