"""Figure 26 (Appendix C): social media site, latency vs throughput.

Same shape as Fig. 14; the compose path additionally exercises
asynchronous fan-out to follower home timelines.
"""

from conftest import emit, emit_json

from repro.bench.fig1415_apps import app_sweep
from repro.bench.reporting import format_table

RATES = (10.0, 20.0, 30.0, 40.0, 60.0, 80.0)
APP_KWARGS = {"n_users": 40, "followers_per_user": 5}


def run_sweeps():
    return {
        mode: app_sweep("social", mode, rates=RATES, duration_ms=4_000.0,
                        warmup_ms=1_000.0, app_kwargs=APP_KWARGS)
        for mode in ("baseline", "beldi")
    }


def test_fig26_social_sweep(benchmark):
    curves = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    rows = []
    for base_row, beldi_row in zip(curves["baseline"], curves["beldi"]):
        rows.append([
            base_row["offered_rps"],
            base_row["achieved_rps"], base_row["p50_ms"],
            base_row["p99_ms"],
            beldi_row["achieved_rps"], beldi_row["p50_ms"],
            beldi_row["p99_ms"],
        ])
    emit("fig26", format_table(
        "Figure 26 — social media: latency vs throughput "
        "(virtual ms / req/s)",
        ["offered", "base rps", "base p50", "base p99",
         "beldi rps", "beldi p50", "beldi p99"], rows))
    emit_json("fig26", rates=list(RATES), curves=curves)

    low_base, low_beldi = curves["baseline"][0], curves["beldi"][0]
    assert low_base["achieved_rps"] >= RATES[0] * 0.9
    assert low_beldi["achieved_rps"] >= RATES[0] * 0.9
    ratio = low_beldi["p50_ms"] / low_base["p50_ms"]
    assert 1.5 <= ratio <= 4.5, f"low-load median ratio {ratio}"
    final = curves["beldi"][-1]
    assert final["rejected"] > 0
    assert (curves["baseline"][-1]["achieved_rps"]
            > final["achieved_rps"] * 1.2)
