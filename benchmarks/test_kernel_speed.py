"""Kernel perf-floor gate: the event loop may not quietly regress.

Two micro-benchmarks pin the substrate's raw speed after the
baton-passing dispatch refactor (ISSUE 9):

- **timer storm** — N processes x M sleeps each, nothing but kernel
  handoffs. This is the pure event-loop number; the baton-passing
  kernel measures ~75-90k events/s on dev hardware (~1.8x the
  driver-loop design it replaced).
- **DAAL op loop** — a closed-loop profile workload (one exactly-once
  read + one exactly-once write per request) on a single-shard
  runtime: the end-to-end hot path the open-loop sweep leans on
  (kernel + latency draws + capacity + store + protocol bookkeeping).

The floors sit ~4x under measured dev-hardware numbers so slow CI
runners pass, while an accidental O(n) regression (per-event
allocation creep, a lost fast path) still fails loudly.
Results land in ``BENCH_kernel_speed.json``.
"""

from __future__ import annotations

import time

from conftest import emit, emit_json

from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.sim.kernel import SimKernel
from repro.workload import run_closed_loop

#: events/sec floor for the pure timer storm (dev hardware: ~75-90k).
STORM_FLOOR = 18_000.0
#: requests/sec floor for the DAAL op loop (dev hardware: ~1.5-1.7k).
OP_LOOP_FLOOR = 350.0


def _timer_storm(n_procs: int, n_sleeps: int) -> dict:
    kernel = SimKernel(seed=1)

    def body() -> None:
        sleep = kernel.sleep
        for _ in range(n_sleeps):
            sleep(1.0)

    for i in range(n_procs):
        kernel.spawn(body, name=f"storm-{i}")
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    kernel.shutdown()
    events = n_procs * n_sleeps
    return {
        "procs": n_procs,
        "sleeps": n_sleeps,
        "events": events,
        "seconds": round(elapsed, 3),
        "events_per_sec": events / elapsed,
    }


def _daal_op_loop(n_users: int = 16, requests_per_user: int = 125) -> dict:
    runtime = BeldiRuntime(
        seed=7, latency_scale=1.0, config=BeldiConfig(gc_t=1e12),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=1, elastic=False)

    def profile(ctx, payload):
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        ctx.write("profiles", uid, {"visits": record["visits"] + 1})
        return record

    ssf = runtime.register_ssf("profile", profile, tables=["profiles"])
    for i in range(n_users):
        ssf.env.seed("profiles", f"u{i}", {"visits": 0})
    start = time.perf_counter()
    result = run_closed_loop(
        runtime, "profile",
        [[{"user": f"u{i}"}] * requests_per_user for i in range(n_users)])
    elapsed = time.perf_counter() - start
    runtime.stop_collectors()
    runtime.kernel.shutdown()
    assert result.failures == 0
    return {
        "users": n_users,
        "completed": result.completed,
        "seconds": round(elapsed, 3),
        "requests_per_sec": result.completed / elapsed,
    }


def test_kernel_speed_floor():
    storms = [_timer_storm(10, 5000), _timer_storm(200, 250),
              _timer_storm(1000, 50)]
    ops = _daal_op_loop()

    rows = [[f"storm {s['procs']}x{s['sleeps']}", s["events"],
             s["seconds"], round(s["events_per_sec"])] for s in storms]
    rows.append([f"daal-ops {ops['users']} users", ops["completed"],
                 ops["seconds"], round(ops["requests_per_sec"])])
    emit("kernel_speed", format_table(
        "Kernel speed — baton-passing dispatch",
        ["workload", "units", "seconds", "units/sec"], rows))
    emit_json("kernel_speed", storms=storms, op_loop=ops,
              floors={"storm_events_per_sec": STORM_FLOOR,
                      "op_loop_requests_per_sec": OP_LOOP_FLOOR})

    # Gate on the *best* storm so a noisy CI core doesn't flake the
    # fleet-size-dependent variants; a real event-loop regression slows
    # every variant at once.
    best_storm = max(s["events_per_sec"] for s in storms)
    assert best_storm >= STORM_FLOOR, (
        f"timer storm at {best_storm:,.0f} events/s — the event loop "
        f"regressed below the {STORM_FLOOR:,.0f} floor")
    assert ops["requests_per_sec"] >= OP_LOOP_FLOOR, (
        f"DAAL op loop at {ops['requests_per_sec']:,.0f} req/s — the "
        f"hot path regressed below the {OP_LOOP_FLOOR:,.0f} floor")
