"""Observability overhead gate: tracing must be free in virtual time.

Runs the Figure-15 travel-reservation point (transactional reserve path,
seed-faithful Beldi configuration) twice — ``observability`` off and on —
and pins the tentpole's cost contract:

- p50 overhead is gated at <= 10%; because the tracer only *records*
  the virtual clock and never advances it, the latencies are in fact
  expected to be *identical*, which is asserted too;
- exactly $0.00 extra per op: the tracer issues no store requests, so
  the metered request bill must not move by a single unit;
- the traced run really did trace (spans exist and validate).
"""

from __future__ import annotations

from conftest import emit, emit_json

from repro.bench.fig1415_apps import _build
from repro.bench.reporting import format_table
from repro.workload import run_constant_load

RATE = 30.0
DURATION_MS = 4_000.0
WARMUP_MS = 1_000.0
APP_KWARGS = {"n_hotels": 50, "n_flights": 50, "n_users": 30}


def run_point(observability: bool) -> dict:
    runtime, entry, sample = _build(
        "travel", "beldi", seed=71, concurrency=100,
        app_kwargs=APP_KWARGS,
        config_overrides={"observability": observability})
    result = run_constant_load(runtime, entry, sample, RATE,
                               DURATION_MS, warmup_ms=WARMUP_MS, seed=71)
    row = result.row()
    row["dollars_per_op"] = (runtime.store.metering.dollar_cost()
                             / max(result.completed, 1))
    row["trace_events"] = (len(runtime.obs.tracer.records)
                           if runtime.obs is not None else 0)
    if runtime.obs is not None:
        from repro.obs.tracer import validate_chrome_trace
        row["trace_problems"] = len(
            validate_chrome_trace(runtime.obs.tracer.to_chrome()))
    runtime.stop_collectors()
    runtime.kernel.shutdown()
    return row


def test_obs_overhead(benchmark):
    def run_both():
        return {"off": run_point(False), "on": run_point(True)}

    points = benchmark.pedantic(run_both, rounds=1, iterations=1)
    off, on = points["off"], points["on"]
    rows = [[label, r["completed"], r["p50_ms"], r["p99_ms"],
             f"{r['dollars_per_op']:.3e}", r["trace_events"]]
            for label, r in points.items()]
    emit("obs_overhead", format_table(
        "Observability overhead — fig15 travel point "
        f"({RATE:.0f} req/s, virtual ms)",
        ["observability", "completed", "p50", "p99", "$/op",
         "trace events"], rows))
    emit_json("obs_overhead", rate=RATE, off=off, on=on)

    # Both runs completed the same workload.
    assert on["completed"] == off["completed"] > 0
    assert on["errors"] == off["errors"] == 0

    # Gate: <= 10% p50 overhead... in fact the virtual clock never
    # moves for tracing, so every percentile matches exactly.
    assert on["p50_ms"] <= 1.10 * off["p50_ms"]
    assert on["p50_ms"] == off["p50_ms"]
    assert on["p99_ms"] == off["p99_ms"]

    # Exactly $0.00 extra per op: the tracer makes no store requests.
    assert on["dollars_per_op"] == off["dollars_per_op"]

    # And the traced run actually produced a valid trace.
    assert off["trace_events"] == 0
    assert on["trace_events"] > 1000
    assert on["trace_problems"] == 0
