"""Open-loop RPS-sweep gate: >= 10^5 requests, knee identified.

Runs the full latency-vs-offered-RPS sweep of
``repro.bench.fig_open_loop`` at the sharded/replicated/elastic
topology and gates the properties every later scale claim builds on:

- the sweep offers at least 10^5 simulated requests in one run (the
  ROADMAP's open-loop scale step — only possible post kernel speed
  pass);
- a saturation knee is *identified*, not extrapolated: some swept rate
  is cleanly unsaturated and some later rate is cleanly saturated;
- below the knee the system keeps up (goodput ~ offered, nothing shed);
- past the knee the admission window sheds instead of collapsing:
  goodput stays within a band of its peak even at 10x the knee rate,
  and everything still completes error-free;
- $/op stays flat-ish across the curve (backpressure must not silently
  inflate the bill of the work that *is* served).

``OPEN_LOOP_RATES`` / ``OPEN_LOOP_DURATION_MS`` shrink the sweep for
CI smoke jobs; size-dependent gates relax automatically there.
"""

from __future__ import annotations

import os

from conftest import emit, emit_json

from repro.bench.fig_open_loop import RATES, run_sweep, sweep_table

_ENV_RATES = os.environ.get("OPEN_LOOP_RATES")
_ENV_DURATION = os.environ.get("OPEN_LOOP_DURATION_MS")
SMOKE = bool(_ENV_RATES or _ENV_DURATION)


def test_open_loop_sweep():
    rates = (tuple(float(r) for r in _ENV_RATES.split(","))
             if _ENV_RATES else RATES)
    duration_ms = float(_ENV_DURATION) if _ENV_DURATION else 25_000.0
    sweep = run_sweep(rates=rates, duration_ms=duration_ms)
    emit("open_loop", sweep_table(sweep))
    emit_json("open_loop", **sweep)

    points = sweep["points"]
    knee = sweep["knee"]

    # Scale: the full sweep pushes >= 10^5 simulated requests.
    if not SMOKE:
        assert sweep["total_arrivals"] >= 100_000, (
            f"sweep offered only {sweep['total_arrivals']} requests")

    # The knee is bracketed inside the sweep: at least one rate held and
    # at least one later rate saturated.
    assert knee["knee_rps"] is not None, "no unsaturated point in sweep"
    assert knee["saturated_at"] is not None, (
        "sweep never saturated — extend the rate range")
    assert knee["knee_rps"] < knee["saturated_at"]

    by_rate = {p["offered_rps"]: p for p in points}
    at_knee = by_rate[knee["knee_rps"]]
    baseline = points[0]

    # Below the knee: the system keeps up with the offered load
    # (measured against realized arrivals, so Poisson count noise in
    # short smoke sweeps cannot flake the gate).
    assert at_knee["completed"] >= 0.95 * at_knee["offered"]
    assert baseline["shed"] == 0 and baseline["errors"] == 0

    # Every point completed its served work error-free: overload shows
    # up as shedding (accounted), never as crashes or timeouts.
    for point in points:
        assert point["errors"] == 0, f"errors at {point['offered_rps']} RPS"

    # Past the knee the admission window actually worked: the top rate
    # shed traffic rather than queueing without bound, and goodput did
    # not collapse (>= 70% of the best observed goodput).
    top = points[-1]
    if top["offered_rps"] > (knee["saturated_at"] or 0):
        assert top["shed"] > 0, "saturated point shed nothing"
        best = max(p["goodput_rps"] for p in points)
        assert top["goodput_rps"] >= 0.7 * best, (
            f"goodput collapsed past the knee: {top['goodput_rps']} "
            f"vs best {best}")

    # Cost discipline: serving under overload must not inflate $/op of
    # the requests actually served by more than 25%.
    base_cost = baseline["dollars_per_op"]
    for point in points:
        assert point["dollars_per_op"] <= 1.25 * base_cost, (
            f"$/op inflated at {point['offered_rps']} RPS")
