"""Replication gate: eventual follower reads must pay for themselves.

Drives the read-heavy feed workload of ``repro.bench.fig_replication``
across the three consistency configurations and pins the subsystem's
headline properties:

1. **Pricing** — with ``read_consistency="eventual"`` the follower
   reads cut read-$/op by at least 30% versus the strong baseline
   (DynamoDB's 1x-vs-2x read pricing, realized).
2. **Correctness isolation** — every DAAL/protocol read stayed on the
   leader: no intent/log/lockset/shadow table ever appears in the
   eventual-read metering books, and the workload's results are
   identical across configurations.
3. **Zero-cost when unused** — replication enabled with strong reads
   (``strong-r3``) reproduces the unreplicated numbers exactly, and
   eventual reads at lag 0 do not regress p50 read latency.
"""

from __future__ import annotations

from conftest import emit, emit_json

from repro.bench.fig_replication import (
    protocol_tables_served_eventual,
    replication_table,
    run_replication,
)


def test_replication_gate():
    points = run_replication()
    emit("replication", replication_table(points))
    emit_json("replication", points=points)
    by_config = {p["config"]: p for p in points}
    strong = by_config["strong-r1"]
    strong_repl = by_config["strong-r3"]
    eventual = by_config["eventual-r3"]

    # Every configuration completed the whole workload, error-free, and
    # saw exactly the same data (equal correctness at lag 0).
    for point in points:
        assert point["failures"] == 0
        assert point["completed"] == strong["completed"]
        assert point["probe"] == strong["probe"]

    # 1. Eventual follower reads cut read-$/op by >= 30%.
    cut = 1.0 - (eventual["read_dollars_per_op"]
                 / strong["read_dollars_per_op"])
    assert cut >= 0.30, f"eventual reads cut read-$ only {cut:.0%}"

    # 2. All correctness-critical reads stayed leader-routed: only the
    # app's data table may serve eventual reads.
    assert strong["eventual_reads"] == 0
    assert strong["eventual_tables"] == {}
    assert eventual["eventual_reads"] > 0
    assert protocol_tables_served_eventual(eventual) == [], (
        f"protocol reads escaped the leader: "
        f"{protocol_tables_served_eventual(eventual)}")
    assert set(eventual["eventual_tables"]) == {"feed.articles"}

    # 3a. Replication enabled but unused is free: the leader's latency
    # and metering streams are untouched, so strong-r3 == strong-r1.
    assert strong_repl["p50_ms"] == strong["p50_ms"]
    assert strong_repl["throughput_rps"] == strong["throughput_rps"]
    assert strong_repl["read_dollars_per_op"] == (
        strong["read_dollars_per_op"])

    # 3b. At lag 0, routing reads to followers does not regress the
    # median (same latency distributions, different streams).
    assert eventual["p50_ms"] <= 1.05 * strong["p50_ms"], (
        f"p50 regressed: {eventual['p50_ms']:.1f} vs "
        f"{strong['p50_ms']:.1f} ms")

    # Replication actually happened: every write shipped to followers.
    assert eventual["shipped"] > 0 and strong_repl["shipped"] > 0
