"""Resilience-under-incident gate: a dark shard must not sink goodput.

Runs ``repro.bench.fig_resilience`` — the 2x2 of resilience on/off x
incident/fault-free at a sub-knee open-loop rate, with shard 0 dark for
20% of the measured window — and gates the PR's three claims:

- arrivals *during* the outage complete at >= 3x the goodput of the
  flags-off run (retry/backoff + breaker + post-heal completion vs raw
  ``UnavailableError`` propagation);
- the post-recovery phase drains: its p99 stays within a small multiple
  of the fault-free p99 instead of smearing across the rest of the run;
- fault-free, the layer costs nothing: $/op within 10% of flags-off
  (bit-for-bit identical in practice) and zero failed requests.

``RESILIENCE_RATE`` / ``RESILIENCE_DURATION_MS`` shrink the run for CI
smoke; the dark window scales with the duration so every phase keeps
enough arrivals to gate on.
"""

from __future__ import annotations

import os

from conftest import emit, emit_json

from repro.bench.fig_resilience import figure_table, run_figure

RATE = float(os.environ.get("RESILIENCE_RATE", "60"))
DURATION_MS = float(os.environ.get("RESILIENCE_DURATION_MS", "20000"))


def test_resilience_figure():
    figure = run_figure(rate=RATE, duration_ms=DURATION_MS)
    emit("resilience", figure_table(figure))
    emit_json("resilience", **figure)

    runs = figure["runs"]
    incident = runs["incident"]
    raw = runs["raw"]

    # The incident actually bit the flags-off run: mid-window arrivals
    # failed raw, and enough survived on the healthy shard that the
    # ratio below measures recovery, not division noise.
    assert sum(raw["phases"]["during"]["failed"].values()) > 0, (
        "the dark window injured nothing — outage misconfigured")

    # Money gate: goodput for arrivals during the dark window.
    assert figure["goodput_ratio_during_outage"] >= 3.0, (
        f"resilience bought only "
        f"{figure['goodput_ratio_during_outage']}x during the outage")

    # With the layer on, the incident is *survived*: no client-visible
    # failures in any phase.
    for phase, row in incident["phases"].items():
        assert not row["failed"], (
            f"incident run failed requests in {phase}: {row['failed']}")

    # Post-recovery latency is bounded: the retry backlog drains into
    # the heal, not across the remainder of the run.
    assert figure["post_p99_ms"] is not None
    assert figure["post_p99_ms"] <= 5.0 * figure["fault_free_p99_ms"], (
        f"post-recovery p99 {figure['post_p99_ms']}ms vs fault-free "
        f"{figure['fault_free_p99_ms']}ms")
    # And the tail of the run is fully back to normal by its last
    # arrivals: overall goodput within 5% of the fault-free run's.
    assert incident["overall"]["completed"] >= (
        0.95 * runs["baseline"]["overall"]["completed"])

    # Fault-free cost discipline: the layer on vs off is bit-for-bit,
    # so the $/op overhead must vanish (<= 10% leaves margin for future
    # non-zero-cost hooks).
    assert figure["cost_overhead"] <= 0.10, (
        f"fault-free $/op overhead {figure['cost_overhead'] * 100:.1f}%")
    assert not runs["baseline"]["overall"]["errors"]
    assert not runs["raw_clean"]["overall"]["errors"]
