"""Shard-scaling gate: 4 shards must sustain >= 1.5x one shard.

Drives the parallel multi-user workload of
``repro.bench.fig_shard_scaling`` at 1/2/4/8 store shards and emits the
throughput / latency / $-per-op table. The acceptance gate pins the
headline property of the sharded store: with per-node service capacity
bounded, partitioning the DAAL tables across 4 nodes carries at least
1.5x the single-node throughput on the same workload.
"""

from __future__ import annotations

import pytest
from conftest import emit, emit_json

from repro.bench.fig_shard_scaling import (
    SHARD_COUNTS,
    run_scaling,
    scaling_table,
    shard_dashboards,
)


def test_shard_scaling():
    points = run_scaling(SHARD_COUNTS)
    emit("shard_scaling", scaling_table(points))
    emit("shard_metering", shard_dashboards(points))
    emit_json("shard_scaling", points=points)

    by_shards = {p["shards"]: p for p in points}
    # Every configuration completed the whole workload, error-free.
    for point in points:
        assert point["failures"] == 0
        assert point["completed"] == points[0]["completed"]

    # Acceptance: 4 shards sustain >= 1.5x the single-shard throughput.
    t1 = by_shards[1]["throughput_rps"]
    t4 = by_shards[4]["throughput_rps"]
    assert t4 >= 1.5 * t1, f"4-shard speedup only {t4 / t1:.2f}x"

    # Latency falls with added capacity, monotonically at the median.
    assert by_shards[4]["p50_ms"] < by_shards[1]["p50_ms"]

    # Sharding redistributes round trips; it must not inflate the
    # request bill (same protocol, same op counts, different placement).
    assert by_shards[4]["dollars_per_op"] <= (
        1.05 * by_shards[1]["dollars_per_op"])

    # The key population actually spread: no empty shard at 4 nodes.
    assert all(c > 0 for c in by_shards[4]["keys_per_shard"])

    # Per-shard metering dashboard: every shard served requests, the
    # dashboard's row counts agree with items_per_shard, and the summed
    # books match the facade's merged view.
    rows = by_shards[4]["per_shard"]
    assert [row["items"] for row in rows] == by_shards[4]["keys_per_shard"]
    assert all(row["requests"] > 0 for row in rows)
    total = sum(row["dollars"] for row in rows)
    per_op = total / by_shards[4]["completed"]
    assert per_op >= by_shards[4]["dollars_per_op"]  # includes seeding

    # Load-imbalance columns: shares sum to one and the skew summary is
    # consistent with them (uniform per-user keys stay mildly skewed —
    # this is the benign baseline the elasticity gate contrasts with).
    assert sum(row["share"] for row in rows) == pytest.approx(1.0)
    skew = by_shards[4]["imbalance"]
    assert skew["max_mean"] == pytest.approx(
        max(row["share"] for row in rows) * len(rows))
    assert 0.0 <= skew["gini"] < 0.5
    assert skew["max_mean"] < 2.0
