"""A guided tour of Beldi's failure handling.

Walks one workflow through every interesting crash site — after the
intent is logged, mid-write, between invocation and callback, after the
callee marked itself done — and shows the observable aftermath each time:
what the client saw, what the intent table/logs recorded, and how the
intent collector repaired the run. Finishes by letting the garbage
collector reclaim everything.

Run:  python examples/fault_injection_tour.py
"""

from repro.core import BeldiConfig, BeldiRuntime
from repro.core.gc import make_garbage_collector
from repro.platform import FunctionCrashed
from repro.platform.crashes import CrashOnce

CRASH_SITES = [
    ("intent:ensured", "right after the intent is logged"),
    ("write:1:start", "before the inventory write executes"),
    ("invoke:2:before-call", "before invoking the shipper SSF"),
    ("body:done", "after the body, before the callback"),
    ("callback:done", "after the callback, before 'done'"),
]


def build(crash_tag=None):
    runtime = BeldiRuntime(seed=5, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=500.0))
    if crash_tag is not None:
        runtime.platform.crash_policy = CrashOnce("order", tag=crash_tag)

    def shipper(ctx, payload):
        shipped = ctx.read("parcels", "count") or 0
        ctx.write("parcels", "count", shipped + 1)
        return f"parcel-{shipped + 1}"

    shipper_ssf = runtime.register_ssf("shipper", shipper,
                                       tables=["parcels"])

    def order(ctx, payload):
        stock = ctx.read("inventory", "widget") or 5   # step 0
        ctx.write("inventory", "widget", stock - 1)    # step 1
        receipt = ctx.sync_invoke("shipper", {})       # step 2
        return {"receipt": receipt, "left": stock - 1}

    order_ssf = runtime.register_ssf("order", order, tables=["inventory"])
    return runtime, order_ssf, shipper_ssf


def run_once(runtime):
    outcome = {}

    def client():
        try:
            outcome["res"] = runtime.client_call("order", {})
        except FunctionCrashed:
            outcome["res"] = "CRASHED (client-visible)"

    runtime.start_collectors(ic_period=100.0, gc_period=1e9)
    runtime.kernel.spawn(client)
    runtime.kernel.run(until=5_000.0)
    runtime.stop_collectors()
    runtime.kernel.run(until=8_000.0)
    return outcome["res"]


def main():
    print("Crash-free reference run:")
    runtime, order_ssf, shipper_ssf = build()
    print(f"  client saw: {run_once(runtime)}")
    reference = (order_ssf.env.peek("inventory", "widget"),
                 shipper_ssf.env.peek("parcels", "count"))
    print(f"  state: inventory={reference[0]}, parcels={reference[1]}\n")
    runtime.kernel.shutdown()

    for tag, description in CRASH_SITES:
        runtime, order_ssf, shipper_ssf = build(crash_tag=tag)
        result = run_once(runtime)
        state = (order_ssf.env.peek("inventory", "widget"),
                 shipper_ssf.env.peek("parcels", "count"))
        intents = order_ssf.env.store.scan(
            order_ssf.env.intent_table).items
        status = "done" if intents and intents[0]["Done"] else "pending"
        print(f"crash {description} [{tag}]")
        print(f"  client saw: {result}")
        print(f"  state after IC recovery: inventory={state[0]}, "
              f"parcels={state[1]}  (intent: {status})")
        assert state == reference, "exactly-once violated!"
        runtime.kernel.shutdown()
    print("\nevery crash site converged to the crash-free state. ✓")

    print("\nGarbage collection epilogue:")
    runtime, order_ssf, shipper_ssf = build()
    run_once(runtime)
    env = order_ssf.env
    gc = make_garbage_collector(runtime, env)

    class _Ctx:
        request_id = "tour-gc"
        invocation_index = 0

        def crash_point(self, tag):
            pass

    def collect():
        for _ in range(3):
            gc(_Ctx(), {})
            runtime.kernel.sleep(800.0)
        gc(_Ctx(), {})

    runtime.kernel.spawn(collect)
    runtime.kernel.run()
    print(f"  read-log entries:  {env.store.item_count(env.read_log)}")
    print(f"  intent records:    "
          f"{env.store.item_count(env.intent_table)}")
    print("  logs reclaimed; the value survives:",
          order_ssf.env.peek("inventory", "widget"))
    runtime.kernel.shutdown()


if __name__ == "__main__":
    main()
