"""Quickstart: exactly-once stateful serverless functions with Beldi.

Registers two SSFs (a payment ledger and a checkout driver), runs a
workflow, then injects a crash mid-checkout and shows that:

- without Beldi (the baseline), the crash leaves half-applied state;
- with Beldi, the intent collector re-executes the instance and the
  ledger ends up exactly as if the crash never happened.

Run:  python examples/quickstart.py
"""

from repro.core import BaselineRuntime, BeldiConfig, BeldiRuntime
from repro.platform import FunctionCrashed
from repro.platform.crashes import CrashOnce


def register_shop(runtime):
    """The same application code runs on Beldi and on the baseline."""

    def ledger(ctx, payload):
        balance = ctx.read("books", payload["account"]) or 0
        balance += payload["amount"]
        ctx.write("books", payload["account"], balance)
        return balance

    ledger_ssf = runtime.register_ssf("ledger", ledger, tables=["books"])

    def checkout(ctx, payload):
        # Charge the customer, then credit the merchant: two stateful
        # steps that must both happen exactly once.
        ctx.sync_invoke("ledger", {"account": "customer",
                                   "amount": -payload["price"]})
        ctx.crash_point("between-transfers")  # fault-injection hook
        ctx.sync_invoke("ledger", {"account": "merchant",
                                   "amount": payload["price"]})
        return "receipt"

    runtime.register_ssf("checkout", checkout)
    return ledger_ssf


def run(runtime, ledger_ssf, label):
    outcome = {}

    def client():
        try:
            outcome["result"] = runtime.client_call("checkout",
                                                    {"price": 42})
        except FunctionCrashed:
            outcome["result"] = "CRASHED"

    runtime.start_collectors(ic_period=100.0, gc_period=10_000.0)
    runtime.kernel.spawn(client)
    runtime.kernel.run(until=5_000.0)
    runtime.stop_collectors()
    runtime.kernel.run(until=8_000.0)
    customer = ledger_ssf.env.peek("books", "customer") or 0
    merchant = ledger_ssf.env.peek("books", "merchant") or 0
    print(f"{label:28s} client saw: {outcome['result']!r:12} "
          f"customer={customer:+d} merchant={merchant:+d} "
          f"(sum {customer + merchant:+d})")
    return customer + merchant


def main():
    print("=== happy path (Beldi) ===")
    runtime = BeldiRuntime(seed=1, config=BeldiConfig(
        ic_restart_delay=50.0))
    ledger_ssf = register_shop(runtime)
    run(runtime, ledger_ssf, "no crash:")
    runtime.kernel.shutdown()

    print("\n=== crash between the two transfers ===")
    baseline = BaselineRuntime(seed=1)
    baseline.platform.crash_policy = CrashOnce(
        "checkout", tag="between-transfers")
    ledger_ssf = register_shop(baseline)
    drift = run(baseline, ledger_ssf, "baseline (no recovery):")
    baseline.kernel.shutdown()
    assert drift != 0, "baseline should have lost money"

    beldi = BeldiRuntime(seed=1, config=BeldiConfig(
        ic_restart_delay=50.0))
    beldi.platform.crash_policy = CrashOnce(
        "checkout", tag="between-transfers")
    ledger_ssf = register_shop(beldi)
    drift = run(beldi, ledger_ssf, "Beldi (IC re-executes):")
    beldi.kernel.shutdown()
    assert drift == 0, "Beldi must conserve money"
    print("\nBeldi recovered the crashed workflow exactly once. ✓")


if __name__ == "__main__":
    main()
