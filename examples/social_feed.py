"""Social media workflows: async fan-out, mentions, and timelines.

Runs the paper's social network app on Beldi: composes posts (URL
shortening, user mentions, media), fans them out asynchronously to
follower home timelines (Beldi's asyncInvoke with registration +
callback), and reads the timelines back.

Run:  python examples/social_feed.py
"""

from repro.apps import build_app
from repro.core import BeldiRuntime


def main():
    runtime = BeldiRuntime(seed=11)
    app = build_app("social", seed=11, n_users=8, followers_per_user=3)
    app.install(runtime)

    print("=== composing posts ===")
    posts = [
        ("user-0000", "shipping the beldi reproduction @user-0001 "
                      "https://example.com/paper"),
        ("user-0001", "excited! @user-0002 take a look"),
        ("user-0000", "exactly-once or it did not happen"),
    ]
    for username, body in posts:
        result = runtime.run_workflow("frontend", {
            "action": "compose", "username": username, "text": body})
        print(f"  {username} posted {result['post_id'][:12]}… "
              f"(fan-out to {result['fanout']} followers)")

    # Drain the asynchronous home-timeline appends.
    runtime.kernel.run()

    print("\n=== author timeline (user-0000) ===")
    timeline = runtime.run_workflow("frontend", {
        "action": "user", "user_id": "uid-0000"})
    for post in timeline:
        print(f"  [{post['post_id'][:8]}…] {post['text'][:60]}")
    assert len(timeline) == 2

    print("\n=== home timelines of user-0000's followers ===")
    followers = app.envs["social_graph"].peek("followers", "uid-0000")
    for follower in followers:
        home = runtime.run_workflow("frontend", {
            "action": "home", "user_id": follower})
        print(f"  {follower}: {len(home)} posts")
        assert len(home) >= 2  # both of user-0000's posts arrived

    print("\n=== mention + url processing ===")
    post = timeline[0]
    print(f"  mentions resolved: {post['mentions']}")
    print(f"  urls shortened:    {post['urls']}")
    assert post["urls"][0].startswith("http://sn.io/")

    print("\nasync fan-out delivered every post exactly once. ✓")
    runtime.kernel.shutdown()


if __name__ == "__main__":
    main()
