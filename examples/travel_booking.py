"""Transactional hotel+flight booking across independent SSFs (§6).

Drives the paper's travel reservation app: concurrent customers race for
the last rooms and seats. The cross-SSF transaction guarantees
all-or-nothing bookings (opacity + wait-die), so capacity is conserved —
then the same race is replayed on the baseline, which overbooks.

Run:  python examples/travel_booking.py
"""

from repro.apps import build_app
from repro.core import BaselineRuntime, BeldiConfig, BeldiRuntime


def race_for_last_seats(runtime, app, customers=6):
    """6 customers race for hotel-0000 x flight-0000 (2 rooms, 2 seats)."""
    outcomes = []
    for i in range(customers):
        payload = {"action": "reserve", "user": f"user-000{i % 5}",
                   "hotel": "hotel-0000", "flight": "flight-0000"}
        runtime.kernel.spawn(
            lambda p=payload: outcomes.append(
                runtime.client_call("frontend", p)),
            delay=float(i) * 2.0)
    runtime.kernel.run()
    return outcomes


def main():
    print("=== Beldi: transactional reservations ===")
    runtime = BeldiRuntime(seed=3, config=BeldiConfig(
        lock_retry_backoff=5.0))
    app = build_app("travel", seed=3, n_hotels=3, n_flights=3,
                    rooms_per_hotel=2, seats_per_flight=2, n_users=5)
    app.install(runtime)
    outcomes = race_for_last_seats(runtime, app)
    booked = sum(1 for o in outcomes if o["ok"])
    hotel = app.envs["reserve_hotel"].peek("inventory", "hotel-0000")
    flight = app.envs["reserve_flight"].peek("seats", "flight-0000")
    print(f"bookings committed: {booked} / {len(outcomes)}")
    print(f"rooms left: {hotel['available']}, "
          f"seats left: {flight['available']}")
    assert booked == 2, "exactly the available capacity commits"
    assert hotel["available"] == 0 and flight["available"] == 0
    print("capacity conserved under contention. ✓")
    runtime.kernel.shutdown()

    print("\n=== a search, for good measure ===")
    runtime = BeldiRuntime(seed=4)
    app = build_app("travel", seed=4, n_hotels=20, n_flights=5)
    app.install(runtime)
    found = runtime.run_workflow("frontend",
                                 {"action": "search", "cell": 2})
    for hotel in found["hotels"]:
        print(f"  {hotel['name']:12s} {hotel['stars']}*  cell "
              f"{hotel['cell']}")
    runtime.kernel.shutdown()

    print("\n=== baseline: the same race, no transactions ===")
    baseline = BaselineRuntime(seed=3)
    app = build_app("travel", seed=3, n_hotels=3, n_flights=3,
                    rooms_per_hotel=2, seats_per_flight=2, n_users=5)
    app.install(baseline)
    outcomes = race_for_last_seats(baseline, app)
    booked = sum(1 for o in outcomes if o["ok"])
    hotel = app.envs["reserve_hotel"].peek("inventory", "hotel-0000")
    flight = app.envs["reserve_flight"].peek("seats", "flight-0000")
    print(f"bookings 'committed': {booked} / {len(outcomes)} "
          f"(rooms left {hotel['available']}, seats left "
          f"{flight['available']})")
    print("the baseline reported success for bookings it could not "
          "honour — the inconsistency §7.2 describes.")
    baseline.kernel.shutdown()


if __name__ == "__main__":
    main()
