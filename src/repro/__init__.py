"""Reproduction of Beldi (OSDI 2020): fault-tolerant and transactional
stateful serverless workflows.

Packages:

- ``repro.sim`` — deterministic discrete-event simulation kernel
- ``repro.kvstore`` — DynamoDB-like NoSQL store (substrate)
- ``repro.platform`` — serverless platform emulator (substrate)
- ``repro.core`` — Beldi itself: the library and runtime
- ``repro.apps`` — the three case-study applications (§7.1)
- ``repro.workload`` — open-loop load generation and latency recording
- ``repro.bench`` — drivers that regenerate the paper's figures
"""

__version__ = "0.1.0"
