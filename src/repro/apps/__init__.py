"""The paper's three case-study applications (§7.1, Appendix B).

Ports of the DeathStarBench-derived workloads the paper evaluates:

- ``repro.apps.movie`` — movie review service, 13 SSFs (Fig. 23)
- ``repro.apps.travel`` — travel reservation, 10 SSFs with a cross-SSF
  hotel+flight transaction (Fig. 22)
- ``repro.apps.social`` — social media site, 13 SSFs (Fig. 24)

Each application is written once against the Beldi context API and runs
unmodified on :class:`BeldiRuntime` (exactly-once + transactions) or
:class:`BaselineRuntime` (the paper's no-guarantees baseline).
"""

from repro.apps.base import AppBundle
from repro.apps.movie import MovieReviewApp
from repro.apps.social import SocialMediaApp
from repro.apps.travel import TravelReservationApp


def build_app(name: str, **kwargs) -> "AppBundle":
    """Factory by app name: ``movie``, ``travel``, or ``social``."""
    apps = {
        "movie": MovieReviewApp,
        "travel": TravelReservationApp,
        "social": SocialMediaApp,
    }
    if name not in apps:
        raise ValueError(f"unknown app {name!r}; pick from {sorted(apps)}")
    return apps[name](**kwargs)


__all__ = [
    "AppBundle",
    "MovieReviewApp",
    "SocialMediaApp",
    "TravelReservationApp",
    "build_app",
]
