"""Shared structure for the case-study applications.

An :class:`AppBundle` packages everything an experiment needs: SSF
registration, data seeding, and a request-mix sampler compatible with the
workload generator. Bundles are runtime-agnostic — the same handlers run
on Beldi or the baseline, which is exactly how the paper compares them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.randsrc import RandomSource


class AppBundle:
    """Base class for the three applications."""

    #: Application name (stable identifier for benches).
    name: str = "app"
    #: The workflow's entry SSF (the gateway target).
    entry: str = "frontend"
    #: Number of SSFs the workflow comprises (checked by tests).
    ssf_count: int = 0

    def __init__(self, seed: int = 0) -> None:
        self.rand = RandomSource(seed, f"app/{self.name}")
        self.installed = False

    # -- lifecycle ---------------------------------------------------------
    def install(self, runtime: Any) -> None:
        """Register all SSFs on ``runtime`` and seed initial data."""
        self.register(runtime)
        self.seed_data(runtime)
        self.installed = True

    def register(self, runtime: Any) -> None:
        raise NotImplementedError

    def seed_data(self, runtime: Any) -> None:
        raise NotImplementedError

    # -- workload ------------------------------------------------------------
    def sample_request(self, rand: Optional[RandomSource] = None) -> dict:
        """Draw one request payload from the app's operation mix."""
        raise NotImplementedError

    def describe_mix(self) -> dict:
        """Operation mix as {action: weight} — documented per app."""
        raise NotImplementedError


def pick_weighted(rand: RandomSource, mix: dict) -> str:
    actions = sorted(mix)
    weights = [mix[a] for a in actions]
    return rand.choices(actions, weights, k=1)[0]
