"""Movie review service (§7.1, Fig. 23) — 13 SSFs.

Cf. IMDB/Rotten Tomatoes: users create accounts, read movie pages (plot,
cast, info, reviews), and write reviews. Ported from DeathStarBench's
media service.

Workflow (edges as in Fig. 23)::

    client -> frontend -> user, text, movie_id -> compose_review
              frontend -> page -> movie_info, cast_info, plot, movie_review
    compose_review -> unique_id, review_storage, user_review, movie_review
    movie_review/user_review resolve full reviews via review_storage

Operation mix (DeathStarBench media defaults): read a movie page 60%,
compose a review 30%, user login 10%.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.base import AppBundle, pick_weighted
from repro.sim.randsrc import RandomSource

MIX = {"page": 0.60, "compose": 0.30, "login": 0.10}


class MovieReviewApp(AppBundle):
    name = "movie"
    entry = "frontend"
    ssf_count = 13

    def __init__(self, seed: int = 0, n_movies: int = 100,
                 n_users: int = 100) -> None:
        super().__init__(seed)
        self.n_movies = n_movies
        self.n_users = n_users
        self.envs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, runtime: Any) -> None:
        # -- unique_id: logged non-determinism --------------------------
        def unique_id(ctx, payload):
            return ctx.fresh_id()

        # -- user: resolve/login ----------------------------------------
        def user(ctx, payload):
            username = payload["username"]
            record = ctx.read("users", username)
            if record is None:
                return {"ok": False}
            if "password" in payload:
                return {"ok": record["password"] == payload["password"],
                        "user_id": record["user_id"]}
            return {"ok": True, "user_id": record["user_id"]}

        # -- text: process review text (mentions, sanitize) --------------
        def text(ctx, payload):
            body = payload["text"]
            cleaned = " ".join(body.split())
            return {"text": cleaned, "length": len(cleaned)}

        # -- movie_id: title -> id ---------------------------------------
        def movie_id(ctx, payload):
            record = ctx.read("titles", payload["title"])
            if record is None:
                return {"ok": False}
            return {"ok": True, "movie_id": record}

        # -- review_storage: the reviews themselves -----------------------
        def review_storage(ctx, payload):
            if payload["op"] == "store":
                review = payload["review"]
                ctx.write("reviews", review["review_id"], review)
                return {"stored": review["review_id"]}
            if payload["op"] == "read_many":
                # Serving stored reviews tolerates bounded staleness —
                # the half-price follower read when replication is on.
                found = []
                for review_id in payload["ids"]:
                    review = ctx.read_eventual("reviews", review_id)
                    if review is not None:
                        found.append(review)
                return found
            raise ValueError(f"bad op {payload['op']!r}")

        # -- user_review: per-user review index ---------------------------
        def user_review(ctx, payload):
            if payload["op"] == "append":
                ids = ctx.read("by_user", payload["user_id"]) or []
                ids = ids + [payload["review_id"]]
                ctx.write("by_user", payload["user_id"], ids)
                return {"count": len(ids)}
            ids = ctx.read_eventual("by_user", payload["user_id"]) or []
            return ids[-payload.get("limit", 10):]

        # -- movie_review: per-movie review index --------------------------
        def movie_review(ctx, payload):
            if payload["op"] == "append":
                ids = ctx.read("by_movie", payload["movie_id"]) or []
                ids = ids + [payload["review_id"]]
                ctx.write("by_movie", payload["movie_id"], ids)
                return {"count": len(ids)}
            ids = ctx.read_eventual("by_movie", payload["movie_id"]) or []
            recent = ids[-payload.get("limit", 5):]
            return ctx.sync_invoke("review_storage",
                                   {"op": "read_many", "ids": recent})

        # -- compose_review: gather parts, store, index --------------------
        def compose_review(ctx, payload):
            review_id = ctx.sync_invoke("unique_id", {})
            review = {
                "review_id": review_id,
                "user_id": payload["user_id"],
                "movie_id": payload["movie_id"],
                "text": payload["text"],
                "rating": payload["rating"],
            }
            ctx.sync_invoke("review_storage",
                            {"op": "store", "review": review})
            ctx.sync_invoke("user_review",
                            {"op": "append", "user_id": payload["user_id"],
                             "review_id": review_id})
            ctx.sync_invoke("movie_review",
                            {"op": "append",
                             "movie_id": payload["movie_id"],
                             "review_id": review_id})
            return {"ok": True, "review_id": review_id}

        # -- movie page components (read-only: eventual-tolerant) ----------
        def movie_info(ctx, payload):
            return ctx.read_eventual("info", payload["movie_id"])

        def cast_info(ctx, payload):
            return ctx.read_eventual("cast", payload["movie_id"])

        def plot(ctx, payload):
            return ctx.read_eventual("plots", payload["movie_id"])

        # -- page: assemble a movie page ------------------------------------
        def page(ctx, payload):
            movie = payload["movie_id"]
            return {
                "info": ctx.sync_invoke("movie_info", {"movie_id": movie}),
                "cast": ctx.sync_invoke("cast_info", {"movie_id": movie}),
                "plot": ctx.sync_invoke("plot", {"movie_id": movie}),
                "reviews": ctx.sync_invoke(
                    "movie_review", {"op": "read", "movie_id": movie}),
            }

        # -- frontend ---------------------------------------------------------
        def frontend(ctx, payload):
            action = payload["action"]
            if action == "page":
                resolved = ctx.sync_invoke("movie_id",
                                           {"title": payload["title"]})
                if not resolved["ok"]:
                    return {"ok": False, "error": "unknown title"}
                result = ctx.sync_invoke(
                    "page", {"movie_id": resolved["movie_id"]})
                return {"ok": True, "page": result}
            if action == "compose":
                auth = ctx.sync_invoke("user",
                                       {"username": payload["username"]})
                if not auth["ok"]:
                    return {"ok": False, "error": "unknown user"}
                processed = ctx.sync_invoke("text",
                                            {"text": payload["text"]})
                resolved = ctx.sync_invoke("movie_id",
                                           {"title": payload["title"]})
                if not resolved["ok"]:
                    return {"ok": False, "error": "unknown title"}
                return ctx.sync_invoke("compose_review", {
                    "user_id": auth["user_id"],
                    "movie_id": resolved["movie_id"],
                    "text": processed["text"],
                    "rating": payload["rating"],
                })
            if action == "login":
                return ctx.sync_invoke("user", {
                    "username": payload["username"],
                    "password": payload["password"]})
            raise ValueError(f"unknown action {action!r}")

        specs = [
            ("frontend", frontend, []),
            ("unique_id", unique_id, []),
            ("user", user, ["users"]),
            ("text", text, []),
            ("movie_id", movie_id, ["titles"]),
            ("compose_review", compose_review, []),
            ("review_storage", review_storage, ["reviews"]),
            ("user_review", user_review, ["by_user"]),
            ("movie_review", movie_review, ["by_movie"]),
            ("page", page, []),
            ("movie_info", movie_info, ["info"]),
            ("cast_info", cast_info, ["cast"]),
            ("plot", plot, ["plots"]),
        ]
        for name, handler, tables in specs:
            ssf = runtime.register_ssf(name, handler, tables=tables)
            self.envs[name] = ssf.env

    # ------------------------------------------------------------------
    def seed_data(self, runtime: Any) -> None:
        seeder = self.rand.child("seed")
        for i in range(self.n_movies):
            movie = f"movie-{i:04d}"
            title = f"Title {i}"
            self.envs["movie_id"].seed("titles", title, movie)
            self.envs["movie_info"].seed("info", movie, {
                "movie_id": movie, "title": title,
                "year": 1950 + (i % 70),
                "avg_rating": round(seeder.uniform(1.0, 10.0), 1),
            })
            self.envs["cast_info"].seed("cast", movie, [
                {"name": f"Actor {j}", "role": f"Role {j}"}
                for j in range(3)])
            self.envs["plot"].seed("plots", movie,
                                   f"Plot of {title}: " + "drama " * 10)
        for i in range(self.n_users):
            username = f"user-{i:04d}"
            self.envs["user"].seed("users", username, {
                "user_id": f"uid-{i:04d}",
                "password": f"pw-{i:04d}"})

    # ------------------------------------------------------------------
    def describe_mix(self) -> dict:
        return dict(MIX)

    def sample_request(self, rand: Optional[RandomSource] = None) -> dict:
        rand = rand or self.rand
        action = pick_weighted(rand, MIX)
        movie = rand.randint(0, self.n_movies - 1)
        user_idx = rand.randint(0, self.n_users - 1)
        if action == "page":
            return {"action": "page", "title": f"Title {movie}"}
        if action == "compose":
            return {"action": "compose",
                    "username": f"user-{user_idx:04d}",
                    "title": f"Title {movie}",
                    "text": f"review text {rand.randint(0, 9999)} "
                            "with some words in it",
                    "rating": rand.randint(1, 10)}
        return {"action": "login", "username": f"user-{user_idx:04d}",
                "password": f"pw-{user_idx:04d}"}
