"""Social media site (§7.1, Fig. 24) — 13 SSFs.

Cf. Twitter: users log in, follow each other, compose posts that mention
users / shorten URLs / attach media, and read home and user timelines.
Ported from DeathStarBench's social network.

Workflow (edges as in Fig. 24)::

    client -> frontend -> compose_post -> unique_id, text, media, user
              text -> url_shorten, user_mention
              compose_post -> post_storage, user_timeline,
                              social_graph -> home_timeline (fan-out,
                                              asynchronous)
              user_timeline/home_timeline -> timeline_storage
              read paths: frontend -> home_timeline/user_timeline
                          -> timeline_storage, post_storage

The home-timeline fan-out uses ``asyncInvoke`` — followers' timelines
update in the background, exercising Beldi's asynchronous invocation path
in a realistic workload.

Operation mix (DeathStarBench social defaults): read home timeline 60%,
read user timeline 30%, compose post 10%.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.apps.base import AppBundle, pick_weighted
from repro.sim.randsrc import RandomSource

MIX = {"home": 0.60, "user": 0.30, "compose": 0.10}

_URL_RE = re.compile(r"https?://\S+")
_MENTION_RE = re.compile(r"@([A-Za-z0-9_\-]+)")


class SocialMediaApp(AppBundle):
    name = "social"
    entry = "frontend"
    ssf_count = 13

    def __init__(self, seed: int = 0, n_users: int = 100,
                 followers_per_user: int = 8,
                 timeline_limit: int = 10) -> None:
        super().__init__(seed)
        self.n_users = n_users
        self.followers_per_user = followers_per_user
        self.timeline_limit = timeline_limit
        self.envs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, runtime: Any) -> None:
        timeline_limit = self.timeline_limit

        def unique_id(ctx, payload):
            return ctx.fresh_id()

        def url_shorten(ctx, payload):
            shortened = []
            for url in payload["urls"]:
                short = f"http://sn.io/{ctx.fresh_id()[:8]}"
                ctx.write("urls", short, url)
                shortened.append(short)
            return shortened

        def user_mention(ctx, payload):
            mentions = []
            for username in payload["usernames"]:
                record = ctx.read("mention_cache", username)
                if record is not None:
                    mentions.append({"username": username,
                                     "user_id": record})
            return mentions

        def media(ctx, payload):
            media_ids = []
            for item in payload.get("media", []):
                media_id = ctx.fresh_id()
                ctx.write("media", media_id, item)
                media_ids.append(media_id)
            return media_ids

        def text(ctx, payload):
            body = payload["text"]
            urls = _URL_RE.findall(body)
            usernames = _MENTION_RE.findall(body)
            short_urls = (ctx.sync_invoke("url_shorten", {"urls": urls})
                          if urls else [])
            mentions = (ctx.sync_invoke("user_mention",
                                        {"usernames": usernames})
                        if usernames else [])
            rendered = _URL_RE.sub("<url>", body)
            return {"text": rendered, "urls": short_urls,
                    "mentions": mentions}

        def user(ctx, payload):
            record = ctx.read("users", payload["username"])
            if record is None:
                return {"ok": False}
            return {"ok": True, "user_id": record["user_id"]}

        def post_storage(ctx, payload):
            if payload["op"] == "store":
                post = payload["post"]
                ctx.write("posts", post["post_id"], post)
                return {"stored": post["post_id"]}
            if payload["op"] == "read_many":
                # Timeline rendering tolerates bounded staleness — the
                # half-price follower read when replication is on.
                found = []
                for post_id in payload["ids"]:
                    post = ctx.read_eventual("posts", post_id)
                    if post is not None:
                        found.append(post)
                return found
            raise ValueError(f"bad op {payload['op']!r}")

        def timeline_storage(ctx, payload):
            if payload["op"] == "append":
                key = payload["timeline"]
                ids = ctx.read("timelines", key) or []
                ids = (ids + [payload["post_id"]])[-50:]
                ctx.write("timelines", key, ids)
                return {"count": len(ids)}
            ids = ctx.read_eventual("timelines", payload["timeline"]) or []
            return ids[-payload.get("limit", timeline_limit):]

        def user_timeline(ctx, payload):
            if payload["op"] == "append":
                return ctx.sync_invoke("timeline_storage", {
                    "op": "append",
                    "timeline": f"user:{payload['user_id']}",
                    "post_id": payload["post_id"]})
            ids = ctx.sync_invoke("timeline_storage", {
                "op": "read", "timeline": f"user:{payload['user_id']}"})
            return ctx.sync_invoke("post_storage",
                                   {"op": "read_many", "ids": ids})

        def home_timeline(ctx, payload):
            if payload["op"] == "append":
                return ctx.sync_invoke("timeline_storage", {
                    "op": "append",
                    "timeline": f"home:{payload['user_id']}",
                    "post_id": payload["post_id"]})
            ids = ctx.sync_invoke("timeline_storage", {
                "op": "read", "timeline": f"home:{payload['user_id']}"})
            return ctx.sync_invoke("post_storage",
                                   {"op": "read_many", "ids": ids})

        def social_graph(ctx, payload):
            if payload["op"] == "followers":
                return ctx.read("followers", payload["user_id"]) or []
            if payload["op"] == "follow":
                followers = ctx.read("followers", payload["target"]) or []
                if payload["user_id"] not in followers:
                    followers = followers + [payload["user_id"]]
                    ctx.write("followers", payload["target"], followers)
                return {"count": len(followers)}
            raise ValueError(f"bad op {payload['op']!r}")

        def compose_post(ctx, payload):
            auth = ctx.sync_invoke("user",
                                   {"username": payload["username"]})
            if not auth["ok"]:
                return {"ok": False, "error": "unknown user"}
            post_id = ctx.sync_invoke("unique_id", {})
            processed = ctx.sync_invoke("text", {"text": payload["text"]})
            media_ids = ctx.sync_invoke("media",
                                        {"media": payload.get("media",
                                                              [])})
            post = {
                "post_id": post_id,
                "author": auth["user_id"],
                "text": processed["text"],
                "urls": processed["urls"],
                "mentions": processed["mentions"],
                "media": media_ids,
            }
            ctx.sync_invoke("post_storage", {"op": "store", "post": post})
            ctx.sync_invoke("user_timeline", {
                "op": "append", "user_id": auth["user_id"],
                "post_id": post_id})
            followers = ctx.sync_invoke(
                "social_graph", {"op": "followers",
                                 "user_id": auth["user_id"]})
            # Fan the post out to follower home timelines asynchronously —
            # the paper's asyncInvoke in its natural habitat.
            for follower in followers:
                ctx.async_invoke("home_timeline", {
                    "op": "append", "user_id": follower,
                    "post_id": post_id})
            return {"ok": True, "post_id": post_id,
                    "fanout": len(followers)}

        def frontend(ctx, payload):
            action = payload["action"]
            if action == "compose":
                return ctx.sync_invoke("compose_post", payload)
            if action == "home":
                return ctx.sync_invoke("home_timeline", {
                    "op": "read", "user_id": payload["user_id"]})
            if action == "user":
                return ctx.sync_invoke("user_timeline", {
                    "op": "read", "user_id": payload["user_id"]})
            if action == "follow":
                return ctx.sync_invoke("social_graph", {
                    "op": "follow", "user_id": payload["user_id"],
                    "target": payload["target"]})
            raise ValueError(f"unknown action {action!r}")

        specs = [
            ("frontend", frontend, []),
            ("unique_id", unique_id, []),
            ("url_shorten", url_shorten, ["urls"]),
            ("media", media, ["media"]),
            ("text", text, []),
            ("user_mention", user_mention, ["mention_cache"]),
            ("user", user, ["users"]),
            ("compose_post", compose_post, []),
            ("post_storage", post_storage, ["posts"]),
            ("social_graph", social_graph, ["followers"]),
            ("user_timeline", user_timeline, []),
            ("home_timeline", home_timeline, []),
            ("timeline_storage", timeline_storage, ["timelines"]),
        ]
        for name, handler, tables in specs:
            ssf = runtime.register_ssf(name, handler, tables=tables)
            self.envs[name] = ssf.env

    # ------------------------------------------------------------------
    def seed_data(self, runtime: Any) -> None:
        seeder = self.rand.child("seed")
        for i in range(self.n_users):
            username = f"user-{i:04d}"
            user_id = f"uid-{i:04d}"
            self.envs["user"].seed("users", username,
                                   {"user_id": user_id})
            self.envs["user_mention"].seed("mention_cache", username,
                                           user_id)
            followers = set()
            while len(followers) < min(self.followers_per_user,
                                       self.n_users - 1):
                candidate = seeder.randint(0, self.n_users - 1)
                if candidate != i:
                    followers.add(f"uid-{candidate:04d}")
            self.envs["social_graph"].seed("followers", user_id,
                                           sorted(followers))

    # ------------------------------------------------------------------
    def describe_mix(self) -> dict:
        return dict(MIX)

    def sample_request(self, rand: Optional[RandomSource] = None) -> dict:
        rand = rand or self.rand
        action = pick_weighted(rand, MIX)
        user_idx = rand.randint(0, self.n_users - 1)
        if action == "home":
            return {"action": "home", "user_id": f"uid-{user_idx:04d}"}
        if action == "user":
            return {"action": "user", "user_id": f"uid-{user_idx:04d}"}
        mention = f"user-{rand.randint(0, self.n_users - 1):04d}"
        body = (f"post {rand.randint(0, 99999)} hello @{mention} "
                f"see https://example.com/{rand.randint(0, 999)}")
        return {"action": "compose",
                "username": f"user-{user_idx:04d}",
                "text": body}
