"""Travel reservation service (§7.1, Fig. 22) — 10 SSFs.

Users search hotels, sort by price/distance/rate, get recommendations,
log in, and reserve a hotel room **and** a flight; the paper extends the
original DeathStarBench hotel app with flight reservations so the reserve
path exercises a *cross-SSF transaction*: the reservation goes through
only if both the hotel and the flight have capacity.

Workflow (edges as in Fig. 22)::

    client -> frontend -> search -> geo, rate
                       -> recommend -> profile
                       -> user
                       -> reserve -> reserve_hotel, reserve_flight   (txn)
    search/recommend results hydrate through profile

Operation mix (adapted from DeathStarBench's hotel mix; the paper keeps
reservations rare but they are the headline feature, §7.4): search 60%,
recommend 29%, login 1%, reserve 10%. Reservations pick 1 of
``n_hotels``/``n_flights`` choices each from a normal distribution
centred mid-catalogue (§7.2) — which concentrates contention and makes
aborts possible under load.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.apps.base import AppBundle, pick_weighted
from repro.kvstore import Gt
from repro.kvstore.expressions import path
from repro.sim.randsrc import RandomSource

MIX = {"search": 0.60, "recommend": 0.29, "login": 0.01, "reserve": 0.10}


class TravelReservationApp(AppBundle):
    name = "travel"
    entry = "frontend"
    ssf_count = 10

    def __init__(self, seed: int = 0, n_hotels: int = 100,
                 n_flights: int = 100, rooms_per_hotel: int = 1000,
                 seats_per_flight: int = 1000, n_users: int = 100,
                 transactional: bool = True) -> None:
        super().__init__(seed)
        self.n_hotels = n_hotels
        self.n_flights = n_flights
        self.rooms_per_hotel = rooms_per_hotel
        self.seats_per_flight = seats_per_flight
        self.n_users = n_users
        #: §7.4 also measures "Beldi without transactions": same app, the
        #: reserve path simply skips begin/end (and therefore runs its
        #: two reservations non-atomically, like the baseline would).
        self.transactional = transactional
        self.envs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Registration: 10 SSFs, each in its own sovereignty domain.
    # ------------------------------------------------------------------
    def register(self, runtime: Any) -> None:
        transactional = self.transactional

        # -- geo: nearby hotels for a location cell (read-only) ---------
        def geo(ctx, payload):
            cell = payload["cell"]
            return ctx.read_eventual("cells", f"cell-{cell}") or []

        # -- rate: room rates for a set of hotels -----------------------
        def rate(ctx, payload):
            rates = []
            for hotel_id in payload["hotels"]:
                entry = ctx.read_eventual("rates", hotel_id)
                if entry is not None:
                    rates.append({"hotel": hotel_id, "rate": entry})
            return rates

        # -- profile: hotel profiles ------------------------------------
        def profile(ctx, payload):
            profiles = []
            for hotel_id in payload["hotels"]:
                entry = ctx.read_eventual("profiles", hotel_id)
                if entry is not None:
                    profiles.append(entry)
            return profiles

        # -- search: geo + rate, hydrated through profile ---------------
        def search(ctx, payload):
            nearby = ctx.sync_invoke("geo", {"cell": payload["cell"]})
            rates = ctx.sync_invoke("rate", {"hotels": nearby})
            ranked = sorted(rates, key=lambda r: r["rate"])[:5]
            profiles = ctx.sync_invoke(
                "profile", {"hotels": [r["hotel"] for r in ranked]})
            return {"hotels": profiles}

        # -- recommend: by price/distance/rate --------------------------
        def recommend(ctx, payload):
            criterion = payload.get("by", "price")
            board = ctx.read_eventual("boards", criterion) or []
            profiles = ctx.sync_invoke("profile", {"hotels": board[:5]})
            return {"recommended": profiles, "by": criterion}

        # -- user: login/registration -----------------------------------
        def user(ctx, payload):
            username = payload["username"]
            record = ctx.read("users", username)
            if record is None:
                return {"ok": False, "error": "no such user"}
            ok = record.get("password") == payload.get("password")
            return {"ok": ok, "user": username if ok else None}

        # -- reserve_hotel: decrement capacity inside the txn ------------
        def reserve_hotel(ctx, payload):
            hotel_id = payload["hotel"]
            ok = ctx.cond_write(
                "inventory", hotel_id,
                _decremented(ctx, "inventory", hotel_id),
                Gt(path("Value", "available"), 0))
            if not ok:
                if ctx.in_transaction():
                    ctx.abort_tx()
                return {"hotel": hotel_id, "reserved": False}
            return {"hotel": hotel_id, "reserved": True}

        # -- reserve_flight: same pattern over its own table -------------
        def reserve_flight(ctx, payload):
            flight_id = payload["flight"]
            ok = ctx.cond_write(
                "seats", flight_id,
                _decremented(ctx, "seats", flight_id),
                Gt(path("Value", "available"), 0))
            if not ok:
                if ctx.in_transaction():
                    ctx.abort_tx()
                return {"flight": flight_id, "reserved": False}
            return {"flight": flight_id, "reserved": True}

        def _decremented(ctx, table, key):
            current = ctx.read(table, key) or {"available": 0}
            return {"available": current["available"] - 1}

        # -- reserve: the cross-SSF transaction (§6.2) -------------------
        def reserve(ctx, payload):
            booking = {"user": payload["user"], "hotel": payload["hotel"],
                       "flight": payload["flight"]}
            if transactional:
                with ctx.transaction() as tx:
                    ctx.sync_invoke("reserve_hotel",
                                    {"hotel": payload["hotel"]})
                    ctx.sync_invoke("reserve_flight",
                                    {"flight": payload["flight"]})
                    booking_id = ctx.fresh_id()
                    ctx.write("bookings", booking_id, booking)
                committed = tx.committed
            else:
                ctx.sync_invoke("reserve_hotel",
                                {"hotel": payload["hotel"]})
                ctx.sync_invoke("reserve_flight",
                                {"flight": payload["flight"]})
                booking_id = ctx.fresh_id()
                ctx.write("bookings", booking_id, booking)
                committed = True
            return {"ok": committed}

        # -- frontend: the workflow root ---------------------------------
        def frontend(ctx, payload):
            action = payload["action"]
            if action == "search":
                return ctx.sync_invoke("search", payload)
            if action == "recommend":
                return ctx.sync_invoke("recommend", payload)
            if action == "login":
                return ctx.sync_invoke("user", payload)
            if action == "reserve":
                return ctx.sync_invoke("reserve", payload)
            raise ValueError(f"unknown action {action!r}")

        specs = [
            ("frontend", frontend, []),
            ("search", search, []),
            ("geo", geo, ["cells"]),
            ("rate", rate, ["rates"]),
            ("profile", profile, ["profiles"]),
            ("recommend", recommend, ["boards"]),
            ("user", user, ["users"]),
            ("reserve", reserve, ["bookings"]),
            ("reserve_hotel", reserve_hotel, ["inventory"]),
            ("reserve_flight", reserve_flight, ["seats"]),
        ]
        for name, handler, tables in specs:
            ssf = runtime.register_ssf(name, handler, tables=tables)
            self.envs[name] = ssf.env

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def seed_data(self, runtime: Any) -> None:
        seeder = self.rand.child("seed")
        cells: dict[int, list] = {}
        by_price, by_distance, by_rate = [], [], []
        for i in range(self.n_hotels):
            hotel_id = f"hotel-{i:04d}"
            cell = i % 10
            cells.setdefault(cell, []).append(hotel_id)
            self.envs["rate"].seed("rates", hotel_id,
                                   round(50 + seeder.random() * 250, 2))
            self.envs["profile"].seed("profiles", hotel_id, {
                "id": hotel_id,
                "name": f"Hotel {i}",
                "cell": cell,
                "stars": seeder.randint(1, 5),
            })
            self.envs["reserve_hotel"].seed(
                "inventory", hotel_id,
                {"available": self.rooms_per_hotel})
            by_price.append(hotel_id)
            by_distance.append(hotel_id)
            by_rate.append(hotel_id)
        for cell, hotels in cells.items():
            self.envs["geo"].seed("cells", f"cell-{cell}", hotels)
        seeder.shuffle(by_price)
        seeder.shuffle(by_distance)
        seeder.shuffle(by_rate)
        self.envs["recommend"].seed("boards", "price", by_price[:20])
        self.envs["recommend"].seed("boards", "distance", by_distance[:20])
        self.envs["recommend"].seed("boards", "rate", by_rate[:20])
        for i in range(self.n_flights):
            flight_id = f"flight-{i:04d}"
            self.envs["reserve_flight"].seed(
                "seats", flight_id, {"available": self.seats_per_flight})
        for i in range(self.n_users):
            username = f"user-{i:04d}"
            self.envs["user"].seed("users", username, {
                "password": f"pw-{i:04d}", "name": f"User {i}"})

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def describe_mix(self) -> dict:
        return dict(MIX)

    def sample_request(self, rand: Optional[RandomSource] = None) -> dict:
        rand = rand or self.rand
        action = pick_weighted(rand, MIX)
        if action == "search":
            return {"action": "search", "cell": rand.randint(0, 9)}
        if action == "recommend":
            return {"action": "recommend",
                    "by": rand.choice(["price", "distance", "rate"])}
        if action == "login":
            i = rand.randint(0, self.n_users - 1)
            return {"action": "login", "username": f"user-{i:04d}",
                    "password": f"pw-{i:04d}"}
        # The paper's §7.2: hotel and flight drawn from a normal
        # distribution over 100 choices each.
        hotel = rand.normal_index(self.n_hotels)
        flight = rand.normal_index(self.n_flights)
        return {"action": "reserve",
                "user": f"user-{rand.randint(0, self.n_users - 1):04d}",
                "hotel": f"hotel-{hotel:04d}",
                "flight": f"flight-{flight:04d}"}

    # -- invariants used by tests and benches ---------------------------------
    def capacity_remaining(self) -> tuple[int, int]:
        rooms = sum(
            self.envs["reserve_hotel"].peek("inventory",
                                            f"hotel-{i:04d}")["available"]
            for i in range(self.n_hotels))
        seats = sum(
            self.envs["reserve_flight"].peek("seats",
                                             f"flight-{i:04d}")["available"]
            for i in range(self.n_flights))
        return rooms, seats
