"""Per-figure experiment drivers.

Each module regenerates one of the paper's evaluation results
(§7.3-§7.5 and Appendix C); the ``benchmarks/`` pytest files are thin
wrappers that run these drivers under pytest-benchmark and assert the
paper's qualitative shape. See EXPERIMENTS.md for paper-vs-measured.
"""

from repro.bench.fig13_ops import measure_primitive_ops
from repro.bench.fig1415_apps import app_sweep
from repro.bench.fig16_gc import gc_timeseries
from repro.bench.costs import measure_costs
from repro.bench.reporting import format_series, format_table

__all__ = [
    "app_sweep",
    "format_series",
    "format_table",
    "gc_timeseries",
    "measure_costs",
    "measure_primitive_ops",
]
