"""§7.3 "Other costs" driver: storage, network, and dollar overheads.

Regenerates the in-text cost analysis: the storage footprint of a 20-row
DAAL, the extra bytes each primitive stores (log entries + metadata), the
network overhead of scan+projection traversal vs a single-row read, the
extra store operations per Beldi primitive, and the marginal dollar cost
in on-demand pricing.
"""

from __future__ import annotations

from repro.bench.fig13_ops import KEY, VALUE, _build_runtime, \
    _pre_grow_chain
from repro.core import daal
from repro.kvstore import AttrExists
from repro.kvstore.expressions import Projection


def measure_costs(rows: int = 20, seed: int = 12) -> dict:
    """Meter one of each primitive in baseline vs Beldi modes."""
    out: dict = {}

    # -- storage: the pre-grown DAAL itself --------------------------------
    runtime = _build_runtime("beldi", seed)
    env = runtime.create_env("cost", tables=["kv"])
    table = env.data_table("kv")
    _pre_grow_chain(runtime.store, table, KEY, rows,
                    runtime.config.row_log_capacity)
    out["daal_rows"] = rows
    out["daal_storage_bytes"] = runtime.store.storage_bytes(table)

    # -- network: projected scan vs single-row read -------------------------
    skeleton_result = runtime.store.query(
        table, KEY, projection=Projection.of("RowId", "NextRow"))
    single_row = runtime.store.query(table, KEY, limit=1)
    out["scan_projection_bytes"] = skeleton_result.consumed_bytes
    out["single_row_bytes"] = single_row.consumed_bytes
    out["scan_extra_bytes"] = (skeleton_result.consumed_bytes
                               - single_row.consumed_bytes
                               // max(1, single_row.scanned_count))
    runtime.kernel.shutdown()

    # -- per-op store operations and bytes, baseline vs Beldi ----------------
    for mode in ("baseline", "beldi"):
        rt = _build_runtime(mode, seed)
        if mode == "baseline":
            ssf = rt.register_ssf("bench", _one_of_each, tables=["kv"])
        else:
            ssf = rt.register_ssf("bench", _one_of_each, tables=["kv"])
        rt.register_ssf("leaf", lambda ctx, p: "ok")
        ssf.env.seed("kv", KEY, VALUE)
        before = rt.store.metering.copy()

        def client():
            rt.client_call("bench", None)

        rt.kernel.spawn(client)
        rt.kernel.run()
        delta = rt.store.metering.diff(before)
        ops = {name: rec.count for name, rec in delta.items()}
        out[f"{mode}_ops"] = ops
        out[f"{mode}_total_ops"] = sum(ops.values())
        out[f"{mode}_bytes_written"] = sum(
            rec.bytes_written for rec in delta.values())
        out[f"{mode}_bytes_read"] = sum(
            rec.bytes_read for rec in delta.values())
        out[f"{mode}_dollars"] = _dollars(delta)
        rt.kernel.shutdown()
    return out


def _one_of_each(ctx, payload):
    """One read, one write, one condWrite, one invoke."""
    ctx.read("kv", KEY)
    ctx.write("kv", KEY, VALUE)
    ctx.cond_write("kv", KEY, VALUE, AttrExists("Key"))
    ctx.sync_invoke("leaf", None)
    return "ok"


def _dollars(delta: dict) -> float:
    from repro.kvstore.metering import (DOLLARS_PER_READ_UNIT,
                                        DOLLARS_PER_WRITE_UNIT)
    total = 0.0
    for rec in delta.values():
        total += rec.read_units * DOLLARS_PER_READ_UNIT
        total += rec.write_units * DOLLARS_PER_WRITE_UNIT
    return total
