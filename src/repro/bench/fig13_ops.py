"""Figure 13 / Figure 25 driver: primitive operation latency.

Measures median and p99 latency of ``read``, ``write``, ``condWrite``,
and ``invoke`` at low load (one instance at a time), for three systems:

- ``baseline`` — raw store/platform access, no guarantees;
- ``beldi`` — the linked-DAAL implementation;
- ``crosstable`` — Beldi's logging via cross-table transactions.

As in §7.3: 1-byte keys, 16-byte values, and the target key's linked DAAL
pre-grown to ``rows`` rows (20 for Fig. 13, 5 for Fig. 25). The
pre-growth is applied directly to the store (no virtual latency), so the
measurement starts from the paper's configuration.
"""

from __future__ import annotations

from typing import Any

from repro.core import BaselineRuntime, BeldiConfig, BeldiRuntime
from repro.core import daal
from repro.kvstore import AttrExists, Set
from repro.workload.recorder import LatencyRecorder

OPS = ("read", "write", "cond_write", "invoke")
KEY = "k"
VALUE = "v" * 16


def _pre_grow_chain(store, table: str, key: Any, rows: int,
                    capacity: int) -> None:
    """Build a ``rows``-row chain directly (driver-side, zero latency)."""
    daal.ensure_head(store, table, key, value=VALUE)
    prev_id = daal.HEAD_ROW_ID
    for i in range(1, rows):
        writes = {f"grow-{i}#{j}": True for j in range(capacity)}
        store.table(table).update(
            (key, prev_id),
            [Set("RecentWrites", writes), Set("LogSize", capacity)])
        prev = store.get(table, (key, prev_id))
        prev_id = daal.append_row(store, table, key, prev, f"grown-{i}")
        store.table(table).update((key, prev_id), [Set("Value", VALUE)])


def _make_bench_handler(op: str, samples_per_call: int):
    """The measured SSF: times ``samples_per_call`` ops from inside."""
    def handler(ctx, payload):
        latencies = []
        for i in range(samples_per_call):
            start = ctx.platform_ctx.now
            if op == "read":
                ctx.read("kv", KEY)
            elif op == "write":
                ctx.write("kv", KEY, VALUE)
            elif op == "cond_write":
                ctx.cond_write("kv", KEY, VALUE, AttrExists("Key"))
            elif op == "invoke":
                ctx.sync_invoke("leaf", None)
            latencies.append(ctx.platform_ctx.now - start)
        return latencies

    return handler


def _build_runtime(mode: str, seed: int):
    if mode == "baseline":
        runtime = BaselineRuntime(seed=seed, latency_scale=1.0)
    else:
        # Figures 13/25 reproduce the paper's measurements of the
        # un-optimized protocol; the §4.4 fast path and the async/batched
        # I/O layer are benchmarked separately
        # (benchmarks/test_fastpath_ablation.py, test_async_io.py).
        runtime = BeldiRuntime(
            seed=seed, latency_scale=1.0,
            config=BeldiConfig(gc_t=1e12, tail_cache=False,
                               batch_reads=False, async_io=False,
                               batch_log_writes=False))
    return runtime


def measure_primitive_ops(mode: str, rows: int = 20, samples: int = 120,
                          batch: int = 10, seed: int = 33) -> dict:
    """Return ``{op: {"p50": ..., "p99": ..., "n": ...}}`` for one mode.

    Runs ``samples`` operations of each kind in batches of ``batch`` per
    SSF instance (instances arrive sequentially — the paper's 1 req/s
    low-load setting), re-growing the chain between batches so write-side
    growth does not drift the configuration away from ``rows``.
    """
    results = {}
    for op in OPS:
        runtime = _build_runtime(mode, seed)
        storage = "crosstable" if mode == "crosstable" else "daal"
        if mode == "baseline":
            ssf = runtime.register_ssf(
                "bench", _make_bench_handler(op, batch), tables=["kv"])
        else:
            ssf = runtime.register_ssf(
                "bench", _make_bench_handler(op, batch), tables=["kv"],
                storage_mode=storage)
        runtime.register_ssf("leaf", lambda ctx, p: "ok")
        env = ssf.env
        recorder = LatencyRecorder()

        def reset_data():
            table = env.data_table("kv")
            if mode == "baseline":
                env.seed("kv", KEY, VALUE)
            elif mode == "crosstable":
                env.seed("kv", KEY, VALUE)
            else:
                env.store.table(table)._partitions.clear()
                _pre_grow_chain(env.store, table, KEY, rows,
                                runtime.config.row_log_capacity)

        calls = max(1, samples // batch)

        def client():
            for _ in range(calls):
                # Re-grow between batches so write growth does not drift
                # the chain away from the configured ``rows``.
                reset_data()
                latencies = runtime.client_call("bench", None)
                for latency in latencies:
                    recorder.record(0.0, latency)
                runtime.kernel.sleep(100.0)

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        runtime.kernel.shutdown()
        results[op] = {"p50": recorder.p50, "p99": recorder.p99,
                       "n": recorder.count}
    return results


def traversal_ablation(chain_lengths=(2, 10, 25, 50),
                       samples: int = 30, seed: int = 9) -> dict:
    """Scan+projection vs pointer-chasing traversal cost by chain length.

    The design-choice ablation DESIGN.md calls out: Beldi's single
    projected query keeps traversal latency nearly flat, while the naive
    walk pays one round trip per row.
    """
    results = {}
    for rows in chain_lengths:
        runtime = BeldiRuntime(seed=seed, latency_scale=1.0,
                               config=BeldiConfig(gc_t=1e12,
                                                  tail_cache=False,
                                                  batch_reads=False,
                                                  async_io=False,
                                                  batch_log_writes=False))
        env = runtime.create_env("bench", tables=["kv"])
        table = env.data_table("kv")
        _pre_grow_chain(runtime.store, table, KEY, rows,
                        runtime.config.row_log_capacity)
        scan_rec, chase_rec = LatencyRecorder(), LatencyRecorder()

        def measurer():
            for _ in range(samples):
                start = runtime.kernel.now
                daal.load_skeleton(runtime.store, table, KEY)
                scan_rec.record(0.0, runtime.kernel.now - start)
                start = runtime.kernel.now
                daal.load_skeleton_by_pointer(runtime.store, table, KEY)
                chase_rec.record(0.0, runtime.kernel.now - start)

        runtime.kernel.spawn(measurer)
        runtime.kernel.run()
        runtime.kernel.shutdown()
        results[rows] = {"scan_p50": scan_rec.p50,
                         "chase_p50": chase_rec.p50}
    return results
