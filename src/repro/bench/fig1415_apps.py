"""Figures 14/15/26 driver: application latency vs throughput.

Open-loop constant-rate sweeps over the three applications, Beldi vs the
no-guarantees baseline. The paper runs 100-800 req/s against AWS's
1,000-concurrent-Lambda account cap; we scale both down ~10x (rates and
cap) so each point runs in seconds of wall time — the *shape* (a 2-3x
median gap at low load, a shared saturation knee at the concurrency cap,
converging tails near saturation) is what must reproduce, not absolute
numbers. EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps import build_app
from repro.core import BaselineRuntime, BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.workload import run_sweep

DEFAULT_RATES = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0)


def _platform_config(concurrency: int) -> PlatformConfig:
    return PlatformConfig(concurrency_limit=concurrency,
                          default_timeout=60_000.0)


def _build(app_name: str, mode: str, seed: int, concurrency: int,
           app_kwargs: Optional[dict] = None,
           config_overrides: Optional[dict] = None):
    app_kwargs = dict(app_kwargs or {})
    app = build_app(app_name, seed=seed, **app_kwargs)
    if mode == "baseline":
        runtime = BaselineRuntime(
            seed=seed, latency_scale=1.0,
            platform_config=_platform_config(concurrency))
    elif mode == "beldi":
        # Seed-faithful figure: every post-paper optimization (fast path,
        # async/batched I/O) pinned off; those are gated by their own
        # ablation benches. ``config_overrides`` lets ablation gates flip
        # individual knobs (e.g. ``observability``) on this exact setup.
        runtime = BeldiRuntime(
            seed=seed, latency_scale=1.0,
            config=BeldiConfig(gc_t=1e12, ic_restart_delay=1e12,
                               tail_cache=False, batch_reads=False,
                               async_io=False, batch_log_writes=False,
                               **(config_overrides or {})),
            platform_config=_platform_config(concurrency))
    else:
        raise ValueError(f"unknown mode {mode!r}")
    app.install(runtime)
    return runtime, app.entry, app.sample_request


def app_sweep(app_name: str, mode: str,
              rates: Sequence[float] = DEFAULT_RATES,
              duration_ms: float = 5_000.0,
              warmup_ms: float = 1_000.0,
              concurrency: int = 100,
              seed: int = 71,
              app_kwargs: Optional[dict] = None) -> list[dict]:
    """One mode's latency-vs-throughput curve; a list of report rows."""
    points = run_sweep(
        lambda: _build(app_name, mode, seed, concurrency, app_kwargs),
        rates=rates, duration_ms=duration_ms, warmup_ms=warmup_ms,
        seed=seed)
    return [point.row() for point in points]
