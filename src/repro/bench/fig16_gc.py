"""Figure 16 driver: the effect of garbage collection over time.

A single SSF performs one write to one hot key per request, at constant
load, for a long window. Without GC the linked DAAL grows without bound
and the write's scan+projection traversal slows proportionally; with the
GC triggered every 1/10/30 (scaled) minutes the chain stays bounded; the
cross-table variant has no chain at all but pays the transactional write
premium on every operation.

The paper runs 60 real minutes; we run a 10x-scaled 6 virtual minutes
with the trigger periods scaled the same way, reporting the median write
latency per time bucket — the same series the figure plots.
"""

from __future__ import annotations

from typing import Optional

from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.workload import run_constant_load

HOT_KEY = "hot"


def gc_timeseries(gc_period_ms: Optional[float],
                  mode: str = "daal",
                  duration_ms: float = 360_000.0,
                  bucket_ms: float = 30_000.0,
                  rate_rps: float = 20.0,
                  gc_t_ms: float = 5_000.0,
                  seed: int = 55) -> dict:
    """One configuration's median-write-latency time series.

    gc_period_ms:
        Trigger period for the GC SSF; ``None`` disables collection (the
        paper's "without GC" line).
    mode:
        ``"daal"`` or ``"crosstable"`` storage.
    """
    # Seed-faithful figure: post-paper optimizations (fast path,
    # async/batched I/O) pinned off so the GC cost curves match §7.3.
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=gc_t_ms, ic_restart_delay=1e12,
                           tail_cache=False, batch_reads=False,
                           async_io=False, batch_log_writes=False),
        platform_config=PlatformConfig(concurrency_limit=100))

    def writer(ctx, payload):
        ctx.write("kv", HOT_KEY, payload)
        return "ok"

    ssf = runtime.register_ssf("writer", writer, tables=["kv"],
                               storage_mode=mode)
    ssf.env.seed("kv", HOT_KEY, 0)
    if gc_period_ms is not None:
        runtime.start_collectors(ic_period=1e12, gc_period=gc_period_ms,
                                 envs=[ssf.env])
    result = run_constant_load(
        runtime, "writer", lambda rand: rand.randint(0, 1_000_000),
        rate_rps=rate_rps, duration_ms=duration_ms,
        seed=seed, bucket_width=bucket_ms)
    from repro.core import daal
    if mode == "daal":
        final_chain = daal.chain_length(
            ssf.env.store, ssf.env.data_table("kv"), HOT_KEY)
    else:
        final_chain = 1
    runtime.stop_collectors()
    runtime.kernel.shutdown()
    return {
        "series": result.recorder.series(q=50.0),
        "final_chain_rows": final_chain,
        "completed": result.completed,
        "p50": result.recorder.p50,
        "p99": result.recorder.p99,
    }
