"""Async-I/O ablation driver: overlapped round trips + batched log writes.

A travel-style transactional workload (the fig15 reserve path's shape,
concentrated): each request opens one transaction over ``N_KEYS`` items
spread across ``SHARDS`` shards (read + write per key — the reserve
txn's inventory decrements), commits, then fans out
``N_LEAVES`` parallel leaf invocations (the notify/hydrate edges of the
travel workflow). The commit's shadow flushes and lock releases, the
cross-shard fan-outs, and the parallel-invoke log claims are exactly the
hot paths the ``async_io``/``batch_log_writes`` flags target, so the
four flag settings separate cleanly:

``async_io``
    overlaps the commit fan-out (flushes/releases pay ``max`` instead of
    the sum) — the big p50 win;
``batch_log_writes``
    coalesces the N parallel-invoke claims into one ``BatchWriteItem``
    round trip — fewer requests at identical write units.

Run at nonzero virtual latency; with both flags off the numbers are
bit-for-bit the sequential PR 3 model (pinned separately by
``tests/core/test_async_io_flags.py``). ``$/op`` must stay flat: both
optimizations change round-trip counts and timing, never billed units.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.workload import run_closed_loop

SHARDS = 2
N_KEYS = 8
N_LEAVES = 3
REQUESTS = 12

CONFIGS = {
    "off-off": dict(async_io=False, batch_log_writes=False),
    "async-only": dict(async_io=True, batch_log_writes=False),
    "batch-only": dict(async_io=False, batch_log_writes=True),
    "on-on": dict(async_io=True, batch_log_writes=True),
}


def _keys() -> list[str]:
    return [f"item-{i:04d}" for i in range(N_KEYS)]


def build_runtime(async_io: bool, batch_log_writes: bool,
                  shards: int = SHARDS, replicas: int = 1,
                  read_consistency: str = "strong",
                  seed: int = 29) -> BeldiRuntime:
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12, async_io=async_io,
                           batch_log_writes=batch_log_writes),
        shards=shards, replicas=replicas,
        read_consistency=read_consistency)

    def book(ctx, payload):
        with ctx.transaction() as tx:
            for key in payload["keys"]:
                current = ctx.read("inv", key) or 0
                ctx.write("inv", key, current + 1)
        ctx.parallel_invoke([("notify", {"slot": i})
                             for i in range(N_LEAVES)])
        return {"ok": tx.committed}

    ssf = runtime.register_ssf("book", book, tables=["inv"])
    runtime.register_ssf("notify", lambda ctx, payload: "ok")
    for key in _keys():
        ssf.env.seed("inv", key, 0)
    return runtime


def run_point(name: str, async_io: bool, batch_log_writes: bool,
              **kwargs) -> dict:
    runtime = build_runtime(async_io, batch_log_writes, **kwargs)
    dollars_before = runtime.store.metering.dollar_cost()
    result = run_closed_loop(
        runtime, "book",
        [[{"keys": _keys()} for _ in range(REQUESTS)]])
    meter = runtime.store.metering
    counts = {op: rec.count for op, rec in meter.ops.items()}
    # Exactly-once effects: every committed request incremented every key
    # exactly once — the ablation must not trade correctness for speed.
    env = runtime.envs["book"]
    effects = [env.peek("inv", key) for key in _keys()]
    point = {
        "config": name,
        "completed": result.completed,
        "failures": result.failures,
        "p50_ms": result.recorder.p50,
        "p99_ms": result.recorder.p99,
        "dollars_per_op": ((meter.dollar_cost() - dollars_before)
                           / max(1, result.completed)),
        "round_trips": sum(counts.values()),
        "batch_writes": counts.get("batch_write", 0),
        "effects": effects,
    }
    runtime.kernel.shutdown()
    return point


def run_ablation(**kwargs) -> list[dict]:
    return [run_point(name, **dict(spec, **kwargs))
            for name, spec in CONFIGS.items()]


def ablation_table(points: list[dict]) -> str:
    rows = []
    for point in points:
        rows.append([
            point["config"],
            point["completed"],
            round(point["p50_ms"], 1),
            round(point["p99_ms"], 1),
            f"{point['dollars_per_op']:.2e}",
            point["round_trips"],
            point["batch_writes"],
        ])
    return format_table(
        f"Async I/O ablation — {REQUESTS} booking txns x {N_KEYS} keys "
        f"+ {N_LEAVES} parallel leaves, shards={SHARDS}",
        ["flags", "done", "p50 ms", "p99 ms", "$/op", "round trips",
         "batch writes"], rows)


def main() -> None:  # pragma: no cover - manual driver
    print(ablation_table(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
