"""Elasticity driver: throughput under Zipf hot-key skew, static vs
elastic placement.

The shard-scaling figure showed uniform per-user keys spreading across
shards and throughput scaling with the fleet. This driver breaks that
assumption the way production traffic does: the same closed-loop
``profile`` workload at a fixed 4-shard fleet, but with each request's
key drawn from a Zipf(s≈1.1) popularity distribution over a shared key
population. Static consistent hashing pins the hottest chains to
whatever shard their hash picked; that shard's ``ServiceCapacity`` queue
saturates and caps the fleet. With ``elastic=True`` the hot-shard
detector observes the skew mid-run and live-migrates the hottest DAAL
chains to underloaded shards (``repro/kvstore/rebalance.py``), after
which the same offered load spreads over all nodes.

Measured per run: throughput over the makespan, wall-to-wall latency
percentiles, $/op from the merged metering books — with the migration
traffic's own request units reported *separately* (the migrator meters
its copies/deletes/records in its own book), so the gate can check the
workload's $/op stays flat modulo the one-time move cost — plus the
per-shard dashboard and its load-imbalance summary before/after.
"""

from __future__ import annotations

from repro.bench.reporting import (
    format_table,
    load_imbalance,
    per_shard_rows,
    per_shard_table,
)
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.sim.randsrc import RandomSource
from repro.workload import skewed_keys

SHARDS = 4
N_USERS = 24
REQUESTS_PER_USER = 80
SHARD_CAPACITY = 2      # servers per store node
N_KEYS = 256            # shared key population
ZIPF_S = 1.1            # hot-key skew exponent
GC_PERIOD_MS = 600.0    # periodic collection inside the measured run
SEED = 11


def build_runtime(elastic: bool, seed: int = SEED,
                  shards: int = SHARDS,
                  capacity: int = SHARD_CAPACITY,
                  n_keys: int = N_KEYS) -> BeldiRuntime:
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(
            gc_t=1200.0,
            elastic=elastic,
            # The skew is visible within a few hundred routed ops; act
            # early so the recovered throughput dominates the run.
            elastic_check_every=32,
            elastic_min_window=400,
            elastic_load_ratio=1.4,
            elastic_max_moves=16),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=shards, shard_capacity=capacity)

    def profile(ctx, payload):
        # A data-heavy request: balance check, debit, statement append —
        # five exactly-once ops against the *account's own* chains, so
        # per-key skew translates into per-shard store load rather than
        # drowning in the (instance-keyed, uniformly spread) intent and
        # log-table traffic.
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        record = {"visits": record["visits"] + 1}
        ctx.write("profiles", uid, record)
        history = ctx.read("statements", uid) or {"entries": 0}
        ctx.write("statements", uid, {"entries": history["entries"] + 1})
        ctx.write("profiles", uid, dict(record, balanced=True))
        return {"user": uid, "visits": record["visits"]}

    ssf = runtime.register_ssf("profile", profile,
                               tables=["profiles", "statements"])
    for i in range(n_keys):
        ssf.env.seed("profiles", f"wallet-{i:04d}", {"visits": 0})
    return runtime


def zipf_payloads(seed: int = SEED, n_users: int = N_USERS,
                  requests_per_user: int = REQUESTS_PER_USER,
                  n_keys: int = N_KEYS, s: float = ZIPF_S) -> list:
    """One payload sequence per user, keys Zipf-skewed over the shared
    population. Drawn from a single named stream, so static and elastic
    runs (and re-runs) see the byte-identical request series."""
    # "wallet-%04d" names: under the default ring this population's
    # hottest Zipf ranks co-locate (~60% of the request weight on one
    # shard) — the adversarial-but-ordinary placement elasticity exists
    # for. fig_shard_scaling's uniform per-user keys are the benign case.
    keys = [f"wallet-{i:04d}" for i in range(n_keys)]
    rand = RandomSource(seed, "zipf-workload")
    return [[{"user": key}
             for key in skewed_keys(keys, requests_per_user,
                                    s, rand.child(f"user{u}"))]
            for u in range(n_users)]


def _gc_driver(runtime, done: dict, period_ms: float):
    """Periodic GC inside the measured run (the deployed configuration:
    chains stay short, orphans are reclaimed — without it a no-GC hot
    key grows a several-hundred-row chain whose per-op cost swamps any
    placement decision). Runs as a kernel process and exits once the
    closed loop finishes, so ``kernel.run()`` still quiesces."""
    from repro.core.gc import make_garbage_collector

    class _Ctx:
        request_id = "bench-gc"
        invocation_index = 0

        def crash_point(self, tag):
            pass

    handlers = [make_garbage_collector(runtime, env)
                for env in runtime.envs.values()]

    def driver():
        while not done["flag"]:
            runtime.kernel.sleep(period_ms)
            for handler in handlers:
                handler(_Ctx(), {})

    runtime.kernel.spawn(driver, name="gc-driver")


def _run_closed_loop_with_gc(runtime, entry: str,
                             user_payloads) -> "ClosedLoopResult":
    """The :func:`run_closed_loop` shape plus a periodic GC driver.

    The driver must live *inside* the same ``kernel.run()`` as the
    users (its wake-sleep loop would otherwise keep the kernel from
    quiescing), so the last user to finish raises the done flag the
    driver exits on.
    """
    from repro.platform.errors import (FunctionCrashed, FunctionTimeout,
                                       TooManyRequests)
    from repro.workload.runner import ClosedLoopResult

    result = ClosedLoopResult(makespan_ms=0.0, failures=0)
    finished_at = [0.0]
    remaining = [len(user_payloads)]
    done = {"flag": False}
    _gc_driver(runtime, done, GC_PERIOD_MS)

    def user(payloads) -> None:
        for payload in payloads:
            start = runtime.kernel.now
            try:
                runtime.client_call(entry, payload)
            except (FunctionCrashed, FunctionTimeout, TooManyRequests):
                result.failures += 1
                continue
            result.recorder.record(start, runtime.kernel.now)
        finished_at[0] = max(finished_at[0], runtime.kernel.now)
        remaining[0] -= 1
        if remaining[0] == 0:
            done["flag"] = True

    start = runtime.kernel.now
    for index, payloads in enumerate(user_payloads):
        runtime.kernel.spawn(user, list(payloads), name=f"user-{index}")
    runtime.kernel.run()
    result.makespan_ms = finished_at[0] - start
    return result


def run_point(elastic: bool, seed: int = SEED, **kwargs) -> dict:
    runtime = build_runtime(elastic, seed=seed, **kwargs)
    store = runtime.store
    cost_before = store.metering.dollar_cost()
    result = _run_closed_loop_with_gc(runtime, "profile",
                                      zipf_payloads(seed))
    per_shard = per_shard_rows(store, "profile.profiles")
    migration_dollars = 0.0
    migrations = rows_moved = 0
    if runtime.elasticity is not None:
        stats = runtime.elasticity.migrator.stats
        migration_dollars = stats.dollars()
        migrations = stats.migrations
        rows_moved = stats.rows_moved
    total_dollars = store.metering.dollar_cost() - cost_before
    completed = max(1, result.completed)
    point = {
        "elastic": elastic,
        "completed": result.completed,
        "failures": result.failures,
        "makespan_ms": result.makespan_ms,
        "throughput_rps": result.throughput_rps,
        "p50_ms": result.recorder.p50,
        "p99_ms": result.recorder.p99,
        "dollars_per_op": total_dollars / completed,
        "workload_dollars_per_op": (total_dollars - migration_dollars)
        / completed,
        "migration_dollars": migration_dollars,
        "migrations": migrations,
        "rows_moved": rows_moved,
        "per_shard": per_shard,
        "imbalance": load_imbalance(per_shard),
        "forwards": len(store.ring.forwards),
    }
    from repro.kvstore.rebalance import placement_residue
    point["residue"] = placement_residue(store)
    runtime.kernel.shutdown()
    return point


def run_elasticity(seed: int = SEED, **kwargs) -> dict:
    return {
        "static": run_point(False, seed=seed, **kwargs),
        "elastic": run_point(True, seed=seed, **kwargs),
    }


def elasticity_table(points: dict) -> str:
    rows = []
    for label in ("static", "elastic"):
        point = points[label]
        rows.append([
            label,
            point["completed"],
            round(point["throughput_rps"], 1),
            round(point["p50_ms"], 1),
            round(point["p99_ms"], 1),
            f"{point['workload_dollars_per_op']:.2e}",
            f"{point['migration_dollars']:.2e}",
            point["migrations"],
            round(point["imbalance"]["max_mean"], 2),
            round(point["imbalance"]["gini"], 2),
        ])
    speedup = (points["elastic"]["throughput_rps"]
               / max(1e-9, points["static"]["throughput_rps"]))
    return format_table(
        f"Hot-key elasticity — {N_USERS} users x {REQUESTS_PER_USER} "
        f"reqs, Zipf(s={ZIPF_S}) over {N_KEYS} keys, {SHARDS} shards "
        f"(elastic/static = {speedup:.2f}x)",
        ["placement", "done", "rps", "p50 ms", "p99 ms", "$/op",
         "migr $", "moves", "max/mean", "gini"], rows)


def shard_dashboards(points: dict) -> str:
    return "\n\n".join(
        per_shard_table(f"Per-shard metering — {label} placement",
                        points[label]["per_shard"])
        for label in ("static", "elastic"))


def main() -> None:  # pragma: no cover - manual driver
    points = run_elasticity()
    print(elasticity_table(points))
    print()
    print(shard_dashboards(points))


if __name__ == "__main__":  # pragma: no cover
    main()
