"""Open-loop latency-vs-offered-RPS curves at the deep topology.

The scale figure the closed-loop benches cannot produce: a target-RPS
sweep with Poisson arrivals launched on schedule regardless of
completion (no coordinated omission — see
:mod:`repro.workload.openloop`), against the sharded + replicated +
elastic runtime. Each offered rate reports goodput, p50/p95/p99
measured from the *intended* arrival, shed/rejected counts from the
admission window, and $/op from the store's metering books; the sweep
ends past the saturation knee so :func:`repro.workload.find_knee` can
identify it.

The default sweep offers >= 10^5 simulated requests in total (the
ROADMAP's "million-user" scale step; beyond-knee points are cheap
because shed arrivals never reach the backend), and exists in a
CI-smoke size via ``run_sweep(rates=..., duration_ms=...)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.sim.randsrc import RandomSource
from repro.workload import (
    OpenLoopConfig,
    poisson_arrivals,
    run_open_loop,
)

#: Offered rates (requests per virtual second). The tail rates sit far
#: past saturation so the knee is bracketed, not extrapolated.
RATES = (50.0, 100.0, 150.0, 200.0, 300.0, 450.0, 700.0, 1000.0, 1500.0)
DURATION_MS = 25_000.0
WARMUP_MS = 1_000.0
N_KEYS = 256
SHARDS = 4
REPLICAS = 2
SHARD_CAPACITY = 2
MAX_IN_FLIGHT = 64
MAX_QUEUE = 128


def build_runtime(seed: int = 11) -> tuple[BeldiRuntime, str,
                                           Callable[..., Any]]:
    """Fresh sharded/replicated/elastic runtime + the profile app."""
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=SHARDS, shard_capacity=SHARD_CAPACITY,
        replicas=REPLICAS, elastic=True)

    def profile(ctx, payload):
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        record = {"visits": record["visits"] + 1}
        ctx.write("profiles", uid, record)
        return {"user": uid, "visits": record["visits"]}

    ssf = runtime.register_ssf("profile", profile, tables=["profiles"])
    for i in range(N_KEYS):
        ssf.env.seed("profiles", f"user-{i:04d}", {"visits": 0})

    def sample(rand: RandomSource) -> dict:
        return {"user": f"user-{rand.randint(0, N_KEYS - 1):04d}"}

    return runtime, "profile", sample


def run_point(rate: float, duration_ms: float = DURATION_MS,
              warmup_ms: float = WARMUP_MS, seed: int = 11) -> dict:
    """One offered rate from a clean system, with $/op metering."""
    runtime, entry, sample = build_runtime(seed)
    cost_before = runtime.store.metering.dollar_cost()
    arrivals = poisson_arrivals(
        rate, warmup_ms + duration_ms,
        RandomSource(seed, f"openloop/arrivals/{rate}"))
    config = OpenLoopConfig(max_in_flight=MAX_IN_FLIGHT, policy="queue",
                            max_queue=MAX_QUEUE, warmup_ms=warmup_ms)
    result = run_open_loop(runtime, entry, sample, arrivals,
                           config=config, seed=seed, offered_rps=rate,
                           duration_ms=duration_ms)
    dollars = runtime.store.metering.dollar_cost() - cost_before
    point = dict(result.row())
    point["arrivals"] = len(arrivals)
    point["dollars_per_op"] = dollars / max(1, result.completed)
    point["queued"] = result.admission.queued
    point["max_queue_depth"] = result.admission.max_queue_depth
    runtime.stop_collectors()
    runtime.kernel.shutdown()
    return point


def run_sweep(rates=RATES, duration_ms: float = DURATION_MS,
              warmup_ms: float = WARMUP_MS, seed: int = 11) -> dict:
    """The full curve + knee; ``points`` rows are JSON-ready."""
    points = [run_point(rate, duration_ms, warmup_ms, seed)
              for rate in rates]
    knee = _knee_from_rows(points)
    return {
        "points": points,
        "knee": knee,
        "total_arrivals": sum(p["arrivals"] for p in points),
        "config": {
            "rates": list(rates),
            "duration_ms": duration_ms,
            "warmup_ms": warmup_ms,
            "shards": SHARDS,
            "replicas": REPLICAS,
            "shard_capacity": SHARD_CAPACITY,
            "max_in_flight": MAX_IN_FLIGHT,
            "max_queue": MAX_QUEUE,
            "seed": seed,
        },
    }


def _knee_from_rows(points: list[dict],
                    latency_factor: float = 3.0,
                    goodput_floor: float = 0.95) -> dict:
    """find_knee over already-summarized rows (same rules, row inputs)."""
    baseline_p99 = points[0]["p99_ms"]
    knee = None
    saturated_at = None
    for point in points:
        offered = point["offered_rps"]
        p99 = point["p99_ms"]
        goodput_ok = point["completed"] >= goodput_floor * point["offered"]
        latency_ok = (baseline_p99 is not None and p99 is not None
                      and p99 <= latency_factor * baseline_p99)
        if goodput_ok and latency_ok:
            knee = offered
        elif saturated_at is None:
            saturated_at = offered
    return {
        "knee_rps": knee,
        "saturated_at": saturated_at,
        "baseline_p99_ms": baseline_p99,
    }


def sweep_table(sweep: dict) -> str:
    rows = []
    for point in sweep["points"]:
        rows.append([
            point["offered_rps"],
            point["goodput_rps"],
            point["p50_ms"],
            point["p95_ms"],
            point["p99_ms"],
            point["shed"],
            point["errors"],
            f"{point['dollars_per_op']:.2e}",
        ])
    knee = sweep["knee"]
    title = (f"Open-loop sweep — {SHARDS} shards x {REPLICAS} replicas, "
             f"elastic, window={MAX_IN_FLIGHT}/queue={MAX_QUEUE}; "
             f"knee ~ {knee['knee_rps']} RPS "
             f"(saturated at {knee['saturated_at']})")
    return format_table(
        title,
        ["offered", "goodput", "p50 ms", "p95 ms", "p99 ms", "shed",
         "errors", "$/op"], rows)


def main() -> None:  # pragma: no cover - manual driver
    sweep = run_sweep()
    print(sweep_table(sweep))


if __name__ == "__main__":  # pragma: no cover
    main()
