"""Replication driver: the consistency/latency/$ trade, measured.

A **read-heavy closed-loop workload** (each request renders a "feed" of
``READS_PER_REQUEST`` articles through ``ctx.read_eventual``) runs
against three store configurations:

``strong-r1``
    The unreplicated baseline: ``shards=2, replicas=1`` — bit-for-bit
    the plain :class:`~repro.kvstore.ShardedStore`.
``strong-r3``
    Replication on (``replicas=3``) but every read still strong: proves
    replica groups cost nothing when unused — the leader's latency and
    rand streams are untouched, so the numbers match ``strong-r1``.
``eventual-r3``
    Replication on and ``read_consistency="eventual"``: the feed reads
    route to followers at DynamoDB's half-price eventual rate. Run at
    ``replication_lag_scale=0`` so followers are current — isolating
    the *pricing* effect for the $-gate and the *routing* effect for
    the latency gate. (Staleness under nonzero lag is exercised by
    ``tests/kvstore/test_replication.py``, where it can be asserted
    deterministically.)

Reported per point: throughput, p50/p99, read-$/op, total $/op, which
tables served eventual reads (the leader-routing proof: DAAL log/intent
tables must never appear), and the replica groups' shipping counters.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.workload import run_closed_loop

SHARDS = 2
REPLICAS = 3
N_USERS = 16
REQUESTS_PER_USER = 4
READS_PER_REQUEST = 5
N_ARTICLES = 48

CONFIGS = {
    "strong-r1": dict(replicas=1, read_consistency="strong"),
    "strong-r3": dict(replicas=REPLICAS, read_consistency="strong"),
    "eventual-r3": dict(replicas=REPLICAS, read_consistency="eventual"),
}

#: Tables Beldi's correctness rests on: any eventual read here means a
#: protocol read escaped the leader. The gate asserts this set stays
#: disjoint from the eventual-read books.
PROTOCOL_TABLE_MARKERS = (".intent", ".readlog", ".invokelog",
                          ".writelog", ".locksets", ".shadow")


def _article_key(index: int) -> str:
    return f"article-{index % N_ARTICLES:04d}"


def build_runtime(replicas: int, read_consistency: str,
                  lag_scale: float = 0.0, seed: int = 13) -> BeldiRuntime:
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=SHARDS, replicas=replicas,
        read_consistency=read_consistency,
        replication_lag_scale=lag_scale)

    def feed(ctx, payload):
        found = []
        for offset in range(READS_PER_REQUEST):
            item = ctx.read_eventual(
                "articles", _article_key(payload["start"] + offset))
            if item is not None:
                found.append(item["id"])
        return {"articles": found}

    ssf = runtime.register_ssf("feed", feed, tables=["articles"])
    for i in range(N_ARTICLES):
        ssf.env.seed("articles", _article_key(i),
                     {"id": i, "body": "article body " * 6})
    return runtime


def run_point(name: str, replicas: int, read_consistency: str,
              lag_scale: float = 0.0, seed: int = 13) -> dict:
    runtime = build_runtime(replicas, read_consistency,
                            lag_scale=lag_scale, seed=seed)
    read_dollars_before = runtime.store.metering.read_dollars()
    dollars_before = runtime.store.metering.dollar_cost()
    result = run_closed_loop(
        runtime, "feed",
        [[{"start": user * 7 + request * READS_PER_REQUEST}
          for request in range(REQUESTS_PER_USER)]
         for user in range(N_USERS)])
    # Deterministic read-back: the same probe request must see the same
    # articles in every configuration (articles never change, so even
    # eventual reads have nothing stale to observe at lag 0).
    probe = runtime.run_workflow("feed", {"start": 3})
    meter = runtime.store.metering
    eventual_tables = {table: count for table, count
                       in meter.per_table_eventual.items() if count}
    stats = (runtime.store.replication_stats
             if hasattr(runtime.store, "replication_stats") else None)
    point = {
        "config": name,
        "completed": result.completed,
        "failures": result.failures,
        "throughput_rps": result.throughput_rps,
        "p50_ms": result.recorder.p50,
        "p99_ms": result.recorder.p99,
        "read_dollars_per_op": ((meter.read_dollars() - read_dollars_before)
                                / max(1, result.completed)),
        "dollars_per_op": ((meter.dollar_cost() - dollars_before)
                           / max(1, result.completed)),
        "eventual_tables": eventual_tables,
        "probe": probe["articles"],
        "shipped": stats.shipped if stats else 0,
        "eventual_reads": stats.eventual_reads if stats else 0,
    }
    runtime.kernel.shutdown()
    return point


def run_replication(configs=CONFIGS, **kwargs) -> list[dict]:
    return [run_point(name, **dict(spec, **kwargs))
            for name, spec in configs.items()]


def protocol_tables_served_eventual(point: dict) -> list[str]:
    """Protocol tables that served eventual reads (must be empty)."""
    return sorted(
        table for table in point["eventual_tables"]
        if any(marker in table for marker in PROTOCOL_TABLE_MARKERS))


def replication_table(points: list[dict]) -> str:
    rows = []
    for point in points:
        rows.append([
            point["config"],
            point["completed"],
            round(point["throughput_rps"], 1),
            round(point["p50_ms"], 1),
            round(point["p99_ms"], 1),
            f"{point['read_dollars_per_op']:.2e}",
            f"{point['dollars_per_op']:.2e}",
            point["eventual_reads"],
        ])
    return format_table(
        f"Replication — {N_USERS} users x {REQUESTS_PER_USER} feed "
        f"requests x {READS_PER_REQUEST} reads, shards={SHARDS}",
        ["config", "done", "rps", "p50 ms", "p99 ms", "read $/op",
         "$/op", "ev reads"], rows)


def main() -> None:  # pragma: no cover - manual driver
    points = run_replication()
    print(replication_table(points))


if __name__ == "__main__":  # pragma: no cover
    main()
