"""Goodput through an incident: the resilience layer's money figure.

One open-loop run at a sub-knee rate against the 2-shard topology, with
shard 0 dark for ~20% of the measured window — four times over, crossing
``resilience`` on/off with incident/fault-free:

========= ============ ==========================================
run        timeline     what it shows
========= ============ ==========================================
incident   on           retries + breaker ride out the window
baseline   on           the outage-free reference curve
raw        off          every shard-0 touch dies raw mid-window
raw-clean  off          the flags-off cost reference
========= ============ ==========================================

Goodput and latency are sliced **by arrival phase** (pre / during /
post the dark window, from the recorder's timestamped events), so a
request that arrives mid-incident and completes after the heal is
credited to the incident — exactly the wrk2-style accounting the
open-loop driver exists for. The gates
(``benchmarks/test_resilience.py``):

- goodput for arrivals *during* the outage: resilience on >= 3x off;
- post-recovery p99 bounded by a small multiple of the fault-free p99
  (the backlog must drain, not smear into the rest of the run);
- fault-free $/op with the layer on within 10% of flags-off (it is
  bit-for-bit identical, so this is an equality in practice).

``RESILIENCE_RATE`` / ``RESILIENCE_DURATION_MS`` shrink the run for CI
smoke; the dark window scales with the duration (25%..45% of the
measured window) so the phase structure survives the shrink.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.bench.reporting import format_table
from repro.core import BeldiConfig, BeldiRuntime
from repro.kvstore import FaultTimeline
from repro.platform import PlatformConfig
from repro.sim.randsrc import RandomSource
from repro.workload import (
    OpenLoopConfig,
    poisson_arrivals,
    run_open_loop,
)

RATE_RPS = 60.0
DURATION_MS = 20_000.0
WARMUP_MS = 1_000.0
N_KEYS = 256
SHARDS = 2
#: Dark-window bounds as fractions of the measured duration: 20% of the
#: run, landed after the warm phase has stabilized.
OUTAGE_START_FRAC = 0.25
OUTAGE_END_FRAC = 0.45
MAX_IN_FLIGHT = 256
MAX_QUEUE = 512

#: Incident-scale retry knobs: cumulative backoff must span the dark
#: window (seconds), and the breaker must re-probe often enough that a
#: healed store is noticed before the retry budget drains on fast-fails.
RESILIENCE_KNOBS = dict(
    retry_max_attempts=12,
    retry_base_backoff=25.0,
    breaker_cooldown=250.0,
)


def build_runtime(seed: int = 11, resilience: bool = True,
                  timeline: FaultTimeline | None = None
                  ) -> tuple[BeldiRuntime, str, Callable[..., Any]]:
    """Fresh 2-shard runtime + the profile app (see fig_open_loop)."""
    knobs = RESILIENCE_KNOBS if resilience else {}
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12, resilience=resilience, **knobs),
        platform_config=PlatformConfig(concurrency_limit=2_000),
        shards=SHARDS, fault_timeline=timeline)

    def profile(ctx, payload):
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        record = {"visits": record["visits"] + 1}
        ctx.write("profiles", uid, record)
        return {"user": uid, "visits": record["visits"]}

    ssf = runtime.register_ssf("profile", profile, tables=["profiles"])
    for i in range(N_KEYS):
        ssf.env.seed("profiles", f"user-{i:04d}", {"visits": 0})

    def sample(rand: RandomSource) -> dict:
        return {"user": f"user-{rand.randint(0, N_KEYS - 1):04d}"}

    return runtime, "profile", sample


def _phase_row(recorder, start: float, end: float) -> dict:
    sub = recorder.window(start, end)
    seconds = (end - start) / 1000.0
    has = bool(sub.samples)
    return {
        "window_ms": [start, end],
        "arrivals": len(sub.events),
        "completed": sub.count,
        "goodput_rps": round(sub.count / seconds, 2) if seconds else 0.0,
        "p50_ms": round(sub.p50, 1) if has else None,
        "p99_ms": round(sub.p99, 1) if has else None,
        "failed": {k: v for k, v in sorted(sub.outcomes.items())
                   if k != "ok"},
    }


def run_once(resilience: bool, dark: bool,
             rate: float = RATE_RPS, duration_ms: float = DURATION_MS,
             warmup_ms: float = WARMUP_MS, seed: int = 11) -> dict:
    """One open-loop run, phase-sliced around the (optional) outage."""
    t0 = OUTAGE_START_FRAC * duration_ms
    t1 = OUTAGE_END_FRAC * duration_ms
    timeline = None
    if dark:
        # Absolute virtual times: the driver starts at ~0, arrivals are
        # offset by the warmup, so a measured-time window [t0, t1)
        # means an absolute window shifted by the warmup.
        timeline = FaultTimeline().outage(warmup_ms + t0, warmup_ms + t1,
                                          shards=0)
    runtime, entry, sample = build_runtime(seed, resilience=resilience,
                                           timeline=timeline)
    cost_before = runtime.store.metering.dollar_cost()
    arrivals = poisson_arrivals(
        rate, warmup_ms + duration_ms,
        RandomSource(seed, f"resilience/arrivals/{rate}"))
    config = OpenLoopConfig(max_in_flight=MAX_IN_FLIGHT, policy="queue",
                            max_queue=MAX_QUEUE, warmup_ms=warmup_ms)
    result = run_open_loop(runtime, entry, sample, arrivals,
                           config=config, seed=seed, offered_rps=rate,
                           duration_ms=duration_ms)
    dollars = runtime.store.metering.dollar_cost() - cost_before
    recorder = result.recorder
    run = {
        "resilience": resilience,
        "dark": dark,
        "overall": dict(result.row()),
        "dollars_per_op": dollars / max(1, result.completed),
        "phases": {
            "pre": _phase_row(recorder, 0.0, t0),
            "during": _phase_row(recorder, t0, t1),
            "post": _phase_row(recorder, t1, duration_ms),
        },
    }
    if runtime.resilience is not None:
        run["resilience_stats"] = runtime.resilience.snapshot()
    runtime.stop_collectors()
    runtime.kernel.shutdown()
    return run


def run_figure(rate: float = RATE_RPS, duration_ms: float = DURATION_MS,
               warmup_ms: float = WARMUP_MS, seed: int = 11) -> dict:
    runs = {
        "incident": run_once(True, True, rate, duration_ms, warmup_ms,
                             seed),
        "raw": run_once(False, True, rate, duration_ms, warmup_ms, seed),
        "baseline": run_once(True, False, rate, duration_ms, warmup_ms,
                             seed),
        "raw_clean": run_once(False, False, rate, duration_ms,
                              warmup_ms, seed),
    }
    during_on = runs["incident"]["phases"]["during"]["goodput_rps"]
    during_off = runs["raw"]["phases"]["during"]["goodput_rps"]
    return {
        "runs": runs,
        "goodput_ratio_during_outage": (
            round(during_on / during_off, 2) if during_off
            else float("inf")),
        "post_p99_ms": runs["incident"]["phases"]["post"]["p99_ms"],
        "fault_free_p99_ms": runs["baseline"]["overall"]["p99_ms"],
        "cost_overhead": (
            runs["baseline"]["dollars_per_op"]
            / runs["raw_clean"]["dollars_per_op"] - 1.0),
        "config": {
            "rate_rps": rate,
            "duration_ms": duration_ms,
            "warmup_ms": warmup_ms,
            "outage_ms": [OUTAGE_START_FRAC * duration_ms,
                          OUTAGE_END_FRAC * duration_ms],
            "shards": SHARDS,
            "n_keys": N_KEYS,
            "max_in_flight": MAX_IN_FLIGHT,
            "max_queue": MAX_QUEUE,
            "knobs": dict(RESILIENCE_KNOBS),
            "seed": seed,
        },
    }


def figure_table(figure: dict) -> str:
    rows = []
    for name, run in figure["runs"].items():
        for phase in ("pre", "during", "post"):
            row = run["phases"][phase]
            rows.append([
                name, phase,
                row["goodput_rps"],
                row["p50_ms"],
                row["p99_ms"],
                sum(row["failed"].values()),
            ])
    title = (f"Resilience under a dark shard — "
             f"goodput(during) on/off = "
             f"{figure['goodput_ratio_during_outage']}x, "
             f"$/op overhead = {figure['cost_overhead'] * 100:.2f}%")
    return format_table(
        title, ["run", "phase", "goodput", "p50 ms", "p99 ms", "failed"],
        rows)


def main() -> None:  # pragma: no cover - manual driver
    print(figure_table(run_figure()))


if __name__ == "__main__":  # pragma: no cover
    main()
