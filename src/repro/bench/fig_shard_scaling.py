"""Shard-scaling driver: throughput, latency, and $/op vs shard count.

A **parallel multi-user workload** against the Beldi runtime with its
store partitioned across 1/2/4/8 shard nodes. Each shard node has a
bounded service capacity (a ``ServiceCapacity`` queue with a few
servers, the way a real partition has bounded provisioned throughput),
so a single node saturates under concurrent users and sharding adds real
aggregate capacity — the partitioning lever Netherite identifies as the
main driver of serverless-workflow throughput.

The workload is closed-loop: ``n_users`` simulated clients each issue
``requests_per_user`` sequential ``profile`` requests (one exactly-once
read plus one exactly-once write against the user's own DAAL item, so
the key population spreads across shards by consistent hashing).
Throughput is completed requests over the makespan; latency percentiles
are wall-to-wall per request; $/op comes from the merged per-node
request metering, same books as the §7.3 cost analysis.
"""

from __future__ import annotations

from repro.bench.reporting import (
    format_table,
    load_imbalance,
    per_shard_rows,
    per_shard_table,
)
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import PlatformConfig
from repro.workload import run_closed_loop

SHARD_COUNTS = (1, 2, 4, 8)
N_USERS = 24
REQUESTS_PER_USER = 6
SHARD_CAPACITY = 2  # servers per store node


def build_runtime(n_shards: int, n_users: int, seed: int,
                  capacity: int) -> BeldiRuntime:
    # elastic=False: this figure measures *static* consistent-hash
    # placement under uniform per-user keys — the baseline the
    # elasticity figure (fig_elasticity) is judged against.
    runtime = BeldiRuntime(
        seed=seed, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=n_shards, shard_capacity=capacity, elastic=False)

    def profile(ctx, payload):
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        record = {"visits": record["visits"] + 1}
        ctx.write("profiles", uid, record)
        return {"user": uid, "visits": record["visits"]}

    ssf = runtime.register_ssf("profile", profile, tables=["profiles"])
    for i in range(n_users):
        ssf.env.seed("profiles", f"user-{i:04d}", {"visits": 0})
    return runtime


def run_shard_point(n_shards: int, n_users: int = N_USERS,
                    requests_per_user: int = REQUESTS_PER_USER,
                    capacity: int = SHARD_CAPACITY,
                    seed: int = 11) -> dict:
    """One shard count: drive all users to completion, measure."""
    runtime = build_runtime(n_shards, n_users, seed, capacity)
    cost_before = runtime.store.metering.dollar_cost()
    result = run_closed_loop(
        runtime, "profile",
        [[{"user": f"user-{i:04d}"}] * requests_per_user
         for i in range(n_users)])
    store = runtime.store
    per_shard = (store.items_per_shard("profile.profiles")
                 if hasattr(store, "items_per_shard") else
                 [store.item_count("profile.profiles")])
    point = {
        "shards": n_shards,
        "completed": result.completed,
        "failures": result.failures,
        "makespan_ms": result.makespan_ms,
        "throughput_rps": result.throughput_rps,
        "p50_ms": result.recorder.p50,
        "p99_ms": result.recorder.p99,
        "dollars_per_op": ((store.metering.dollar_cost() - cost_before)
                           / max(1, result.completed)),
        "keys_per_shard": per_shard,
        "per_shard": per_shard_rows(store, "profile.profiles"),
    }
    point["imbalance"] = load_imbalance(point["per_shard"])
    runtime.kernel.shutdown()
    return point


def run_scaling(shard_counts=SHARD_COUNTS, **kwargs) -> list[dict]:
    return [run_shard_point(n, **kwargs) for n in shard_counts]


def scaling_table(points: list[dict]) -> str:
    base = points[0]["throughput_rps"]
    rows = []
    for point in points:
        rows.append([
            point["shards"],
            point["completed"],
            round(point["throughput_rps"], 1),
            round(point["throughput_rps"] / base, 2),
            round(point["p50_ms"], 1),
            round(point["p99_ms"], 1),
            f"{point['dollars_per_op']:.2e}",
            "/".join(str(c) for c in point["keys_per_shard"]),
        ])
    return format_table(
        f"Shard scaling — {N_USERS} parallel users x "
        f"{REQUESTS_PER_USER} requests, {SHARD_CAPACITY} servers/shard",
        ["shards", "done", "rps", "speedup", "p50 ms", "p99 ms", "$/op",
         "keys/shard"], rows)


def shard_dashboards(points: list[dict]) -> str:
    """Per-shard metering dashboards, one table per shard count > 1."""
    blocks = []
    for point in points:
        if point["shards"] <= 1:
            continue
        blocks.append(per_shard_table(
            f"Per-shard metering — {point['shards']} shards",
            point["per_shard"]))
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - manual driver
    points = run_scaling()
    print(scaling_table(points))
    print()
    print(shard_dashboards(points))


if __name__ == "__main__":  # pragma: no cover
    main()
