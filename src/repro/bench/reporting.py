"""Paper-style table and series printing for bench output."""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: dict) -> str:
    """``{label: [(x, y), ...]}`` -> aligned multi-series listing."""
    lines = [title, "-" * len(title)]
    for label in sorted(series):
        points = ", ".join(f"({x:g}, {y:.1f})" for x, y in series[label])
        lines.append(f"{label:24s} {points}")
    return "\n".join(lines)


def per_shard_rows(store, table: Optional[str] = None) -> list[dict]:
    """One row of placement + metering facts per shard node.

    Works on anything with a ``nodes`` list whose members carry a
    ``metering`` book (a plain :class:`~repro.kvstore.ShardedStore`
    node, or a :class:`~repro.kvstore.ReplicaGroup`, whose book merges
    leader and followers). ``table`` adds that table's per-shard item
    count; without it the items column is omitted (``None``).
    """
    rows = []
    for shard, node in enumerate(getattr(store, "nodes", [store])):
        meter = node.metering
        rows.append({
            "shard": shard,
            "items": node.item_count(table) if table else None,
            "requests": sum(rec.count for rec in meter.ops.values()),
            "read_units": sum(rec.read_units
                              for rec in meter.ops.values()),
            "write_units": sum(rec.write_units
                               for rec in meter.ops.values()),
            "eventual": sum(rec.eventual_count
                            for rec in meter.ops.values()),
            "dollars": meter.dollar_cost(),
        })
    return rows


def per_shard_table(title: str, rows: Iterable[dict]) -> str:
    """Render :func:`per_shard_rows` output as a metering dashboard."""
    rows = list(rows)
    with_items = any(row.get("items") is not None for row in rows)
    columns = ["shard"] + (["items"] if with_items else []) + [
        "requests", "read units", "write units", "eventual", "$"]
    table_rows = []
    for row in rows:
        cells = [row["shard"]]
        if with_items:
            cells.append(row["items"])
        cells.extend([
            row["requests"],
            round(row["read_units"], 1),
            round(row["write_units"], 1),
            row["eventual"],
            f"{row['dollars']:.2e}",
        ])
        table_rows.append(cells)
    return format_table(title, columns, table_rows)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
