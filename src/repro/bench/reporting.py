"""Paper-style table and series printing for bench output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: dict) -> str:
    """``{label: [(x, y), ...]}`` -> aligned multi-series listing."""
    lines = [title, "-" * len(title)]
    for label in sorted(series):
        points = ", ".join(f"({x:g}, {y:.1f})" for x, y in series[label])
        lines.append(f"{label:24s} {points}")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
