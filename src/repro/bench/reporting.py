"""Paper-style table and series printing for bench output."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from typing import Any, Iterable, Optional, Sequence

#: Repo root (three levels above ``src/repro/bench``): where the
#: ``BENCH_<name>.json`` trajectory files accumulate.
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def git_rev() -> str:
    """Short git revision of the repo, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats (JSON has no NaN/inf)."""
    if isinstance(value, float):
        return value if value == value and value not in (
            float("inf"), float("-inf")) else None
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def write_bench_json(name: str, payload: dict,
                     directory: Optional[pathlib.Path] = None
                     ) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` at the repo root (machine-readable
    benchmark trajectory; see ROADMAP).

    ``payload`` is augmented with the git revision; keys are sorted and
    non-finite floats nulled so files diff cleanly. ``BENCH_JSON_DIR``
    overrides the output directory (CI artifact staging).
    """
    target = directory or pathlib.Path(
        os.environ.get("BENCH_JSON_DIR", REPO_ROOT))
    target.mkdir(parents=True, exist_ok=True)
    body = dict(payload)
    body.setdefault("bench", name)
    body.setdefault("git_rev", git_rev())
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(_json_safe(body), indent=2,
                               sort_keys=True) + "\n")
    return path


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: dict) -> str:
    """``{label: [(x, y), ...]}`` -> aligned multi-series listing."""
    lines = [title, "-" * len(title)]
    for label in sorted(series):
        points = ", ".join(f"({x:g}, {y:.1f})" for x, y in series[label])
        lines.append(f"{label:24s} {points}")
    return "\n".join(lines)


def per_shard_rows(store, table: Optional[str] = None) -> list[dict]:
    """One row of placement + metering facts per shard node.

    Works on anything with a ``nodes`` list whose members carry a
    ``metering`` book (a plain :class:`~repro.kvstore.ShardedStore`
    node, or a :class:`~repro.kvstore.ReplicaGroup`, whose book merges
    leader and followers). ``table`` adds that table's per-shard item
    count; without it the items column is omitted (``None``).
    """
    rows = []
    for shard, node in enumerate(getattr(store, "nodes", [store])):
        meter = node.metering
        rows.append({
            "shard": shard,
            "items": node.item_count(table) if table else None,
            "requests": sum(rec.count for rec in meter.ops.values()),
            "read_units": sum(rec.read_units
                              for rec in meter.ops.values()),
            "write_units": sum(rec.write_units
                               for rec in meter.ops.values()),
            "eventual": sum(rec.eventual_count
                            for rec in meter.ops.values()),
            "dollars": meter.dollar_cost(),
        })
    total_requests = sum(row["requests"] for row in rows)
    for row in rows:
        row["share"] = (row["requests"] / total_requests
                        if total_requests else 0.0)
    return rows


def load_imbalance(rows: Iterable[dict]) -> dict:
    """Skew summary over :func:`per_shard_rows` output.

    ``max_mean`` is the hottest shard's request count over the mean
    (1.0 = perfectly balanced; the hot-shard detector's trigger
    statistic), ``gini`` the Gini coefficient of the per-shard request
    distribution (0 = equal, -> 1 = one shard serves everything).
    """
    counts = sorted(row["requests"] for row in rows)
    n = len(counts)
    total = sum(counts)
    if n == 0 or total == 0:
        return {"max_mean": 0.0, "gini": 0.0}
    mean = total / n
    # Gini via the sorted-rank identity: G = (2*sum(i*x_i)/ (n*sum x))
    # - (n+1)/n, with i = 1-based rank in ascending order.
    weighted = sum(rank * count
                   for rank, count in enumerate(counts, start=1))
    gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    return {"max_mean": max(counts) / mean, "gini": max(0.0, gini)}


def per_shard_table(title: str, rows: Iterable[dict]) -> str:
    """Render :func:`per_shard_rows` output as a metering dashboard.

    The ``share`` column is each shard's fraction of all requests, and
    the footer line summarizes the skew (:func:`load_imbalance`):
    max/mean request share and the Gini coefficient.
    """
    rows = list(rows)
    with_items = any(row.get("items") is not None for row in rows)
    columns = ["shard"] + (["items"] if with_items else []) + [
        "requests", "share", "read units", "write units", "eventual",
        "$"]
    table_rows = []
    for row in rows:
        cells = [row["shard"]]
        if with_items:
            cells.append(row["items"])
        cells.extend([
            row["requests"],
            f"{row.get('share', 0.0):.2f}",
            round(row["read_units"], 1),
            round(row["write_units"], 1),
            row["eventual"],
            f"{row['dollars']:.2e}",
        ])
        table_rows.append(cells)
    skew = load_imbalance(rows)
    return (format_table(title, columns, table_rows)
            + f"\nimbalance: max/mean={skew['max_mean']:.2f}  "
              f"gini={skew['gini']:.2f}")


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
