"""Beldi: fault-tolerant, transactional stateful serverless functions.

The paper's contribution, reproduced: exactly-once SSF execution through
logged operations on linked DAALs, exactly-once cross-SSF invocation with
callbacks, intent and garbage collection, locks-with-intent, and opaque
transactions over workflows with a coordinator-free commit protocol.

Typical use::

    from repro.core import BeldiRuntime

    runtime = BeldiRuntime(seed=7)

    def reserve(ctx, payload):
        with ctx.transaction() as tx:
            seats = ctx.read("seats", payload["flight"])
            if seats["free"] == 0:
                ctx.abort_tx()
            seats["free"] -= 1
            ctx.write("seats", payload["flight"], seats)
        return {"ok": tx.committed}

    runtime.register_ssf("reserve", reserve, tables=["seats"])
    runtime.start_collectors()
    result = runtime.run_workflow("reserve", {"flight": "UA-42"})
"""

from repro.core.baseline import (
    BaselineContext,
    BaselineEnv,
    BaselineRuntime,
)
from repro.core.config import BeldiConfig
from repro.core.context import BeldiContext
from repro.core.env import BeldiEnv
from repro.core.errors import (
    BeldiError,
    InvokeFailed,
    MisusedApi,
    NotSupported,
    TableNotDeclared,
    TxnAborted,
)
from repro.core.runtime import BeldiRuntime, SSFDefinition
from repro.core.tailcache import TailCache, TailCacheStats, TailEntry
from repro.core.txn import TransactionHandle, TxnContext

__all__ = [
    "BaselineContext",
    "BaselineEnv",
    "BaselineRuntime",
    "BeldiConfig",
    "BeldiContext",
    "BeldiEnv",
    "BeldiError",
    "BeldiRuntime",
    "InvokeFailed",
    "MisusedApi",
    "NotSupported",
    "SSFDefinition",
    "TableNotDeclared",
    "TailCache",
    "TailCacheStats",
    "TailEntry",
    "TransactionHandle",
    "TxnAborted",
    "TxnContext",
]
