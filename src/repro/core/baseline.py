"""The no-guarantees baseline (§7.2).

The paper's baseline runs the same applications directly on the platform
and store, without Beldi's library: no intents, no logs, no callbacks, no
locks, no transactions. A crash mid-workflow leaves state corrupted
(double increments, half-applied reservations) and concurrent requests
interleave freely — which is exactly what the evaluation contrasts Beldi
against. The API mirrors :class:`BeldiContext` so application code runs
unchanged in either mode.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.kvstore import ConditionFailed, KVStore, KernelTimeSource, Set
from repro.kvstore.expressions import Condition
from repro.platform import PlatformConfig, ServerlessPlatform
from repro.platform.context import InvocationContext
from repro.sim.kernel import SimKernel
from repro.sim.latency import LatencyModel
from repro.sim.randsrc import RandomSource


class BaselineEnv:
    """Plain one-row-per-item tables, namespaced like a Beldi env."""

    def __init__(self, store: KVStore, name: str,
                 tables: Iterable[str] = ()) -> None:
        self.store = store
        self.name = name
        self._tables: dict[str, str] = {}
        for short in tables:
            self.declare_table(short)

    def declare_table(self, short: str) -> str:
        full = f"{self.name}.{short}"
        self.store.ensure_table(full, hash_key="Key")
        self._tables[short] = full
        return full

    def data_table(self, short: str) -> str:
        return self._tables[short]

    def seed(self, short: str, key: Any, value: Any) -> None:
        self.store.put(self.data_table(short), {"Key": key, "Value": value})

    def peek(self, short: str, key: Any) -> Any:
        row = self.store.get(self.data_table(short), key)
        return row.get("Value") if row else None


class _NoopTransaction:
    """Baseline 'transactions' provide no isolation or atomicity."""

    outcome = "committed"
    committed = True
    aborted = False

    def __enter__(self) -> "_NoopTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class BaselineContext:
    """Same surface as BeldiContext, none of the guarantees."""

    def __init__(self, runtime: "BaselineRuntime", function_name: str,
                 env: BaselineEnv,
                 platform_ctx: InvocationContext) -> None:
        self.runtime = runtime
        self.function_name = function_name
        self.env = env
        self.platform_ctx = platform_ctx
        self.instance_id = platform_ctx.request_id

    def read(self, table: str, key: Any) -> Any:
        row = self.env.store.get(self.env.data_table(table), key)
        return row.get("Value") if row else None

    def read_eventual(self, table: str, key: Any) -> Any:
        # The baseline has no replication and no log to replay from;
        # a staleness-tolerant read is just a read.
        return self.read(table, key)

    def write(self, table: str, key: Any, value: Any) -> None:
        self.env.store.update(self.env.data_table(table), (key,),
                              [Set("Value", value)])

    def cond_write(self, table: str, key: Any, value: Any,
                   condition: Condition) -> bool:
        try:
            self.env.store.update(self.env.data_table(table), (key,),
                                  [Set("Value", value)],
                                  condition=condition)
            return True
        except ConditionFailed:
            return False

    def sync_invoke(self, callee: str, payload: Any = None) -> Any:
        return self.platform_ctx.sync_invoke(
            callee, {"kind": "call", "input": payload})

    def async_invoke(self, callee: str, payload: Any = None) -> None:
        self.platform_ctx.async_invoke(
            callee, {"kind": "call", "input": payload})

    def parallel_invoke(self, calls: Any) -> list:
        kernel = self.runtime.kernel
        procs = [
            kernel.spawn(self.platform_ctx.sync_invoke, callee,
                         {"kind": "call", "input": payload},
                         name=f"parallel:{callee}")
            for callee, payload in calls
        ]
        return [kernel.join(proc) for proc in procs]

    # Locks and transactions are advisory no-ops in the baseline.
    def lock(self, table: str, key: Any) -> None:
        pass

    def unlock(self, table: str, key: Any) -> None:
        pass

    def begin_tx(self) -> None:
        pass

    def end_tx(self, commit: bool = True) -> str:
        return "commit"

    def transaction(self) -> _NoopTransaction:
        return _NoopTransaction()

    def abort_tx(self) -> None:
        pass

    def in_transaction(self) -> bool:
        return False

    def record(self, compute: Callable[[], Any]) -> Any:
        return compute()

    def fresh_id(self) -> str:
        return self.runtime.fresh_uuid()

    def current_time(self) -> float:
        return self.platform_ctx.now

    def sleep(self, duration: float) -> None:
        self.platform_ctx.sleep(duration)

    def crash_point(self, tag: str) -> None:
        self.platform_ctx.crash_point(tag)


@dataclass
class BaselineSSF:
    name: str
    handler: Callable[[BaselineContext, Any], Any]
    env: BaselineEnv


class BaselineRuntime:
    """Registration/run surface mirroring :class:`BeldiRuntime`."""

    def __init__(self, kernel: Optional[SimKernel] = None, seed: int = 0,
                 latency_scale: float = 0.0,
                 platform_config: Optional[PlatformConfig] = None,
                 store: Optional[KVStore] = None,
                 platform: Optional[ServerlessPlatform] = None) -> None:
        self.kernel = kernel or SimKernel(seed=seed)
        self.rand = RandomSource(seed, "baseline")
        latency = LatencyModel(self.rand.child("latency"),
                               scale=latency_scale)
        self.store = store or KVStore(
            time_source=KernelTimeSource(self.kernel),
            latency=latency, rand=self.rand.child("store"))
        self.platform = platform or ServerlessPlatform(
            self.kernel, rand=self.rand.child("platform"),
            latency=latency, config=platform_config)
        self._ids = self.rand.child("ids")
        self.envs: dict[str, BaselineEnv] = {}
        self.ssfs: dict[str, BaselineSSF] = {}

    def fresh_uuid(self) -> str:
        return self._ids.uuid()

    def create_env(self, name: str,
                   tables: Iterable[str] = ()) -> BaselineEnv:
        env = BaselineEnv(self.store, name, tables)
        self.envs[name] = env
        return env

    def register_ssf(self, name: str, handler, env=None,
                     tables: Iterable[str] = ()) -> BaselineSSF:
        if env is None:
            env = self.create_env(name, tables)
        ssf = BaselineSSF(name, handler, env)
        self.ssfs[name] = ssf

        def platform_handler(platform_ctx: InvocationContext,
                             payload: Any) -> Any:
            payload = payload or {}
            ctx = BaselineContext(self, name, env, platform_ctx)
            return handler(ctx, payload.get("input"))

        self.platform.register(name, platform_handler)
        return ssf

    def start_collectors(self, *args: Any, **kwargs: Any) -> None:
        """The baseline has no collectors; kept for interface parity."""

    def stop_collectors(self) -> None:
        pass

    def client_call(self, ssf_name: str, payload: Any = None) -> Any:
        return self.platform.client_request(
            ssf_name, {"kind": "call", "input": payload})

    def run_workflow(self, ssf_name: str, payload: Any = None,
                     until: Optional[float] = None) -> Any:
        box: dict[str, Any] = {}

        def client() -> None:
            box["result"] = self.client_call(ssf_name, payload)

        proc = self.kernel.spawn(client, name="client")
        self.kernel.run(until=until)
        if proc.error is not None:
            raise proc.error
        return box.get("result")
