"""The intent collector (IC): at-least-once re-execution (§3.3).

A timer-triggered SSF that scans its env's intent table for instances
lacking the done flag and restarts them with their original instance id
and arguments. Restarting a *live* instance is safe — every step is
at-most-once via the logs — but wasteful, so the IC implements the
paper's two optimizations:

1. it only restarts instances whose last launch is older than
   ``ic_restart_delay`` (claimed via a conditional update so concurrent
   IC instances spawn one duplicate, not many), and
2. it finds pending intents through a sparse secondary index rather than
   scanning every record.
"""

from __future__ import annotations

from typing import Any

from repro.core import intents
from repro.core.env import BeldiEnv
from repro.platform.context import InvocationContext
from repro.platform.errors import TooManyRequests


def make_intent_collector(runtime, env: BeldiEnv):
    """Build the IC handler for one env; registered as a platform fn."""

    def intent_collector(platform_ctx: InvocationContext,
                         payload: Any) -> dict:
        now = runtime.kernel.now
        delay = runtime.config.ic_restart_delay
        restarted: list[str] = []
        skipped = 0
        for intent in intents.pending_intents(env):
            instance_id = intent["InstanceId"]
            last = intent.get("LastLaunched", 0.0)
            if now - last < delay:
                skipped += 1
                continue
            if not intents.record_launch(env, instance_id, now, last):
                skipped += 1  # another IC claimed this restart
                continue
            relaunch = {
                "kind": "call",
                "instance_id": instance_id,
                "input": intent.get("Args"),
                "async": intent.get("Async", False),
                "caller": intent.get("Caller"),
                "txn": intent.get("Txn"),
            }
            try:
                platform_ctx.async_invoke(intent["Function"], relaunch)
                restarted.append(instance_id)
            except TooManyRequests:
                break  # the account is saturated; try again next tick
        return {"restarted": restarted, "skipped": skipped}

    return intent_collector
