"""Beldi configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BeldiConfig:
    """Tuning parameters for the Beldi runtime.

    row_log_capacity:
        ``N`` — max write-log entries per linked-DAAL row. In DynamoDB this
        is derived from the 400 KB row cap and the value size; it is the
        knob that turns one row into a linked list (§4.1).
    gc_t:
        ``T`` — assumed maximum lifetime of an SSF instance, in virtual ms.
        The GC only recycles logs/rows that have been done/dangling for at
        least ``T`` (§5). Derived from the platform execution timeout.
    ic_restart_delay:
        The intent collector only restarts an unfinished instance if at
        least this long has passed since it was last launched (§3.3's
        first IC optimization).
    invoke_retry_backoff / invoke_retry_limit:
        Caller-side retry schedule when a synchronous invocation fails and
        the result has not yet appeared in the invoke log.
    lock_retry_backoff / lock_retry_limit:
        Spin schedule for lock acquisition (wait-die retries in txns;
        plain waiting otherwise).
    gc_page_limit:
        Max intent-table records processed per GC run (Appendix A's
        bounded-collection refinement); ``None`` disables paging.
    tail_cache:
        §4.4 fast path: remember each item's tail row (and each logged
        operation's position) so reads/writes/locks go straight to the
        tail with one conditional get/update, falling back to the full
        skeleton traversal only when the cached row proves stale. Also
        enables the runtime's intent-status cache (re-delivered instances
        skip the intent-table read once locally resolved). Off reproduces
        the seed's query-per-operation behavior exactly.
    batch_reads:
        Coalesce N-row read fans (transaction commit/abort shadow-tail
        fetches, GC liveness point-checks) into single
        :meth:`~repro.kvstore.KVStore.batch_get` round trips. Off
        reproduces the seed's one-get-per-row behavior exactly.
    read_consistency:
        Default consistency for reads that *declare* they tolerate
        bounded staleness — :meth:`BeldiContext.read_eventual` and the
        GC's first-pass intent scan. ``"strong"`` (default) keeps every
        read on the leader at full price, reproducing seed behavior
        exactly; ``"eventual"`` routes those reads to a follower (when
        the store is replicated) at DynamoDB's half-price eventual rate.
        Correctness-critical reads — the DAAL protocol, transaction
        commit, lock probes, liveness point-checks — ignore this knob
        and stay strong, always.
    async_io:
        Overlap independent store round trips instead of serializing
        their virtual latency: the transaction commit's shadow flushes
        and lock releases fan out concurrently (pay ``max`` instead of
        the sum), sharded ``batch_get``/``batch_write`` fan-outs and the
        cross-shard transaction's per-shard rounds overlap, and replica
        groups ship multi-row commits as one batched boat per follower.
        Purely a *when*, never a *what*: table contents, operation
        counts, and request units are untouched, so every exactly-once
        argument survives verbatim (pinned by the crash sweep's
        ``fastpath-on-async`` variant). Off reproduces the sequential
        latency model bit-for-bit.
    batch_log_writes:
        Coalesce idempotent log writes into
        :meth:`~repro.kvstore.KVStore.batch_write` round trips — the
        write-side twin of ``batch_reads``: the parallel-invoke prepare
        phase claims its N invoke-log entries in one batch (callee ids
        derive deterministically from ``(instance id, step)`` so
        unconditional batched claims commute; see
        ``repro/core/invoke.py``), and the GC's log-entry, row, and
        lock-set deletions batch DynamoDB-style (25-item requests,
        ``UnprocessedItems`` retries). Conditional log writes — the read
        log's serialization point, single invoke claims — are **never**
        batched: ``BatchWriteItem`` has no conditions, and those
        conditions are what replay determinism rests on. Off reproduces
        the one-write-per-row behavior exactly.
    elastic:
        Hot-shard elasticity (``docs/sharding.md``): on a sharded store
        the runtime tracks per-key heat and per-shard routed-op counts,
        and when one shard's share of the observation window exceeds
        ``elastic_load_ratio`` times the mean, live-migrates the hottest
        DAAL chains (with their shadow twins) to underloaded shards via
        :class:`~repro.kvstore.rebalance.ChainMigrator`, installing
        forwarding entries in the hash ring. Below the trigger the
        detector is pure counter arithmetic — no randomness, latency,
        or store traffic — so a balanced (or single-shard, or
        sub-``elastic_min_window``) workload reproduces the static
        placement bit-for-bit (pinned by
        ``tests/core/test_elasticity_flags.py``).
    elastic_check_every / elastic_min_window / elastic_load_ratio /
    elastic_max_moves / elastic_tolerance:
        Detector tuning: evaluate every N logged operations; only act
        on windows of at least ``elastic_min_window`` routed store ops
        (small workloads never trigger); trigger when the hottest
        shard exceeds ``elastic_load_ratio`` x the mean shard load;
        move at most ``elastic_max_moves`` chains per rebalance;
        ``elastic_tolerance`` is the residual per-shard overload
        :meth:`~repro.kvstore.HashRing.plan_rebalance` accepts rather
        than keep moving chains.
    observability:
        Virtual-time tracing + unified metrics (``repro.obs``): nested
        spans (request → step → op → store round trip, plus txn/2PC,
        failover, migration, GC, and crash/interleave events) stamped
        with kernel time, and a :class:`~repro.obs.MetricsRegistry`
        unifying metering/capacity/cache/replication/elasticity
        signals. Pure recording: no virtual time, no store traffic, no
        randomness — the simulation's behavior is identical either
        way, and with the flag **off** (the default) no observability
        object is even constructed, reproducing the pre-observability
        code paths bit-for-bit. Same seed + schedule ⇒ byte-identical
        exported trace (``docs/observability.md``).
    resilience:
        Client-side fault recovery (``repro.resilience``,
        ``docs/resilience.md``): every env's store facade gains bounded
        retries with capped exponential backoff + deterministic jitter
        for the injected-environment errors (``ThrottledError``,
        ``UnavailableError`` — both raised before any table effect, so
        retries are idempotent-safe), a per-endpoint circuit breaker
        (trip → fast-fail → half-open probe), per-request deadlines,
        and degraded reads. The retry path only activates when a fault
        actually fires — jitter draws come from a dedicated
        ``child("resilience")`` stream — so a fault-free run is
        bit-for-bit identical with the flag off (golden-pinned). Off
        reproduces the raw-propagation behavior exactly: a single
        escaped throttle still kills the request.
    retry_max_attempts / retry_base_backoff / retry_max_backoff /
    retry_jitter:
        The retry schedule: at most ``retry_max_attempts`` tries per
        store call; attempt ``n`` backs off
        ``retry_base_backoff * 2**(n-1)`` virtual ms capped at
        ``retry_max_backoff``, scaled by ``1 - retry_jitter * U[0,1)``.
    breaker_threshold / breaker_cooldown:
        ``breaker_threshold`` consecutive ``UnavailableError``\\ s on one
        endpoint open its breaker; while open, calls fast-fail without
        paying a store round trip until a half-open probe succeeds
        after ``breaker_cooldown`` virtual ms.
    degraded_reads:
        When a strong ``get`` of a *data* table finds its endpoint dark
        (leader outage), serve the read at eventual consistency from a
        live follower instead of failing. Protocol tables (intent,
        read/invoke logs, lock sets, shadows) never degrade — the
        DAAL's correctness reads stay strong, always.
    request_deadline:
        Per-request budget in virtual ms (``None`` = unlimited).
        Measured from each invocation's start — an IC re-run gets a
        fresh budget — and enforced at retry sleeps: a retry that would
        overshoot raises ``DeadlineExceeded`` to the client while the
        pending intent stays for the collector, so the abort is clean
        and exactly-once survives.
    """

    row_log_capacity: int = 8
    gc_t: float = 60_000.0
    ic_restart_delay: float = 30_000.0
    invoke_retry_backoff: float = 20.0
    invoke_retry_limit: int = 50
    lock_retry_backoff: float = 10.0
    lock_retry_limit: int = 500
    gc_page_limit: int | None = None
    tail_cache: bool = True
    batch_reads: bool = True
    read_consistency: str = "strong"
    async_io: bool = True
    batch_log_writes: bool = True
    elastic: bool = True
    elastic_check_every: int = 64
    elastic_min_window: int = 2500
    elastic_load_ratio: float = 1.5
    elastic_max_moves: int = 8
    elastic_tolerance: float = 0.2
    observability: bool = False
    resilience: bool = True
    retry_max_attempts: int = 6
    retry_base_backoff: float = 10.0
    retry_max_backoff: float = 2_000.0
    retry_jitter: float = 0.5
    breaker_threshold: int = 5
    breaker_cooldown: float = 500.0
    degraded_reads: bool = True
    request_deadline: float | None = None
