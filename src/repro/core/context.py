"""BeldiContext: the API surface SSF handlers program against (Fig. 2).

One context exists per running instance. It carries the instance id, the
step counter, the transaction context (if any), and dispatches every
operation either to the plain exactly-once wrappers or — in a
transaction's Execute mode — to the locked, shadow-redirected variants.
The dispatch is the mechanism behind §6.2's "if an SSF is in a
transactional context, Beldi modifies the semantics of its API".
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Optional

from repro.core import daal, invoke, ops, txn as txn_mod
from repro.core.config import BeldiConfig
from repro.core.env import BeldiEnv
from repro.core.errors import MisusedApi
from repro.core.txn import (
    EXECUTE,
    TransactionHandle,
    TxnContext,
    finish_transaction,
)
from repro.kvstore import KVStore
from repro.kvstore.expressions import Condition
from repro.platform.context import InvocationContext

#: Shared no-op scope returned by :meth:`BeldiContext.trace` when the
#: observability flag is off — stateless, so one instance serves all.
_NULL_SPAN = contextlib.nullcontext()


class BeldiContext:
    """Identity, step bookkeeping, and the Beldi API for one instance."""

    def __init__(self, runtime, function_name: str, env: BeldiEnv,
                 platform_ctx: InvocationContext, instance_id: str,
                 intent: dict, txn: Optional[TxnContext] = None) -> None:
        self.runtime = runtime
        self.function_name = function_name
        self.env = env
        self.platform_ctx = platform_ctx
        self.instance_id = instance_id
        self.intent = intent
        self.txn = txn
        self._step = 0

    # -- plumbing the op wrappers rely on ------------------------------------
    @property
    def store(self) -> KVStore:
        return self.env.store

    @property
    def config(self) -> BeldiConfig:
        return self.env.config

    @property
    def start_time(self) -> float:
        """Intent-creation time: stable across re-executions."""
        return self.intent.get("StartTime", 0.0)

    @property
    def tail_cache(self):
        """The runtime's §4.4 chain-position cache, or ``None`` when the
        ``tail_cache`` flag is off (seed behavior)."""
        if not getattr(self.config, "tail_cache", False):
            return None
        return getattr(self.runtime, "tail_cache", None)

    @property
    def obs(self):
        """The runtime's observability hub, or ``None`` when the
        ``observability`` flag is off (the default)."""
        return getattr(self.runtime, "obs", None)

    @property
    def deadline(self) -> Optional[float]:
        """This invocation's absolute virtual-time deadline, or ``None``
        when no ``request_deadline`` budget is configured. Fresh per
        invocation (IC re-runs get a full budget)."""
        resilience = getattr(self.runtime, "resilience", None)
        if resilience is None:
            return None
        return resilience.current_deadline()

    def trace(self, name: str, cat: str = "op",
              span_id: Optional[str] = None, **args: Any):
        """Open a tracer span, or a no-op scope when tracing is off."""
        obs = self.obs
        if obs is None:
            return _NULL_SPAN
        return obs.tracer.span(name, cat=cat, span_id=span_id, **args)

    def next_step(self) -> int:
        step = self._step
        self._step += 1
        # Hot-shard elasticity heartbeat: every logged operation gives
        # the detector one (pure-python) tick; when skew crosses its
        # threshold the triggering invocation runs the chain migration
        # inline — with this invocation's crash points, so the sweep
        # covers crashes inside the move.
        elasticity = getattr(self.runtime, "elasticity", None)
        if elasticity is not None:
            elasticity.tick(self.platform_ctx)
        return step

    def fresh_row_id(self) -> str:
        return f"row-{self.runtime.fresh_uuid()}"

    def fresh_callee_id(self) -> str:
        return self.runtime.fresh_uuid()

    def crash_point(self, tag: str) -> None:
        self.platform_ctx.crash_point(tag)

    def interleave(self, tag: str) -> None:
        """Named scheduling point (no crash semantics) for exploration."""
        self.platform_ctx.interleave(tag)

    def sleep(self, duration: float) -> None:
        self.platform_ctx.sleep(duration)

    def in_txn_execute(self) -> bool:
        return self.txn is not None and self.txn.mode == EXECUTE

    def in_transaction(self) -> bool:
        """Whether this instance runs inside a transactional context."""
        return self.txn is not None

    # -- key-value API (Fig. 2) ------------------------------------------------
    def read(self, table: str, key: Any) -> Any:
        """Exactly-once read; ``None`` if the item does not exist."""
        if self.in_txn_execute():
            value = txn_mod.tx_read(self, table, key)
        elif self.env.storage_mode == "crosstable":
            from repro.core import crosstable
            value = crosstable.flat_read_op(
                self, self.env.data_table(table), key)
        else:
            value = ops.read_op(self, self.env.data_table(table), key)
        return None if value == daal.MISSING else value

    def read_eventual(self, table: str, key: Any) -> Any:
        """Read-only lookup that tolerates bounded staleness.

        Use on paths whose result is *served*, never acted on with
        writes — timeline reads, movie pages, caches. When the runtime's
        ``read_consistency`` is ``"eventual"`` (and the store is
        replicated) the lookup routes to a follower replica at half a
        read unit, possibly stale within the replication-lag bound; at
        the default ``"strong"`` it is priced and routed exactly like
        :meth:`read`. Either way the observed value is logged in the
        read log, so replays after a crash return the same value —
        determinism does not depend on the consistency mode. Inside a
        transaction's Execute mode this falls back to the strong
        transactional read: a locked read-set must not be stale.
        """
        if self.in_txn_execute():
            return self.read(table, key)
        from repro.kvstore.metering import normalize_consistency
        consistency = normalize_consistency(
            getattr(self.config, "read_consistency", "strong"))
        if self.env.storage_mode == "crosstable":
            from repro.core import crosstable
            value = crosstable.flat_read_op(
                self, self.env.data_table(table), key,
                consistency=consistency)
        else:
            value = ops.read_only_op(self, self.env.data_table(table),
                                     key, consistency=consistency)
        return None if value == daal.MISSING else value

    def write(self, table: str, key: Any, value: Any) -> None:
        """Exactly-once write."""
        if self.in_txn_execute():
            txn_mod.tx_write(self, table, key, value)
        elif self.env.storage_mode == "crosstable":
            from repro.core import crosstable
            crosstable.flat_write_op(self, self.env.data_table(table),
                                     key, value)
        else:
            ops.write_op(self, self.env.data_table(table), key, value)

    def cond_write(self, table: str, key: Any, value: Any,
                   condition: Condition) -> bool:
        """Exactly-once conditional write; returns the condition outcome.

        Outside transactions the condition is evaluated server-side
        against the item's row (use ``path("Value", ...)`` to address into
        the stored value). Inside a transaction it is evaluated against
        the locked, shadow-aware view.
        """
        if self.in_txn_execute():
            return txn_mod.tx_cond_write(self, table, key, value, condition)
        if self.env.storage_mode == "crosstable":
            from repro.core import crosstable
            return crosstable.flat_cond_write_op(
                self, self.env.data_table(table), key, value, condition)
        return ops.cond_write_op(self, self.env.data_table(table), key,
                                 condition, value=value)

    # -- invocation API -----------------------------------------------------------
    def sync_invoke(self, callee: str, payload: Any = None) -> Any:
        """Call another SSF and wait for its result (exactly-once)."""
        return invoke.sync_invoke_op(self, callee, payload)

    def async_invoke(self, callee: str, payload: Any = None) -> None:
        """Start another SSF without waiting (exactly-once)."""
        invoke.async_invoke_op(self, callee, payload)

    def parallel_invoke(self, calls: list) -> list:
        """Invoke several SSFs concurrently and join their results.

        ``calls`` is a list of ``(callee, payload)`` pairs; results come
        back in call order. Safe inside transactions (§6.2 permits
        threads issuing syncInvoke that are then joined); step numbers
        are pre-allocated sequentially so replays are deterministic.
        """
        return invoke.parallel_invoke_op(self, calls)

    # -- locks (§6.1) -----------------------------------------------------------------
    def lock(self, table: str, key: Any) -> None:
        """Acquire a lock-with-intent on an item (blocks via retries).

        Owned by the *intent*, not the worker: if this instance crashes
        and re-executes, the replayed ``lock`` observes it already holds
        the lock and proceeds.
        """
        full = self.env.data_table(table)
        owner = {"Id": self.instance_id, "Ts": self.start_time}
        attempts = 0
        from repro.kvstore import Set
        while True:
            acquired = ops.cond_write_op(
                self, full, key,
                condition=daal.lock_free_condition(self.instance_id),
                set_value=False,
                extra_updates=[Set("LockOwner", owner)])
            if acquired:
                return
            attempts += 1
            if attempts > self.config.lock_retry_limit:
                raise MisusedApi(
                    f"lock({table!r}, {key!r}) starved; possible deadlock "
                    "in application code")
            self.sleep(self.config.lock_retry_backoff)

    def unlock(self, table: str, key: Any) -> None:
        """Release a lock-with-intent (exactly-once via the write log)."""
        from repro.kvstore import Remove
        from repro.kvstore.expressions import path as kv_path
        from repro.kvstore import Eq
        full = self.env.data_table(table)
        ops.cond_write_op(
            self, full, key,
            condition=Eq(kv_path("LockOwner", "Id"), self.instance_id),
            set_value=False,
            extra_updates=[Remove("LockOwner")])

    # -- transactions (§6.2) ------------------------------------------------------------
    def begin_tx(self) -> TxnContext:
        """Open a transaction (or join the inherited one).

        The transaction id derives from the instance id and the current
        step, and the wait-die timestamp from the intent-creation time —
        both stable under re-execution.
        """
        if self.txn is not None:
            return self.txn  # nested begin_tx is inherited (§6.2)
        seq = self.next_step()
        self.txn = TxnContext(
            txn_id=f"{self.instance_id}{txn_mod.TXN_ID_SEPARATOR}{seq}",
            start_time=self.start_time,
            owner=True)
        return self.txn

    def end_tx(self, commit: bool = True) -> str:
        """Close the transaction; returns ``"commit"``/``"abort"``/
        ``"inherited"``."""
        return finish_transaction(self, commit=commit)

    def abort_tx(self) -> None:
        """Abort the enclosing transaction from application code."""
        from repro.core.errors import TxnAborted
        if self.txn is None:
            raise MisusedApi("abort_tx outside a transaction")
        self.txn.aborted = True
        raise TxnAborted("aborted by application")

    def transaction(self) -> TransactionHandle:
        """``with ctx.transaction() as tx:`` — commit on clean exit,
        abort (and swallow the :class:`TxnAborted`) otherwise."""
        return TransactionHandle(self)

    # -- logged non-determinism (§3.1's determinism requirement) ----------------------------
    def record(self, compute: Callable[[], Any]) -> Any:
        """Run ``compute()`` once; replays return the logged result."""
        return ops.record_op(self, compute)

    def fresh_id(self) -> str:
        """A UUID that is stable across re-executions of this step."""
        return self.record(self.runtime.fresh_uuid)

    def current_time(self) -> float:
        """Wall-clock time, logged for deterministic replay."""
        return self.record(lambda: self.platform_ctx.now)
