"""Cross-table-transaction logging variant (Figs. 13 and 16 ablation).

The paper compares the linked DAAL against "an implementation of Beldi
that uses cross-table transactions instead": data lives in a plain
one-row-per-item table, and each write is made atomic with its log entry
via the store's ``TransactWriteItems``-style primitive. Reads skip the
scan (single-row fetch) but still log; writes pay the transactional
round trip, which the paper measures at 2-2.5x the DAAL's cost.

Invocations, intents, IC and GC are shared with the DAAL path — only the
storage ops differ. Not all of the paper's target databases support
cross-table transactions at all (Bigtable does not), which is one of the
linked DAAL's reasons to exist.
"""

from __future__ import annotations

from typing import Any

from repro.core import daal
from repro.core.errors import BeldiError
from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Set,
    TransactPut,
    TransactUpdate,
    TransactionCanceled,
)
from repro.kvstore.expressions import Condition


def flat_read_op(ctx, table: str, key: Any,
                 consistency=None) -> Any:
    """Single-row read + read-log entry (no chain scan).

    ``consistency`` only affects the data-row read (read-only paths may
    pass ``"eventual"``); the read-log round trips stay strong.
    """
    step = ctx.next_step()
    store = ctx.store
    ctx.crash_point(f"read:{step}:start")
    row = store.get(table, key, consistency=consistency)
    value = row.get("Value", daal.MISSING) if row else daal.MISSING
    ctx.crash_point(f"read:{step}:before-log")
    try:
        store.put(ctx.env.read_log,
                  {"InstanceId": ctx.instance_id, "Step": step,
                   "Value": value},
                  condition=AttrNotExists("InstanceId"))
        return value
    except ConditionFailed:
        record = store.get(ctx.env.read_log, (ctx.instance_id, step))
        if record is None:
            raise BeldiError("read log entry vanished") from None
        return record["Value"]


def _log_entry(ctx, step: int, outcome: bool) -> dict:
    return {"InstanceId": ctx.instance_id, "Step": step,
            "Outcome": outcome}


def flat_write_op(ctx, table: str, key: Any, value: Any) -> None:
    """Value update + write-log insert, atomically across two tables."""
    step = ctx.next_step()
    store = ctx.store
    ctx.crash_point(f"write:{step}:start")
    try:
        store.transact_write([
            TransactUpdate(table, (key,), [Set("Value", value)]),
            TransactPut(ctx.env.write_log, _log_entry(ctx, step, True),
                        condition=AttrNotExists("InstanceId")),
        ])
        ctx.crash_point(f"write:{step}:done")
    except TransactionCanceled:
        pass  # the log entry exists: this step already executed


def flat_cond_write_op(ctx, table: str, key: Any, value: Any,
                       condition: Condition) -> bool:
    """Conditional variant; the user condition gates the data update."""
    step = ctx.next_step()
    store = ctx.store
    ctx.crash_point(f"condwrite:{step}:start")
    existing = store.get(ctx.env.write_log, (ctx.instance_id, step))
    if existing is not None:
        return bool(existing.get("Outcome"))
    try:
        store.transact_write([
            TransactUpdate(table, (key,), [Set("Value", value)],
                           condition=condition),
            TransactPut(ctx.env.write_log, _log_entry(ctx, step, True),
                        condition=AttrNotExists("InstanceId")),
        ])
        ctx.crash_point(f"condwrite:{step}:done")
        return True
    except TransactionCanceled:
        record = store.get(ctx.env.write_log, (ctx.instance_id, step))
        if record is not None:
            return bool(record.get("Outcome"))
        # The user condition failed; record the false outcome (the
        # serialization point was the attempt above).
        try:
            store.put(ctx.env.write_log, _log_entry(ctx, step, False),
                      condition=AttrNotExists("InstanceId"))
            return False
        except ConditionFailed:
            record = store.get(ctx.env.write_log,
                               (ctx.instance_id, step))
            if record is None:
                raise BeldiError("write log entry vanished") from None
            return bool(record.get("Outcome"))
