"""The linked DAAL: Beldi's per-item log-and-data linked list (§4.1).

Every item in a Beldi data table is a chain of rows sharing the item's
``Key`` (the hash key) and distinguished by ``RowId`` (the range key):

====================  =====================================================
Column                Meaning
====================  =====================================================
``Key``               Item key (hash key)
``RowId``             ``"HEAD"`` for the first row; UUIDs after that
``Value``             Item value as of the last write logged in this row
``RecentWrites``      Map: log key -> outcome (write log for this row)
``LogSize``           Number of entries ever logged in this row
``NextRow``           RowId of the successor once this row filled up
``LockOwner``         ``{"Id", "Ts"}`` map — lock-with-intent owner (§6.1)
``DangleTime``        Set by the GC when the row is disconnected (§5)
``TxnId``/``OrigKey`` Only on shadow-table chains (§6.2)
====================  =====================================================

A row is an atomicity scope: one conditional update can check the write
log, the log size, and the chain position, and apply the write plus its
log entry atomically — which is the whole trick. Rows are immutable once
full (``LogSize == N`` and ``NextRow`` set), so the tail always carries the
current value.

Traversal uses a single query with a ``(RowId, NextRow)`` projection to
build a local *skeleton* of the chain, then walks it in memory: any row
reachable from ``HEAD`` up to the first missing ``NextRow`` is a consistent
snapshot under a linearizable store (§4.1). Orphan rows — left over from
appends that lost the CAS race or crashed mid-append — show up in the query
result but are ignored by the walk.

Invariants this layer must uphold (see ``docs/architecture.md``) —
everything above (ops, txn, GC) assumes them, and every optimization
below (tail cache, batched reads, overlapped I/O) must preserve them:

- **The tail carries the truth.** Rows are immutable once full
  (``LogSize == N`` and ``NextRow`` set), so the reachable chain's last
  row always holds the current ``Value`` and the live ``LockOwner``.
- **One conditional write is the only commit point.** Every logged
  mutation lands value + log entry + version bump in a single row-scoped
  conditional update; there is no state in which the effect happened but
  its log entry did not (or vice versa). This is the exactly-once
  anchor — caches and batching may change *how a row is found*, never
  this atomicity scope.
- **Appends are version-validated.** ``append_row``'s CAS only links a
  candidate copied from the predecessor's current version, so a racing
  mutation can never be resurrected into the new tail.
- **Stale hints fail safe.** A cached tail or position is only ever a
  starting point; every use re-validates against the store (the case-B
  condition, the chained-row chase) and falls back to the full skeleton
  probe, so eviction, GC disconnection, and follower staleness cost a
  repair traversal, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.tailcache import TailCache
from repro.kvstore import (
    And,
    AttrExists,
    AttrNotExists,
    ConditionFailed,
    Eq,
    KVStore,
    Remove,
    Set,
    SizeLt,
)
from repro.kvstore.expressions import Condition, Projection, path

HEAD_ROW_ID = "HEAD"

_MAX_TAIL_CHASE = 10_000  # defensive bound when chasing a stale tail

# A Value sentinel for "item does not exist yet"; never exposed to apps.
MISSING = "__beldi_missing__"


@dataclass
class Skeleton:
    """Local view of one item's chain built from a projected query."""

    key: Any
    reachable: list[str]          # row ids from HEAD to tail, in order
    orphans: list[str]            # rows present but not reachable
    log_hits: dict[str, Any]      # log outcomes found for the probed key

    @property
    def exists(self) -> bool:
        return bool(self.reachable)

    @property
    def tail(self) -> Optional[str]:
        return self.reachable[-1] if self.reachable else None


def ensure_head(store: KVStore, table: str, key: Any,
                value: Any = MISSING,
                extra_attrs: Optional[dict] = None) -> None:
    """Create the item's head row if it does not exist yet.

    Safe to race: the conditional put makes exactly one creator win.
    """
    item = {"Key": key, "RowId": HEAD_ROW_ID, "Value": value,
            "RecentWrites": {}, "LogSize": 0, "Version": 0}
    if extra_attrs:
        item.update(extra_attrs)
    try:
        store.put(table, item, condition=AttrNotExists("RowId"))
    except ConditionFailed:
        pass


def load_skeleton(store: KVStore, table: str, key: Any,
                  probe_log_key: Optional[str] = None,
                  cache: Optional[TailCache] = None,
                  consistency: Optional[str] = None) -> Skeleton:
    """One projected query -> local chain skeleton (§4.1 traversal).

    When ``probe_log_key`` is given, the projection additionally fetches
    ``RecentWrites.<log key>`` per row so the caller learns, from the same
    snapshot, whether its operation already executed — and with what
    logged outcome (needed by conditional writes).

    When a :class:`TailCache` is given, the freshly observed tail (and its
    log size, which rides along in the projection) is remembered so
    subsequent operations on this item skip the traversal entirely.
    """
    columns = [path("RowId"), path("NextRow")]
    if cache is not None:
        # The tail's log size rides along for the cache; omitted on the
        # seed path so flags-off byte accounting matches the seed exactly.
        columns.append(path("LogSize"))
    if probe_log_key is not None:
        columns.append(path("RecentWrites", probe_log_key))
    result = store.query(table, key, projection=Projection(columns),
                         consistency=consistency)
    next_of: dict[str, Optional[str]] = {}
    size_of: dict[str, Optional[int]] = {}
    hit_of: dict[str, Any] = {}
    for row in result.items:
        row_id = row["RowId"]
        next_of[row_id] = row.get("NextRow")
        size_of[row_id] = row.get("LogSize")
        if probe_log_key is not None:
            writes = row.get("RecentWrites") or {}
            if probe_log_key in writes:
                hit_of[row_id] = writes[probe_log_key]
    reachable: list[str] = []
    log_hits: dict[str, Any] = {}
    cursor: Optional[str] = HEAD_ROW_ID if HEAD_ROW_ID in next_of else None
    seen = set()
    while cursor is not None and cursor in next_of and cursor not in seen:
        seen.add(cursor)
        reachable.append(cursor)
        if cursor in hit_of:
            log_hits[cursor] = hit_of[cursor]
        cursor = next_of[cursor]
    orphans = [row_id for row_id in next_of if row_id not in seen]
    skeleton = Skeleton(key=key, reachable=reachable, orphans=orphans,
                        log_hits=log_hits)
    if cache is not None and skeleton.exists:
        cache.remember_tail(table, key, skeleton.tail,
                            size_of.get(skeleton.tail))
    return skeleton


def load_skeleton_by_pointer(store: KVStore, table: str,
                             key: Any) -> Skeleton:
    """Ablation: naive pointer-chasing traversal (§4.1's strawman).

    One ``get`` per row instead of one projected query for the whole
    chain; the cost grows with chain length, which is exactly why Beldi
    uses scan+projection. Benchmarked in the traversal ablation.
    """
    reachable: list[str] = []
    cursor: Optional[str] = HEAD_ROW_ID
    seen = set()
    while cursor is not None and cursor not in seen:
        row = store.get(table, (key, cursor),
                        projection=None)
        if row is None:
            break
        seen.add(cursor)
        reachable.append(cursor)
        cursor = row.get("NextRow")
    return Skeleton(key=key, reachable=reachable, orphans=[], log_hits={})


def read_row(store: KVStore, table: str, key: Any,
             row_id: str,
             consistency: Optional[str] = None) -> Optional[dict]:
    return store.get(table, (key, row_id), consistency=consistency)


def fast_tail_row(store: KVStore, table: str, key: Any,
                  cache: Optional[TailCache],
                  consistency: Optional[str] = None) -> Optional[dict]:
    """Resolve the item's current tail row through the cache (§4.4).

    One ``get`` on the cached row; if the row chained (or the GC
    disconnected it — disconnected rows keep their ``NextRow``), chase
    forward pointer by pointer, which re-joins the reachable chain. A
    vanished row evicts the entry. Returns ``None`` when the cache cannot
    resolve the tail — the caller falls back to the skeleton traversal.
    Values are never cached, so a returned row is always a fresh,
    linearizable read of the true tail.
    """
    if cache is None:
        return None
    entry = cache.tail_of(table, key)
    if entry is None:
        return None
    row = read_row(store, table, key, entry.row_id,
                   consistency=consistency)
    chased = 0
    while row is not None and "NextRow" in row and chased < _MAX_TAIL_CHASE:
        row = read_row(store, table, key, row["NextRow"],
                       consistency=consistency)
        chased += 1
    if row is None or "NextRow" in row:
        cache.forget(table, key)
        return None
    if chased or entry.row_id != row["RowId"] or entry.log_size is None:
        cache.remember_tail(table, key, row["RowId"], row.get("LogSize"))
        if chased:
            cache.stats.tail_fallbacks += 1
    return row


def tail_value(store: KVStore, table: str, key: Any,
               cache: Optional[TailCache] = None,
               consistency: Optional[str] = None) -> Any:
    """Current value of the item (``MISSING`` if the chain is absent).

    With ``consistency="eventual"`` every underlying read routes (and
    meters) as eventually consistent; on a replicated store the observed
    value may then be stale within the group's lag bound. The tail
    cache still participates: its entries are positional *hints*
    validated against whichever replica serves the read, so a
    follower-observed tail cached here at worst costs a later strong
    operation one repair traversal — the same fail-safe staleness the
    cache already absorbs from GC disconnections.
    """
    row = fast_tail_row(store, table, key, cache, consistency=consistency)
    if row is not None:
        return row.get("Value", MISSING)
    skeleton = load_skeleton(store, table, key, cache=cache,
                             consistency=consistency)
    if not skeleton.exists:
        return MISSING
    row = read_row(store, table, key, skeleton.tail,
                   consistency=consistency)
    if row is None:
        return MISSING
    return row.get("Value", MISSING)


def append_row(store: KVStore, table: str, key: Any, prev_row: dict,
               new_row_id: str,
               cache: Optional[TailCache] = None) -> str:
    """Extend the chain past a full row; returns the new tail's row id.

    Lock-free: create the candidate row, then CAS the predecessor's
    ``NextRow``. Exactly one appender wins; losers adopt the winner's row
    (their candidate is left orphaned for the GC). The candidate carries
    the predecessor's ``Value`` and ``LockOwner`` forward so the tail
    always holds the current value and the live lock (§6.1).

    The CAS is **version-validated**: every row mutation bumps
    ``Version``, and the link only lands if the predecessor still matches
    the snapshot the candidate was copied from. Without this, a copy
    racing a concurrent mutation of the predecessor (e.g. a transaction
    commit's flush-and-unlock) would resurrect the pre-mutation value and
    lock in the new tail — a lost update.
    """
    prev_id = prev_row["RowId"]
    while True:
        candidate = {
            "Key": key,
            "RowId": new_row_id,
            "Value": prev_row.get("Value", MISSING),
            "RecentWrites": {},
            "LogSize": 0,
            "Version": 0,
        }
        if "LockOwner" in prev_row:
            candidate["LockOwner"] = prev_row["LockOwner"]
        for attr in ("TxnId", "OrigKey", "OwnerInstance"):
            if attr in prev_row:
                candidate[attr] = prev_row[attr]
        store.put(table, candidate)
        try:
            store.update(
                table, (key, prev_id),
                [Set("NextRow", new_row_id)],
                condition=And(AttrNotExists("NextRow"),
                              Eq("Version", prev_row.get("Version", 0))))
            if cache is not None:
                cache.remember_tail(table, key, new_row_id, 0)
            return new_row_id
        except ConditionFailed:
            refreshed = read_row(store, table, key, prev_id)
            if refreshed is None:
                raise
            winner = refreshed.get("NextRow")
            if winner is not None:
                # Lost the race: adopt, orphan the copy. The winner is
                # reachable (it was linked), so it is safe to remember —
                # but its log size is unknown here.
                if cache is not None:
                    cache.remember_tail(table, key, winner, None)
                return winner
            # Predecessor mutated under us (flush/unlock/another log
            # entry): re-snapshot and retry with fresh contents.
            prev_row = refreshed


def bump_version():
    """SET action incrementing a row's mutation counter.

    Every update to a row must include this so that version-validated
    appends (see :func:`append_row`) can detect concurrent mutation.
    """
    from repro.kvstore import IfNotExists, Plus, Value
    from repro.kvstore.expressions import path as kv_path
    return Set("Version", Plus(IfNotExists(kv_path("Version"), Value(0)),
                               Value(1)))


def row_has_space(row: dict, capacity: int) -> bool:
    return row.get("LogSize", 0) < capacity and "NextRow" not in row


def case_b_condition(log_key: str, capacity: int) -> Condition:
    """Fig. 7a case B: op not logged, log has space, no successor."""
    return And(
        AttrNotExists(path("RecentWrites", log_key)),
        SizeLt("RecentWrites", capacity),
        AttrNotExists(path("NextRow")),
    )


def lock_free_condition(owner_id: str) -> Condition:
    """Lock is free or already mine (Fig. 11's acquisition condition)."""
    return AttrNotExists("LockOwner") | Eq(path("LockOwner", "Id"), owner_id)


def flush_value(store: KVStore, table: str, key: Any, value: Any,
                txn_id: str,
                cache: Optional[TailCache] = None) -> bool:
    """Commit-phase write: install ``value`` and release the lock, atomically.

    Runs with only at-least-once semantics; idempotency comes from the
    ``LockOwner.Id == txn_id`` condition — once the first flush lands and
    releases the lock, every retry fails the condition and backs off.
    Returns True if this call performed the flush.

    With a cache the tail resolves through :func:`fast_tail_row` (one
    ``get`` on the hot path); the conditional update's own
    ``AttrNotExists(NextRow)`` guard makes a stale cached tail fail
    safely, after which the skeleton traversal repairs the cache.
    """
    while True:
        row = fast_tail_row(store, table, key, cache)
        if row is None:
            skeleton = load_skeleton(store, table, key, cache=cache)
            if not skeleton.exists:
                return False
            row = read_row(store, table, key, skeleton.tail)
            if row is None:
                continue
        tail_id = row["RowId"]
        owner = row.get("LockOwner")
        if not owner or owner.get("Id") != txn_id:
            return False  # already flushed (and unlocked) by a peer
        if "NextRow" in row:
            if cache is not None:
                cache.forget(table, key)
            continue  # stale tail; rebuild the skeleton
        try:
            store.update(
                table, (key, tail_id),
                [Set("Value", value), Remove("LockOwner"),
                 bump_version()],
                condition=And(Eq(path("LockOwner", "Id"), txn_id),
                              AttrNotExists(path("NextRow"))))
            return True
        except ConditionFailed:
            refreshed = read_row(store, table, key, tail_id)
            if refreshed is None:
                if cache is not None:
                    cache.forget(table, key)
                continue
            owner = refreshed.get("LockOwner")
            if not owner or owner.get("Id") != txn_id:
                return False
            # Tail changed under us (our own earlier lock/append traffic);
            # follow the chain and retry.
            if cache is not None and "NextRow" in refreshed:
                cache.forget(table, key)
            continue


def release_lock(store: KVStore, table: str, key: Any,
                 owner_id: str,
                 cache: Optional[TailCache] = None) -> bool:
    """Abort-phase unlock (no value install); idempotent like flush."""
    while True:
        tail_id = None
        if cache is not None:
            entry = cache.tail_of(table, key)
            if entry is not None:
                tail_id = entry.row_id
        if tail_id is None:
            skeleton = load_skeleton(store, table, key, cache=cache)
            if not skeleton.exists:
                return False
            tail_id = skeleton.tail
        try:
            store.update(
                table, (key, tail_id),
                [Remove("LockOwner"), bump_version()],
                condition=And(Eq(path("LockOwner", "Id"), owner_id),
                              AttrNotExists(path("NextRow"))))
            return True
        except ConditionFailed:
            row = read_row(store, table, key, tail_id)
            if row is None or "NextRow" in row:
                if cache is not None:
                    cache.forget(table, key)
                continue  # stale tail (cached or raced); re-resolve
            owner = row.get("LockOwner")
            if not owner or owner.get("Id") != owner_id:
                return False
            continue


def chain_rows(store: KVStore, table: str, key: Any) -> list[dict]:
    """Full (unprojected) reachable rows, head to tail — GC's view."""
    skeleton = load_skeleton(store, table, key)
    rows = []
    for row_id in skeleton.reachable:
        row = read_row(store, table, key, row_id)
        if row is not None:
            rows.append(row)
    return rows


def all_keys(store: KVStore, table: str) -> list[Any]:
    """Distinct item keys in a DAAL table (``getAllDataKeys`` in Fig. 10)."""
    result = store.scan(
        table,
        filter_condition=Eq("RowId", HEAD_ROW_ID),
        projection=Projection.of("Key"))
    return [row["Key"] for row in result.items]


def chain_length(store: KVStore, table: str, key: Any) -> int:
    return len(load_skeleton(store, table, key).reachable)
