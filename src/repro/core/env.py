"""Sovereignty domains: tables, logs and collectors for a group of SSFs.

A :class:`BeldiEnv` is the unit of data sovereignty (§2.2): one intent
table, one read log, one invoke log, a set of data tables (each a linked
DAAL with a shadow twin), and one IC/GC pair. Independent SSFs get their
own env; SSFs from one engineering team may share one (§3.3). An SSF can
only address tables declared in its env — touching anything else raises
:class:`TableNotDeclared`, which is how the library enforces that state is
"only exposed by choice through an SSF's outputs".
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core import daal
from repro.core.config import BeldiConfig
from repro.core.errors import TableNotDeclared
from repro.kvstore import KVStore

PENDING_INDEX = "pending"
SHADOW_TXN_INDEX = "by_txn"


class BeldiEnv:
    """One sovereignty domain's storage layout."""

    def __init__(self, store: KVStore, config: BeldiConfig, name: str,
                 tables: Iterable[str] = (),
                 storage_mode: str = "daal",
                 tail_cache=None) -> None:
        if storage_mode not in ("daal", "crosstable"):
            raise ValueError(f"unknown storage mode {storage_mode!r}")
        self.store = store
        self.config = config
        self.name = name
        self.storage_mode = storage_mode
        #: The owning runtime's §4.4 tail cache (None = seed behavior).
        #: Out-of-band accessors (peek) resolve tails through it too, so
        #: tests observe the same fast path the SSFs use.
        self.tail_cache = tail_cache
        self.intent_table = f"{name}.intent"
        self.read_log = f"{name}.readlog"
        self.invoke_log = f"{name}.invokelog"
        self.write_log = f"{name}.writelog"  # cross-table mode only
        self.lockset_table = f"{name}.locksets"
        self._tables: dict[str, str] = {}

        store.ensure_table(self.intent_table, hash_key="InstanceId")
        store.table(self.intent_table).add_index(PENDING_INDEX, "Pending")
        store.ensure_table(self.read_log, hash_key="InstanceId",
                           range_key="Step")
        store.ensure_table(self.invoke_log, hash_key="InstanceId",
                           range_key="Step")
        store.ensure_table(self.lockset_table, hash_key="TxnId",
                           range_key="LockRef")
        if storage_mode == "crosstable":
            store.ensure_table(self.write_log, hash_key="InstanceId",
                               range_key="Step")
        for short in tables:
            self.declare_table(short)

    # -- data tables ------------------------------------------------------------
    def declare_table(self, short: str) -> str:
        """Create (or adopt) a data table (and its shadow twin, in DAAL
        mode; cross-table mode uses plain one-row-per-item tables)."""
        full = f"{self.name}.{short}"
        if self.storage_mode == "crosstable":
            self.store.ensure_table(full, hash_key="Key")
            self._tables[short] = full
            return full
        self.store.ensure_table(full, hash_key="Key", range_key="RowId")
        shadow = f"{full}.shadow"
        shadow_table = self.store.ensure_table(shadow, hash_key="Key",
                                               range_key="RowId")
        if SHADOW_TXN_INDEX not in shadow_table._indexes:
            shadow_table.add_index(SHADOW_TXN_INDEX, "TxnId")
        self._tables[short] = full
        return full

    def data_table(self, short: str) -> str:
        full = self._tables.get(short)
        if full is None:
            raise TableNotDeclared(
                f"table {short!r} is not declared in env {self.name!r} "
                f"(declared: {sorted(self._tables)})")
        return full

    def shadow_table(self, short: str) -> str:
        return f"{self.data_table(short)}.shadow"

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- seeding -----------------------------------------------------------------
    def seed(self, short: str, key: Any, value: Any) -> None:
        """Install an initial value for an item (head-row creation)."""
        full = self.data_table(short)
        if self.storage_mode == "crosstable":
            self.store.put(full, {"Key": key, "Value": value})
        else:
            daal.ensure_head(self.store, full, key, value=value)

    def peek(self, short: str, key: Any) -> Any:
        """Read an item's current value outside any SSF (tests, benches)."""
        full = self.data_table(short)
        if self.storage_mode == "crosstable":
            row = self.store.get(full, key)
            value = row.get("Value", daal.MISSING) if row else daal.MISSING
        else:
            value = daal.tail_value(self.store, full, key,
                                    cache=self.tail_cache)
        return None if value == daal.MISSING else value

    # -- storage accounting --------------------------------------------------------
    def log_table_names(self) -> list[str]:
        names = [self.intent_table, self.read_log, self.invoke_log,
                 self.lockset_table]
        if self.storage_mode == "crosstable":
            names.append(self.write_log)
        return names

    def storage_bytes(self) -> int:
        total = 0
        for name in self.log_table_names():
            total += self.store.storage_bytes(name)
        for full in self._tables.values():
            total += self.store.storage_bytes(full)
            if self.storage_mode == "daal":
                total += self.store.storage_bytes(f"{full}.shadow")
        return total
