"""Beldi library error types."""

from __future__ import annotations


class BeldiError(Exception):
    """Base class for Beldi errors."""


class TxnAborted(BeldiError):
    """The enclosing transaction died (wait-die) or was aborted by the app.

    User code should let this propagate; the runtime converts it into the
    transaction outcome and the abort protocol. Inside
    ``ctx.transaction()`` blocks it is handled automatically.
    """


class InvokeFailed(BeldiError):
    """A synchronous invocation could not complete after retries."""


class TableNotDeclared(BeldiError):
    """SSF touched a table outside its sovereignty domain (its env)."""


class NotSupported(BeldiError):
    """Operation unsupported in this mode (e.g. asyncInvoke in a txn)."""


class MisusedApi(BeldiError):
    """API contract violation (e.g. end_tx without begin_tx)."""


class DeadlineExceeded(BeldiError):
    """The request's deadline budget expired before the work finished.

    Raised by the resilience layer when a retry would sleep past the
    per-request deadline (``BeldiConfig.request_deadline``). The abort is
    clean: the intent stays pending and the intent collector finishes the
    instance later, so exactly-once semantics are preserved — the client
    just stops waiting.
    """
