"""The garbage collector (§5, Fig. 10): lock-free log and row pruning.

Runs as a timer-triggered SSF with only at-least-once semantics. One run
executes six phases over its env:

1. stamp a ``FinishTime`` on intents that completed since the last run;
2. classify intents finished more than ``T`` ago as *recyclable* — the
   synchrony assumption (no SSF instance lives longer than ``T``, derived
   from the platform's execution timeout) guarantees no live instance can
   still need their logs;
3. delete the recyclable instances' read-log and invoke-log entries;
4. prune recyclable entries from reachable DAAL rows and *disconnect*
   interior rows whose write logs emptied, stamping them with a
   ``DangleTime`` (in-flight traversals may still be standing on them);
5. delete rows that have dangled for more than ``T`` and are unreachable
   from the head — including append-race orphans, which this
   implementation additionally stamps and collects (the paper leaves
   orphan reclamation implicit);
6. delete the recyclable intent records themselves (last, so a crashed GC
   re-runs the earlier phases for them).

Shadow chains (transaction scratch space) are collected whole — head and
tail included — once their owning instance and every logged writer are
gone (§6.2), and lock-set records follow their owner instance.

Liveness classification treats "present in the intent table" as live
unless recyclable, and "absent" as long-gone (its row entries were
necessarily created before the intent was deleted in a previous run's
phase 6). With paging enabled, instances outside the scanned page are
point-checked before anything of theirs is pruned.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import daal, logkeys
from repro.core.env import BeldiEnv
from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Eq,
    Remove,
    Set,
    batch_get_all,
    batch_write_all,
)
from repro.kvstore.expressions import Projection, path
from repro.platform.context import InvocationContext


class _Liveness:
    """Classify instance ids as live / recyclable / long-gone."""

    def __init__(self, env: BeldiEnv, live: set, recyclable: set,
                 scanned_all: bool) -> None:
        self.env = env
        self.live = set(live)
        self.recyclable = set(recyclable)
        self.scanned_all = scanned_all
        self.known_gone: set = set()

    def is_live(self, instance_id: str) -> bool:
        if instance_id in self.recyclable:
            return False
        if instance_id in self.live:
            return True
        if instance_id in self.known_gone:
            return False
        # Unknown id: it may have registered *after* our intent scan (an
        # intent is always inserted before any DAAL write), or it may sit
        # outside a paged scan. Point-check the table; "absent" is then
        # definitive — only phase 6 of a previous run can have removed it,
        # which implies it was recyclable.
        record = self.env.store.get(self.env.intent_table, instance_id)
        if record is None:
            self.known_gone.add(instance_id)
            return False
        self.live.add(instance_id)
        return True

    def _unknown(self, instance_ids) -> list:
        return sorted({
            instance_id for instance_id in instance_ids
            if instance_id and instance_id not in self.live
            and instance_id not in self.recyclable
            and instance_id not in self.known_gone})

    def prefetch(self, instance_ids) -> None:
        """Classify many unknown ids with one batched point-check.

        Same liveness semantics as :meth:`is_live`, but the intent-table
        reads for every id not settled by the scan coalesce into a single
        ``batch_get`` round trip instead of one ``get`` each.
        """
        unknown = self._unknown(instance_ids)
        if not unknown:
            return
        # Retry throttled remainders (partial BatchGetItem) rather than
        # failing the whole liveness check; leftovers fall back to
        # point gets inside batch_get_all.
        records = batch_get_all(self.env.store, self.env.intent_table,
                                unknown)
        for instance_id, record in zip(unknown, records):
            if record is None:
                self.known_gone.add(instance_id)
            else:
                self.live.add(instance_id)


def make_garbage_collector(runtime, env: BeldiEnv):
    """Build the GC handler for one env; registered as a platform fn."""

    def garbage_collector(platform_ctx: InvocationContext,
                          payload: Any) -> dict:
        obs = getattr(runtime, "obs", None)
        if obs is None:
            return _collect(platform_ctx, payload)
        with obs.tracer.span("gc.pass", cat="gc", env=env.name):
            stats = _collect(platform_ctx, payload)
        for key in sorted(stats):
            if stats[key]:
                obs.metrics.inc(f"gc.{key}", stats[key])
        return stats

    def _collect(platform_ctx: InvocationContext,
                 payload: Any) -> dict:
        now = runtime.kernel.now
        t_bound = runtime.config.gc_t
        store = env.store
        cache = (runtime.tail_cache
                 if runtime.config.tail_cache else None)
        batch = runtime.config.batch_reads
        # Batched deletions (batch_log_writes): every GC deletion is
        # unconditional and idempotent, so DynamoDB-style BatchWriteItem
        # coalescing (25-item requests, unprocessed-item retries) is
        # always sound here — only the round-trip count changes.
        batch_writes = getattr(runtime.config, "batch_log_writes", False)
        stats = {"stamped": 0, "recycled_intents": 0, "log_entries": 0,
                 "pruned_entries": 0, "disconnected": 0, "deleted_rows": 0,
                 "shadow_chains": 0, "locksets": 0, "migrations": 0}

        # Phase 0 (elastic stores only): a chain migration whose worker
        # crashed left a durable record mid-phase — roll it back (the
        # source stayed authoritative) or forward (routing already
        # flipped) before collecting anything, so the chain walk below
        # never meets a half-moved item. Live moves (still latched) are
        # left alone.
        elasticity = getattr(runtime, "elasticity", None)
        if elasticity is not None:
            from repro.kvstore.rebalance import recover_stale_migrations
            stats["migrations"] = recover_stale_migrations(
                store, elasticity.migrator)

        # Phases 1-2: stamp finish times; find recyclable intents. The
        # first-pass scan is classification only, so it may run at the
        # configured eventual consistency (half-price on a replicated
        # store): staleness is bounded by the replication lag — far
        # below T — and every conclusion it feeds is conservative or
        # re-checked. A missed/stale intent is treated as live (waits
        # for the next run); "Done without FinishTime" stamps through a
        # guarded conditional write; recyclability requires a FinishTime
        # more than T old, which lag cannot forge. Everything
        # destructive below reads strong.
        scan_consistency = ("eventual" if runtime.config.read_consistency
                            == "eventual" else None)
        live: set = set()
        recyclable: list[str] = []
        page_limit = runtime.config.gc_page_limit
        scan = store.scan(env.intent_table, limit=page_limit,
                          consistency=scan_consistency)
        scanned_all = scan.last_evaluated_key is None
        for intent in scan.items:
            instance_id = intent["InstanceId"]
            if not intent.get("Done"):
                live.add(instance_id)
                continue
            if "FinishTime" not in intent:
                try:
                    store.update(env.intent_table, instance_id,
                                 [Set("FinishTime", now)],
                                 condition=AttrNotExists("FinishTime"))
                    stats["stamped"] += 1
                except ConditionFailed:
                    pass  # a concurrent GC stamped it
                live.add(instance_id)
            elif now - intent["FinishTime"] > t_bound:
                recyclable.append(instance_id)
            else:
                live.add(instance_id)
        liveness = _Liveness(env, live, set(recyclable), scanned_all)

        # Phase 3: drop read/invoke(/write) log entries of recyclables.
        log_tables = [env.read_log, env.invoke_log]
        if env.storage_mode == "crosstable":
            log_tables.append(env.write_log)
        for instance_id in recyclable:
            for log_table in log_tables:
                entries = store.query(log_table, instance_id,
                                      projection=Projection.of("Step"))
                dead_keys = [(instance_id, entry["Step"])
                             for entry in entries.items]
                _delete_keys(store, log_table, dead_keys, batch_writes)
                stats["log_entries"] += len(dead_keys)

        # Phases 4-5: DAAL maintenance for data tables and shadows
        # (cross-table mode has flat tables; nothing to disconnect).
        if env.storage_mode == "daal":
            for short in env.table_names():
                table = env.data_table(short)
                for key in daal.all_keys(store, table):
                    _collect_chain(store, table, key, liveness, now,
                                   t_bound, stats, cache=cache,
                                   batch=batch,
                                   batch_writes=batch_writes)
                shadow = env.shadow_table(short)
                _collect_shadows(store, shadow, liveness, now, t_bound,
                                 stats, cache=cache, batch=batch,
                                 batch_writes=batch_writes)

        # Lock sets die with their owning instance. (Flags off keeps the
        # seed's check-then-delete interleaving so op order — and
        # therefore every latency/fault draw — is untouched.)
        lockset_scan = store.scan(env.lockset_table)
        if batch_writes:
            dead_refs = [
                (ref["TxnId"], ref["LockRef"])
                for ref in lockset_scan.items
                if not liveness.is_live(ref.get("OwnerInstance", ""))]
            _delete_keys(store, env.lockset_table, dead_refs, batch_writes)
            stats["locksets"] += len(dead_refs)
        else:
            for ref in lockset_scan.items:
                if not liveness.is_live(ref.get("OwnerInstance", "")):
                    store.delete(env.lockset_table,
                                 (ref["TxnId"], ref["LockRef"]))
                    stats["locksets"] += 1

        # Phase 6: finally retire the intent records.
        for instance_id in recyclable:
            store.delete(env.intent_table, instance_id)
            stats["recycled_intents"] += 1
        return stats

    return garbage_collector


def _entry_instances(row: dict) -> set:
    return {logkeys.instance_of(log_key)
            for log_key in (row.get("RecentWrites") or {})}


def _delete_keys(store, table: str, keys, batch_writes: bool) -> None:
    """Unconditionally delete ``keys``; coalesced when batching is on."""
    keys = list(keys)
    if not keys:
        return
    if batch_writes:
        batch_write_all(store, table, deletes=keys)
    else:
        for key in keys:
            store.delete(table, key)


def _collect_chain(store, table: str, key: Any, liveness: _Liveness,
                   now: float, t_bound: float, stats: dict,
                   cache=None, batch: bool = False,
                   batch_writes: bool = False) -> None:
    """Phases 4-5 for one item's chain."""
    result = store.query(table, key)
    rows = {row["RowId"]: row for row in result.items}
    if daal.HEAD_ROW_ID not in rows:
        return
    # Reachable chain walk (same rule as the traversal).
    chain: list[dict] = []
    cursor: Optional[str] = daal.HEAD_ROW_ID
    seen = set()
    while cursor is not None and cursor in rows and cursor not in seen:
        seen.add(cursor)
        chain.append(rows[cursor])
        cursor = rows[cursor].get("NextRow")
    if batch:
        # Settle every unknown writer in one batched point-check before
        # the per-entry pruning walk issues singleton gets. Only the
        # reachable chain's entries are consulted below — orphan rows'
        # writers would be wasted read units.
        writers: set = set()
        for row in chain:
            writers |= _entry_instances(row)
        liveness.prefetch(writers)

    # Prune dead log entries everywhere in the reachable chain. LogSize is
    # intentionally left as a high-water mark so "full" rows stay full.
    for row in chain:
        dead = [log_key for log_key in (row.get("RecentWrites") or {})
                if not liveness.is_live(logkeys.instance_of(log_key))]
        if dead:
            store.update(table, (key, row["RowId"]),
                         [Remove(path("RecentWrites", log_key))
                          for log_key in dead] + [daal.bump_version()])
            row["RecentWrites"] = {
                log_key: outcome
                for log_key, outcome in row["RecentWrites"].items()
                if log_key not in dead}
            stats["pruned_entries"] += len(dead)

    # Disconnect interior rows whose logs emptied (head and tail stay).
    prev = chain[0] if chain else None
    for row in chain[1:-1]:
        if not row.get("RecentWrites") and "NextRow" in row:
            try:
                store.update(
                    table, (key, prev["RowId"]),
                    [Set("NextRow", row["NextRow"])],
                    condition=Eq("NextRow", row["RowId"]))
                _stamp_dangle(store, table, key, row, now)
                stats["disconnected"] += 1
                continue  # prev stays prev: it now points past this row
            except ConditionFailed:
                pass  # concurrent GC changed the link; be conservative
        prev = row

    # Orphans and disconnected rows: stamp first sighting, delete after T.
    expired = []
    for row_id, row in rows.items():
        if row_id in seen:
            continue
        if "DangleTime" not in row:
            _stamp_dangle(store, table, key, row, now)
        elif now - row["DangleTime"] > t_bound:
            if batch_writes:
                expired.append(row_id)
            else:
                store.delete(table, (key, row_id))
                if cache is not None:
                    cache.drop_row(table, key, row_id)
                stats["deleted_rows"] += 1
    if expired:
        _delete_keys(store, table, [(key, row_id) for row_id in expired],
                     batch_writes)
        for row_id in expired:
            if cache is not None:
                cache.drop_row(table, key, row_id)
            stats["deleted_rows"] += 1


def _stamp_dangle(store, table: str, key: Any, row: dict,
                  now: float) -> None:
    try:
        store.update(table, (key, row["RowId"]),
                     [Set("DangleTime", now)],
                     condition=AttrNotExists("DangleTime"))
    except ConditionFailed:
        pass


def _collect_shadows(store, shadow_table: str, liveness: _Liveness,
                     now: float, t_bound: float, stats: dict,
                     cache=None, batch: bool = False,
                     batch_writes: bool = False) -> None:
    """Collect whole shadow chains once every writer (and the owning
    instance) is gone; head and tail are deleted too (§6.2)."""
    for key in daal.all_keys(store, shadow_table):
        result = store.query(shadow_table, key)
        rows = result.items
        writers = set()
        owner = None
        for row in rows:
            writers |= _entry_instances(row)
            owner = row.get("OwnerInstance", owner)
        if batch:
            liveness.prefetch(writers | ({owner} if owner else set()))
        if owner is not None and liveness.is_live(owner):
            continue
        if any(liveness.is_live(instance_id) for instance_id in writers):
            continue
        head = next((row for row in rows
                     if row["RowId"] == daal.HEAD_ROW_ID), None)
        if head is not None and "DangleTime" not in head:
            # Two-step retirement: stamp now, delete a full T later, so a
            # just-started writer that raced the liveness check can still
            # finish against a consistent chain.
            _stamp_dangle(store, shadow_table, key, head, now)
            continue
        if head is not None and now - head["DangleTime"] <= t_bound:
            continue
        if batch_writes:
            _delete_keys(store, shadow_table,
                         [(key, row["RowId"]) for row in rows],
                         batch_writes)
        for row in rows:
            if not batch_writes:
                store.delete(shadow_table, (key, row["RowId"]))
            if cache is not None:
                cache.drop_row(shadow_table, key, row["RowId"])
            stats["deleted_rows"] += 1
        stats["shadow_chains"] += 1
