"""Intent-table records: the unit of exactly-once execution (§3.3).

An *intent* is the promise that one SSF instance — identified by its
instance id — will run to completion exactly once. The record carries
everything a re-execution needs: the function name, the original
arguments, the caller coordinates for callbacks, the transaction context,
and the creation timestamp (which doubles as the wait-die priority).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.env import BeldiEnv
from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Eq,
    Remove,
    Set,
)


def ensure_intent(env: BeldiEnv, instance_id: str, function: str,
                  args: Any, now: float, is_async: bool,
                  caller: Optional[dict], txn: Optional[dict]
                  ) -> tuple[dict, bool]:
    """Insert the intent if new; return ``(record, created)``.

    The conditional put makes the first invocation win; IC re-executions
    and duplicate deliveries read the existing record and replay with the
    original arguments/timestamps (determinism requirement, §3.1).
    """
    record = {
        "InstanceId": instance_id,
        "Function": function,
        "Done": False,
        "Async": is_async,
        "Args": args,
        "StartTime": now,
        "Pending": "1",
        "LastLaunched": now,
    }
    if caller is not None:
        record["Caller"] = caller
    if txn is not None:
        record["Txn"] = txn
    try:
        env.store.put(env.intent_table, record,
                      condition=AttrNotExists("InstanceId"))
        return record, True
    except ConditionFailed:
        existing = env.store.get(env.intent_table, instance_id)
        if existing is None:  # pragma: no cover - GC raced us; treat as new
            return record, True
        return existing, False


def get_intent(env: BeldiEnv, instance_id: str) -> Optional[dict]:
    return env.store.get(env.intent_table, instance_id)


def mark_done(env: BeldiEnv, instance_id: str, ret: Any) -> None:
    """Flip the intent to done and drop it from the pending index.

    Unconditional: marking an already-done intent again (IC duplicate
    finishing a race) writes the same deterministic return value.
    """
    env.store.update(
        env.intent_table, instance_id,
        [Set("Done", True), Set("Ret", ret), Remove("Pending")])


def record_launch(env: BeldiEnv, instance_id: str, now: float,
                  previous: float) -> bool:
    """IC rate limiting: claim the right to restart this instance.

    Conditional on the previously observed ``LastLaunched`` so that
    concurrent IC instances spawn one duplicate, not many.
    """
    try:
        env.store.update(
            env.intent_table, instance_id,
            [Set("LastLaunched", now)],
            condition=Eq("LastLaunched", previous))
        return True
    except ConditionFailed:
        return False


def pending_intents(env: BeldiEnv) -> list[dict]:
    """All not-yet-done intents, via the sparse secondary index (§3.3)."""
    from repro.core.env import PENDING_INDEX
    return env.store.query_index(env.intent_table, PENDING_INDEX, "1")
