"""SSF-to-SSF invocation with exactly-once semantics (§4.5).

The invoke log pins down the callee's identity: the first execution of a
caller step draws a fresh callee instance id and conditionally logs it;
every re-execution reuses the logged id, so the callee can tell
re-deliveries from new work via its own intent table.

Results travel through the **callback**: before a callee marks itself
done, it re-invokes *some* instance of the caller's function, whose
callback handler records the result in the caller's invoke log (Fig. 9).
Only then may the callee complete — otherwise the callee's independent GC
could recycle the intent before the caller saw the result, and a caller
re-execution would run the callee twice. The callee's direct return value
is merely an optimization.

Asynchronous invocation splits in two (Fig. 20): a synchronous
*registration* call that logs the intent in the callee's intent table and
acks back into the caller's invoke log, then the actual async dispatch.
If the dispatch is lost, the callee's IC finds the registered, unfinished
intent and runs it.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.errors import InvokeFailed, NotSupported, TxnAborted
from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Eq,
    Set,
    batch_write_all,
)
from repro.platform.errors import (
    FunctionCrashed,
    FunctionTimeout,
    TooManyRequests,
)

ASYNC_ACK = "__beldi_async_ack__"
TXN_ABORT_MARKER = "__beldi_txn_abort__"


def wrap_result(result: Any, aborted: bool) -> Any:
    return TXN_ABORT_MARKER if aborted else result


def unwrap_result(result: Any) -> Any:
    if result == TXN_ABORT_MARKER:
        raise TxnAborted("callee died inside the transaction")
    return result


def _log_invoke(ctx, step: int, callee: str, is_async: bool
                ) -> tuple[str, Any]:
    """Claim (or recover) the invoke-log entry for this step.

    Returns ``(callee instance id, logged result or None)``.
    """
    callee_id = ctx.fresh_callee_id()
    entry = {
        "InstanceId": ctx.instance_id,
        "Step": step,
        "CalleeId": callee_id,
        "Callee": callee,
        "Async": is_async,
        "InTxn": ctx.in_txn_execute(),
    }
    try:
        ctx.store.put(ctx.env.invoke_log, entry,
                      condition=AttrNotExists("InstanceId"))
        return callee_id, None
    except ConditionFailed:
        record = ctx.store.get(ctx.env.invoke_log,
                               (ctx.instance_id, step))
        if record is None:
            raise InvokeFailed("invoke log entry vanished") from None
        return record["CalleeId"], record.get("Result")


def _check_logged_result(ctx, step: int) -> tuple[bool, Any]:
    record = ctx.store.get(ctx.env.invoke_log, (ctx.instance_id, step))
    if record is not None and "Result" in record:
        return True, record["Result"]
    return False, None


def prepare_invoke(ctx, callee: str, payload_input: Any) -> dict:
    """Phase 1 of a synchronous invoke: allocate the step and pin the
    callee id in the invoke log. Deterministic and sequential, so
    parallel invocations replay with stable step numbers."""
    step = ctx.next_step()
    ctx.crash_point(f"invoke:{step}:start")
    callee_id, logged = _log_invoke(ctx, step, callee, is_async=False)
    call = {
        "kind": "call",
        "instance_id": callee_id,
        "input": payload_input,
        "caller": {"ssf": ctx.function_name,
                   "instance_id": ctx.instance_id,
                   "step": step},
        "async": False,
    }
    if ctx.in_txn_execute():
        call["txn"] = ctx.txn.payload()
    return {"step": step, "callee": callee, "call": call,
            "logged": logged}


def complete_invoke(ctx, prepared: dict, crash_points: bool = True) -> Any:
    """Phase 2: deliver (with the crash-retry loop) and return the result.

    If the platform reports a failed delivery, the result may still have
    arrived through the callback (the callee may have finished and died
    before replying) — so each retry first consults the invoke log before
    re-invoking with the *same* callee id.
    """
    if prepared["logged"] is not None:
        return unwrap_result(prepared["logged"])
    step = prepared["step"]
    callee = prepared["callee"]
    with ctx.trace(f"step.invoke:{callee}", cat="step",
                   span_id=f"{ctx.instance_id}#{step}", step=step,
                   callee=prepared["call"]["instance_id"]):
        attempts = 0
        while True:
            if crash_points:
                ctx.crash_point(f"invoke:{step}:before-call")
            try:
                result = ctx.platform_ctx.sync_invoke(callee,
                                                      prepared["call"])
                if crash_points:
                    ctx.crash_point(f"invoke:{step}:after-call")
                return unwrap_result(result)
            except (FunctionCrashed, FunctionTimeout, TooManyRequests):
                found, result = _check_logged_result(ctx, step)
                if found:
                    return unwrap_result(result)
                attempts += 1
                if attempts > ctx.config.invoke_retry_limit:
                    raise InvokeFailed(
                        f"sync invoke of {callee!r} failed after "
                        f"{attempts} attempts")
                ctx.sleep(ctx.config.invoke_retry_backoff * attempts)


def sync_invoke_op(ctx, callee: str, payload_input: Any) -> Any:
    """Fig. 8's caller path: prepare, then deliver."""
    return complete_invoke(ctx, prepare_invoke(ctx, callee,
                                               payload_input))


def _derived_callee_id(instance_id: str, step: int) -> str:
    """A callee instance id that is a pure function of the caller step.

    The batched claim path (below) needs every executor of one logical
    instance to write byte-identical invoke-log entries, so the callee
    id cannot be a fresh draw pinned by a conditional put — it derives
    from ``(instance id, step)`` instead, both stable under replay.
    Uniqueness follows from instance-id uniqueness.
    """
    digest = hashlib.md5(
        f"{instance_id}|{step}|callee".encode("utf-8")).hexdigest()
    return f"c-{digest}"


def prepare_parallel_invokes(ctx, calls: list) -> list:
    """Phase 1 for a parallel fan-out, coalesced (``batch_log_writes``).

    The seed path claims N invoke-log entries with N conditional puts —
    N sequential round trips whose only job is to pin each step's callee
    id against a racing re-execution. The batched path makes the entries
    *deterministic* instead (see :func:`_derived_callee_id`) and claims
    them all with one unconditional ``batch_write``: concurrent
    executors write identical rows, so overwrites commute and no
    condition is needed — which is exactly what DynamoDB's
    ``BatchWriteItem`` (no conditions) permits.

    The one observable race: a replayed claim can overwrite an entry
    *after* a fast callee's callback recorded its ``Result``, erasing
    it. That loses nothing — the replayer re-invokes the **same** callee
    id, the callee's intent table replays the logged return (§4.5's
    exactly-once backstop), and the callback re-records. The caller's
    GC horizon (no instance outlives ``T``) keeps the callee's intent
    alive for every such retry. Partial batch throttles retry through
    :func:`~repro.kvstore.batch_write_all`; entries always land before
    any dispatch, preserving the entry-before-invoke invariant the
    callback handler relies on.
    """
    if not getattr(ctx.config, "batch_log_writes", False) or len(calls) < 2:
        return [prepare_invoke(ctx, callee, payload)
                for callee, payload in calls]
    prepared = []
    entries = []
    first_step = None
    for callee, payload_input in calls:
        step = ctx.next_step()
        if first_step is None:
            first_step = step
        callee_id = _derived_callee_id(ctx.instance_id, step)
        entries.append({
            "InstanceId": ctx.instance_id,
            "Step": step,
            "CalleeId": callee_id,
            "Callee": callee,
            "Async": False,
            "InTxn": ctx.in_txn_execute(),
        })
        call = {
            "kind": "call",
            "instance_id": callee_id,
            "input": payload_input,
            "caller": {"ssf": ctx.function_name,
                       "instance_id": ctx.instance_id,
                       "step": step},
            "async": False,
        }
        if ctx.in_txn_execute():
            call["txn"] = ctx.txn.payload()
        prepared.append({"step": step, "callee": callee, "call": call,
                         "logged": None})
    ctx.crash_point(f"pinvoke:{first_step}:before-claim")
    batch_write_all(ctx.store, ctx.env.invoke_log, puts=entries)
    ctx.crash_point(f"pinvoke:{first_step}:after-claim")
    return prepared


def parallel_invoke_op(ctx, calls: list) -> list:
    """Concurrent synchronous invocations, joined (§6.2's threads).

    Steps and invoke-log entries are allocated sequentially first, so
    re-executions replay the identical log keys regardless of completion
    order; only the deliveries run concurrently. With
    ``batch_log_writes`` the N entry claims coalesce into one
    ``batch_write`` round trip (see :func:`prepare_parallel_invokes`).
    A TxnAborted from any branch is re-raised after all branches join
    (locks held by the survivors stay consistent for the abort
    protocol).
    """
    prepared = prepare_parallel_invokes(ctx, calls)
    kernel = ctx.runtime.kernel
    procs = [kernel.spawn(complete_invoke, ctx, p, False,
                          name=f"parallel:{p['callee']}")
             for p in prepared]
    results: list = []
    aborted = False
    first_error: Any = None
    for proc in procs:
        try:
            results.append(kernel.join(proc))
        except TxnAborted:
            aborted = True
            results.append(None)
        except Exception as exc:  # noqa: BLE001 - joined below
            first_error = first_error or exc
            results.append(None)
    if aborted:
        raise TxnAborted("a parallel branch died inside the transaction")
    if first_error is not None:
        raise first_error
    return results


def async_invoke_op(ctx, callee: str, payload_input: Any) -> None:
    """Fig. 20's caller path: register synchronously, then fire async."""
    if ctx.in_txn_execute():
        raise NotSupported("asyncInvoke is not supported in transactions")
    step = ctx.next_step()
    with ctx.trace(f"step.async_invoke:{callee}", cat="step",
                   span_id=f"{ctx.instance_id}#{step}", step=step):
        ctx.crash_point(f"invoke:{step}:start")
        callee_id, logged = _log_invoke(ctx, step, callee, is_async=True)
        acked = logged == ASYNC_ACK
        if not acked:
            registration = {
                "kind": "async_register",
                "instance_id": callee_id,
                "input": payload_input,
                "caller": {"ssf": ctx.function_name,
                           "instance_id": ctx.instance_id,
                           "step": step},
            }
            attempts = 0
            while True:
                try:
                    ctx.platform_ctx.sync_invoke(callee, registration)
                    break
                except (FunctionCrashed, FunctionTimeout,
                        TooManyRequests):
                    found, result = _check_logged_result(ctx, step)
                    if found and result == ASYNC_ACK:
                        break
                    attempts += 1
                    if attempts > ctx.config.invoke_retry_limit:
                        raise InvokeFailed(
                            f"async registration with {callee!r} failed "
                            f"after {attempts} attempts")
                    ctx.sleep(ctx.config.invoke_retry_backoff * attempts)
        ctx.crash_point(f"invoke:{step}:before-async")
        # At-least-once from here: if this dispatch is lost (or we
        # crash), the callee's intent collector finds the registered
        # intent and runs it.
        ctx.platform_ctx.async_invoke(
            callee, {"kind": "call", "instance_id": callee_id,
                     "async": True})


def record_callback(env, store, log_instance: str, log_step: int,
                    callee_id: str, result: Any) -> bool:
    """Callback handler body: pin the result into the caller's invoke log.

    Conditioned on the logged callee id so a *spurious* callback — from a
    callee re-executed after the caller was garbage collected, or a stale
    duplicate — is detected and ignored (§4.5).
    """
    try:
        store.update(env.invoke_log, (log_instance, log_step),
                     [Set("Result", result)],
                     condition=Eq("CalleeId", callee_id))
        return True
    except ConditionFailed:
        return False
