"""Log-key encoding shared by the DAAL write log and the log tables.

A log key identifies one external operation: ``(instance id, step)``.
Inside a linked-DAAL row's ``RecentWrites`` map it is flattened to the
string ``"<instance>#<step>"`` (map keys must be strings); in the read and
invoke log tables it is the (hash, range) = (instance id, step) key pair,
which lets the GC drop all of an instance's entries with one query.
"""

from __future__ import annotations

SEPARATOR = "#"


def encode(instance_id: str, step: int) -> str:
    if SEPARATOR in instance_id:
        raise ValueError(f"instance id may not contain {SEPARATOR!r}")
    return f"{instance_id}{SEPARATOR}{step}"


def decode(log_key: str) -> tuple[str, int]:
    instance_id, _, step = log_key.rpartition(SEPARATOR)
    return instance_id, int(step)


def instance_of(log_key: str) -> str:
    return log_key.rpartition(SEPARATOR)[0]
