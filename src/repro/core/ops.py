"""Exactly-once operation wrappers over the linked DAAL (§4.2-§4.4).

Each wrapper pairs the externally visible effect with a log record so that
re-executions (by the intent collector, or duplicate instances) observe
"already done" and skip. Reads log value+step to the read log in a second,
non-atomic step (a crash in between is safe — the unlogged read had no
external effect); writes log *into the same row they modify*, which is the
linked DAAL's whole reason to exist.

The write-side case analysis follows Figures 6/7 and 17/18 exactly:

====  ===========================================================
Case  Candidate tail state
====  ===========================================================
A     operation already in this row's log -> return logged outcome
B     not logged, log has space, no successor -> do it here
(B1/B2 for conditional writes: user condition true/false)
C     not logged, row full, successor exists -> follow the chain
D     not logged, row full, no successor -> append a row, retry
====  ===========================================================

Cases are probed in transition-graph order (states with no incoming edges
first), so a failed conditional write soundly eliminates its case even
under concurrent mutation.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core import daal
from repro.core.errors import BeldiError
from repro.core.logkeys import encode
from repro.kvstore import (
    And,
    AttrNotExists,
    ConditionFailed,
    IfNotExists,
    Plus,
    Set,
    Value,
)
from repro.kvstore.expressions import Condition, UpdateAction, path

_MAX_CHAIN_STEPS = 10_000  # defensive bound; chains are GC-kept short


def _log_write_updates(log_key: str, outcome: Any) -> list[UpdateAction]:
    """SET actions that append one entry to a row's write log."""
    return [
        Set("LogSize", Plus(IfNotExists(path("LogSize"), Value(0)),
                            Value(1))),
        Set(path("RecentWrites", log_key), outcome),
        daal.bump_version(),
    ]


# ---------------------------------------------------------------------------
# read (Fig. 5)
# ---------------------------------------------------------------------------

def read_op(ctx, table: str, key: Any, attribute: str = "Value") -> Any:
    """Read the item's current ``attribute`` with exactly-once logging.

    Returns :data:`daal.MISSING` when the item (or attribute) does not
    exist. ``attribute`` is ``"Value"`` for data reads and ``"LockOwner"``
    for the wait-die owner probe (Fig. 11 reads the lock column through
    the same logged path).
    """
    step = ctx.next_step()
    store = ctx.store
    ctx.crash_point(f"read:{step}:start")
    skeleton = daal.load_skeleton(store, table, key)
    if not skeleton.exists:
        value = daal.MISSING
    else:
        row = daal.read_row(store, table, key, skeleton.tail)
        value = row.get(attribute, daal.MISSING) if row else daal.MISSING
    ctx.crash_point(f"read:{step}:before-log")
    try:
        store.put(ctx.env.read_log,
                  {"InstanceId": ctx.instance_id, "Step": step,
                   "Value": value},
                  condition=AttrNotExists("InstanceId"))
        ctx.crash_point(f"read:{step}:after-log")
        return value
    except ConditionFailed:
        record = store.get(ctx.env.read_log, (ctx.instance_id, step))
        if record is None:
            raise BeldiError(
                "read log entry vanished mid-operation") from None
        return record["Value"]


def record_op(ctx, compute) -> Any:
    """Log the result of a non-deterministic computation (§3.1).

    First execution evaluates ``compute()`` and logs the result; replays
    return the logged value, making things like fresh UUIDs and timestamps
    deterministic under re-execution.
    """
    step = ctx.next_step()
    store = ctx.store
    existing = store.get(ctx.env.read_log, (ctx.instance_id, step))
    if existing is not None:
        return existing["Value"]
    value = compute()
    try:
        store.put(ctx.env.read_log,
                  {"InstanceId": ctx.instance_id, "Step": step,
                   "Value": value},
                  condition=AttrNotExists("InstanceId"))
        return value
    except ConditionFailed:
        record = store.get(ctx.env.read_log, (ctx.instance_id, step))
        return record["Value"] if record else value


# ---------------------------------------------------------------------------
# write (Fig. 6)
# ---------------------------------------------------------------------------

def write_op(ctx, table: str, key: Any, value: Any,
             head_extra: Optional[dict] = None) -> None:
    """Unconditional exactly-once write of ``Value``."""
    step = ctx.next_step()
    log_key = encode(ctx.instance_id, step)
    store = ctx.store
    ctx.crash_point(f"write:{step}:start")
    skeleton = daal.load_skeleton(store, table, key, probe_log_key=log_key)
    if skeleton.log_hits:
        return  # case A found during the initial scan: already executed
    if not skeleton.exists:
        daal.ensure_head(store, table, key, extra_attrs=head_extra)
        skeleton = daal.load_skeleton(store, table, key,
                                      probe_log_key=log_key)
        if skeleton.log_hits:
            return
    row_id = skeleton.tail
    capacity = ctx.config.row_log_capacity
    for _ in range(_MAX_CHAIN_STEPS):
        ctx.crash_point(f"write:{step}:try:{row_id}")
        try:
            store.update(
                table, (key, row_id),
                [Set("Value", value), *_log_write_updates(log_key, True)],
                condition=daal.case_b_condition(log_key, capacity))
            ctx.crash_point(f"write:{step}:done")
            return  # case B
        except ConditionFailed:
            pass
        row = daal.read_row(store, table, key, row_id)
        if row is None:
            raise BeldiError(f"row {row_id} vanished during write")
        if log_key in (row.get("RecentWrites") or {}):
            return  # case A
        if "NextRow" not in row:
            row_id = daal.append_row(store, table, key, row,
                                     ctx.fresh_row_id())  # case D
        else:
            row_id = row["NextRow"]  # case C
    raise BeldiError("write did not terminate; chain unreasonably long")


# ---------------------------------------------------------------------------
# conditional write (Fig. 17)
# ---------------------------------------------------------------------------

def cond_write_op(ctx, table: str, key: Any,
                  condition: Condition,
                  value: Any = None,
                  set_value: bool = True,
                  extra_updates: Sequence[UpdateAction] = (),
                  head_extra: Optional[dict] = None) -> bool:
    """Exactly-once conditional write; returns the condition's outcome.

    With ``set_value`` the success path sets ``Value``; lock acquisition
    and release instead pass ``extra_updates`` mutating ``LockOwner``
    (§6.1 stores lock ownership in the same rows, logged the same way).
    The logged outcome (True/False) is what replays return — including the
    B2 path that merely records a false condition.
    """
    step = ctx.next_step()
    log_key = encode(ctx.instance_id, step)
    store = ctx.store
    ctx.crash_point(f"condwrite:{step}:start")
    skeleton = daal.load_skeleton(store, table, key, probe_log_key=log_key)
    if skeleton.log_hits:
        return _only_hit(skeleton)  # case A via the initial scan
    if not skeleton.exists:
        daal.ensure_head(store, table, key, extra_attrs=head_extra)
        skeleton = daal.load_skeleton(store, table, key,
                                      probe_log_key=log_key)
        if skeleton.log_hits:
            return _only_hit(skeleton)
    row_id = skeleton.tail
    capacity = ctx.config.row_log_capacity
    success_updates: list[UpdateAction] = []
    if set_value:
        success_updates.append(Set("Value", value))
    success_updates.extend(extra_updates)
    for _ in range(_MAX_CHAIN_STEPS):
        ctx.crash_point(f"condwrite:{step}:try:{row_id}")
        case_b = daal.case_b_condition(log_key, capacity)
        try:
            store.update(
                table, (key, row_id),
                [*success_updates, *_log_write_updates(log_key, True)],
                condition=And(condition, case_b))
            ctx.crash_point(f"condwrite:{step}:done")
            return True  # case B1
        except ConditionFailed:
            pass
        # The serialization point is the attempt above: recording False
        # here is valid even if the user condition has become true since
        # (Appendix A).
        try:
            store.update(
                table, (key, row_id),
                _log_write_updates(log_key, False),
                condition=case_b)
            ctx.crash_point(f"condwrite:{step}:done")
            return False  # case B2
        except ConditionFailed:
            pass
        row = daal.read_row(store, table, key, row_id)
        if row is None:
            raise BeldiError(f"row {row_id} vanished during condWrite")
        writes = row.get("RecentWrites") or {}
        if log_key in writes:
            return bool(writes[log_key])  # case A
        if "NextRow" not in row:
            row_id = daal.append_row(store, table, key, row,
                                     ctx.fresh_row_id())  # case D
        else:
            row_id = row["NextRow"]  # case C
    raise BeldiError("condWrite did not terminate; chain unreasonably long")


def _only_hit(skeleton: daal.Skeleton) -> bool:
    outcome = next(iter(skeleton.log_hits.values()))
    return bool(outcome)
