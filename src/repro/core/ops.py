"""Exactly-once operation wrappers over the linked DAAL (§4.2-§4.4).

Each wrapper pairs the externally visible effect with a log record so that
re-executions (by the intent collector, or duplicate instances) observe
"already done" and skip. Reads log value+step to the read log in a second,
non-atomic step (a crash in between is safe — the unlogged read had no
external effect); writes log *into the same row they modify*, which is the
linked DAAL's whole reason to exist.

The write-side case analysis follows Figures 6/7 and 17/18 exactly:

====  ===========================================================
Case  Candidate tail state
====  ===========================================================
A     operation already in this row's log -> return logged outcome
B     not logged, log has space, no successor -> do it here
(B1/B2 for conditional writes: user condition true/false)
C     not logged, row full, successor exists -> follow the chain
D     not logged, row full, no successor -> append a row, retry
====  ===========================================================

Cases are probed in transition-graph order (states with no incoming edges
first), so a failed conditional write soundly eliminates its case even
under concurrent mutation.

A note on the async/batched-I/O flags (``docs/async_io.md``): the log
writes issued here are **deliberately never** deferred or coalesced. A
read's conditional read-log put is the serialization point replay
determinism rests on — it must land before any later effect that could
depend on the observed value, so write-behind buffering would break the
exactly-once argument. Batching applies only where writes are idempotent
or deterministic (the GC's deletions, the parallel-invoke claim batch in
``invoke.py``); overlapping applies only across *independent* operations
(the commit fan-out in ``txn.py``), never within one operation's
probe/log sequence.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core import daal
from repro.core.errors import BeldiError
from repro.core.logkeys import encode
from repro.kvstore import (
    And,
    AttrNotExists,
    ConditionFailed,
    IfNotExists,
    Plus,
    Set,
    Value,
)
from repro.kvstore.expressions import Condition, UpdateAction, path

_MAX_CHAIN_STEPS = 10_000  # defensive bound; chains are GC-kept short


# Expression objects are immutable at apply time (``apply`` mutates the
# item, never the action), so the two constant actions of every logged
# write are built once instead of per operation.
_LOG_SIZE_BUMP = Set("LogSize", Plus(IfNotExists(path("LogSize"), Value(0)),
                                     Value(1)))
_VERSION_BUMP = daal.bump_version()


def _log_write_updates(log_key: str, outcome: Any) -> list[UpdateAction]:
    """SET actions that append one entry to a row's write log."""
    return [
        _LOG_SIZE_BUMP,
        Set(path("RecentWrites", log_key), outcome),
        _VERSION_BUMP,
    ]


# ---------------------------------------------------------------------------
# read (Fig. 5)
# ---------------------------------------------------------------------------

def _commit_read_log(ctx, step: int, value: Any) -> Any:
    """Serialize one observed value into the read log.

    The conditional put is the serialization point for every logged
    read: the first execution records ``value``; a replay loses the
    race and returns whatever the original execution recorded.
    """
    store = ctx.store
    try:
        store.put(ctx.env.read_log,
                  {"InstanceId": ctx.instance_id, "Step": step,
                   "Value": value},
                  condition=AttrNotExists("InstanceId"))
        return value
    except ConditionFailed:
        record = store.get(ctx.env.read_log, (ctx.instance_id, step))
        if record is None:
            raise BeldiError(
                "read log entry vanished mid-operation") from None
        return record["Value"]


def read_op(ctx, table: str, key: Any, attribute: str = "Value") -> Any:
    """Read the item's current ``attribute`` with exactly-once logging.

    Returns :data:`daal.MISSING` when the item (or attribute) does not
    exist. ``attribute`` is ``"Value"`` for data reads and ``"LockOwner"``
    for the wait-die owner probe (Fig. 11 reads the lock column through
    the same logged path).

    Fast path (§4.4): with a tail cache the read goes straight to the
    cached tail with one ``get`` — sound regardless of replays, because
    a read's exactly-once outcome lives in the read log, not the chain,
    and the tail row itself is always re-read fresh.
    """
    step = ctx.next_step()
    with ctx.trace("op.read", span_id=f"{ctx.instance_id}#{step}",
                   step=step, table=table):
        store = ctx.store
        ctx.crash_point(f"read:{step}:start")
        row = daal.fast_tail_row(store, table, key, ctx.tail_cache)
        if row is not None:
            value = row.get(attribute, daal.MISSING)
        else:
            skeleton = daal.load_skeleton(store, table, key,
                                          cache=ctx.tail_cache)
            if not skeleton.exists:
                value = daal.MISSING
            else:
                row = daal.read_row(store, table, key, skeleton.tail)
                value = (row.get(attribute, daal.MISSING) if row
                         else daal.MISSING)
        ctx.crash_point(f"read:{step}:before-log")
        value = _commit_read_log(ctx, step, value)
        ctx.crash_point(f"read:{step}:after-log")
        return value


def read_only_op(ctx, table: str, key: Any,
                 consistency: Optional[str] = None) -> Any:
    """Logged read *without* exactly-once registration (§2.2's knob).

    For reads that are observations only — no lock probe, no write-log
    entry to land — the full exactly-once read is overkill: the result
    just needs to be deterministic under replay, which the read log
    alone provides. The tail lookup can therefore run at the requested
    ``consistency``: ``"eventual"`` routes to a follower at half a read
    unit (DynamoDB's 1x eventual vs 2x strong pricing), possibly stale
    within the replication-lag bound. The read-log record itself is a
    leader write, as all writes are.

    Replays return the logged value exactly like :func:`read_op`: the
    conditional log put is the serialization point.
    """
    step = ctx.next_step()
    with ctx.trace("op.roread", span_id=f"{ctx.instance_id}#{step}",
                   step=step, table=table):
        ctx.crash_point(f"roread:{step}:start")
        value = daal.tail_value(ctx.store, table, key,
                                cache=ctx.tail_cache,
                                consistency=consistency)
        ctx.crash_point(f"roread:{step}:before-log")
        value = _commit_read_log(ctx, step, value)
        ctx.crash_point(f"roread:{step}:after-log")
        return value


def record_op(ctx, compute) -> Any:
    """Log the result of a non-deterministic computation (§3.1).

    First execution evaluates ``compute()`` and logs the result; replays
    return the logged value, making things like fresh UUIDs and timestamps
    deterministic under re-execution.
    """
    step = ctx.next_step()
    with ctx.trace("op.record", span_id=f"{ctx.instance_id}#{step}",
                   step=step):
        store = ctx.store
        existing = store.get(ctx.env.read_log, (ctx.instance_id, step))
        if existing is not None:
            return existing["Value"]
        value = compute()
        try:
            store.put(ctx.env.read_log,
                      {"InstanceId": ctx.instance_id, "Step": step,
                       "Value": value},
                      condition=AttrNotExists("InstanceId"))
            return value
        except ConditionFailed:
            record = store.get(ctx.env.read_log, (ctx.instance_id, step))
            return record["Value"] if record else value


# ---------------------------------------------------------------------------
# write (Fig. 6) — with the §4.4 fast path
# ---------------------------------------------------------------------------
#
# The fast path skips the initial whole-chain replay probe and starts the
# case loop straight at the cached tail. Soundness rests on the position
# cache: every logged outcome (case B landing or case A discovery) pins
# its row in the same scheduling step as the store mutation, so
#
#  - a position hit resolves a replay with one ``get`` (case A), and
#  - a *trusted* position miss means the operation was never logged
#    through this runtime — and since every operation against the store
#    flows through this runtime (single-account simulation; see
#    tailcache.py), never logged at all. Starting at the tail then risks
#    nothing: the entry the loop must not double-write does not exist.
#    Misses stop being trusted for an instance once the bounded cache
#    evicts any of its positions (taint) — those ops take the full probe.
#
# A stale cached tail fails safely: the case-B condition requires the
# target row to exist (``SizeLt(RecentWrites)``) and be chainless, so a
# deleted or chained row raises ConditionFailed, and the loop repairs the
# cache via one full probe before continuing.


def _position_replay(store, table: str, key: Any, log_key: str,
                     cache) -> tuple[bool, Any]:
    """Resolve a replayed op through the position cache: one ``get``."""
    if cache is None:
        return False, None
    row_id = cache.position_of(table, key, log_key)
    if row_id is None:
        return False, None
    row = daal.read_row(store, table, key, row_id)
    writes = (row.get("RecentWrites") or {}) if row else {}
    if log_key in writes:
        cache.stats.position_hits += 1
        return True, writes[log_key]
    # The row (or the entry) is gone — GC pruned a long-dead instance's
    # log. Evict and fall back to the sound full probe.
    cache.forget_position(table, key, log_key)
    return False, None


def _fast_start(ctx, table: str, key: Any, log_key: str,
                head_extra: Optional[dict]) -> tuple[str, Any, bool]:
    """Shared write/condWrite preamble: where does the case loop start?

    Returns ``("done", outcome, False)`` when the op already executed
    (position-cache hit, or case-A found by the full probe); otherwise
    ``("row", row_id, from_cache)`` naming the first row to try. The
    cached-tail start is taken only when a position miss is trustworthy
    (:meth:`TailCache.trusts_miss` — eviction taints instances).
    """
    cache = ctx.tail_cache
    if cache is not None:
        hit, outcome = _position_replay(ctx.store, table, key, log_key,
                                        cache)
        if hit:
            return "done", outcome, False
        if cache.trusts_miss(log_key):
            entry = cache.tail_of(table, key)
            if entry is not None:
                return "row", entry.row_id, True
    status, payload = _probe_chain(ctx, table, key, log_key, head_extra)
    return status, payload, False


def _reprobe_after_vanish(ctx, table: str, key: Any, log_key: str,
                          head_extra: Optional[dict]) -> tuple[str, Any]:
    """A cache-supplied start row vanished (GC reclaimed it): evict the
    stale tail and restart from the full probe — the sound slow path.
    Same ``("done", outcome) | ("row", row_id)`` contract as
    :func:`_probe_chain`."""
    ctx.tail_cache.forget(table, key)
    return _probe_chain(ctx, table, key, log_key, head_extra)


def _probe_chain(ctx, table: str, key: Any, log_key: str,
                 head_extra: Optional[dict]) -> tuple[str, Any]:
    """Seed path: full-skeleton probe. ``('done', outcome)`` on a case-A
    hit anywhere in the chain, else ``('row', tail row id)``."""
    store = ctx.store
    cache = ctx.tail_cache
    skeleton = daal.load_skeleton(store, table, key, probe_log_key=log_key,
                                  cache=cache)
    if not skeleton.log_hits and not skeleton.exists:
        daal.ensure_head(store, table, key, extra_attrs=head_extra)
        skeleton = daal.load_skeleton(store, table, key,
                                      probe_log_key=log_key, cache=cache)
    if skeleton.log_hits:
        if cache is not None:
            hit_row = next(iter(skeleton.log_hits))
            cache.remember_position(table, key, log_key, hit_row)
        return "done", _only_hit(skeleton)
    return "row", skeleton.tail


def write_op(ctx, table: str, key: Any, value: Any,
             head_extra: Optional[dict] = None) -> None:
    """Unconditional exactly-once write of ``Value``."""
    step = ctx.next_step()
    with ctx.trace("op.write", span_id=f"{ctx.instance_id}#{step}",
                   step=step, table=table):
        log_key = encode(ctx.instance_id, step)
        store = ctx.store
        cache = ctx.tail_cache
        ctx.crash_point(f"write:{step}:start")
        status, payload, from_cache = _fast_start(ctx, table, key,
                                                  log_key, head_extra)
        if status == "done":
            return  # case A
        row_id = payload
        capacity = ctx.config.row_log_capacity
        case_b = daal.case_b_condition(log_key, capacity)
        success_updates = [Set("Value", value),
                           *_log_write_updates(log_key, True)]
        for _ in range(_MAX_CHAIN_STEPS):
            ctx.crash_point(f"write:{step}:try:{row_id}")
            try:
                store.update(
                    table, (key, row_id),
                    success_updates,
                    condition=case_b)
                if cache is not None:
                    cache.note_logged_write(table, key, row_id, log_key)
                ctx.crash_point(f"write:{step}:done")
                return  # case B
            except ConditionFailed:
                pass
            row = daal.read_row(store, table, key, row_id)
            if row is None:
                if not from_cache:
                    raise BeldiError(
                        f"row {row_id} vanished during write")
                from_cache = False
                status, payload = _reprobe_after_vanish(
                    ctx, table, key, log_key, head_extra)
                if status == "done":
                    return
                row_id = payload
                continue
            from_cache = False
            if log_key in (row.get("RecentWrites") or {}):
                if cache is not None:
                    cache.remember_position(table, key, log_key, row_id)
                return  # case A
            if "NextRow" not in row:
                row_id = daal.append_row(store, table, key, row,
                                         ctx.fresh_row_id(),
                                         cache=cache)  # case D
            else:
                row_id = row["NextRow"]  # case C
        raise BeldiError(
            "write did not terminate; chain unreasonably long")


# ---------------------------------------------------------------------------
# conditional write (Fig. 17)
# ---------------------------------------------------------------------------

def cond_write_op(ctx, table: str, key: Any,
                  condition: Condition,
                  value: Any = None,
                  set_value: bool = True,
                  extra_updates: Sequence[UpdateAction] = (),
                  head_extra: Optional[dict] = None) -> bool:
    """Exactly-once conditional write; returns the condition's outcome.

    With ``set_value`` the success path sets ``Value``; lock acquisition
    and release instead pass ``extra_updates`` mutating ``LockOwner``
    (§6.1 stores lock ownership in the same rows, logged the same way).
    The logged outcome (True/False) is what replays return — including the
    B2 path that merely records a false condition.
    """
    step = ctx.next_step()
    with ctx.trace("op.cond_write", span_id=f"{ctx.instance_id}#{step}",
                   step=step, table=table):
        log_key = encode(ctx.instance_id, step)
        store = ctx.store
        cache = ctx.tail_cache
        ctx.crash_point(f"condwrite:{step}:start")
        status, payload, from_cache = _fast_start(ctx, table, key,
                                                  log_key, head_extra)
        if status == "done":
            return bool(payload)  # case A
        row_id = payload
        capacity = ctx.config.row_log_capacity
        success_updates: list[UpdateAction] = []
        if set_value:
            success_updates.append(Set("Value", value))
        success_updates.extend(extra_updates)
        case_b = daal.case_b_condition(log_key, capacity)
        success_condition = And(condition, case_b)
        success_updates.extend(_log_write_updates(log_key, True))
        failure_updates = _log_write_updates(log_key, False)
        for _ in range(_MAX_CHAIN_STEPS):
            ctx.crash_point(f"condwrite:{step}:try:{row_id}")
            try:
                store.update(
                    table, (key, row_id),
                    success_updates,
                    condition=success_condition)
                if cache is not None:
                    cache.note_logged_write(table, key, row_id, log_key)
                ctx.crash_point(f"condwrite:{step}:done")
                return True  # case B1
            except ConditionFailed:
                pass
            # The serialization point is the attempt above: recording
            # False here is valid even if the user condition has become
            # true since (Appendix A).
            try:
                store.update(
                    table, (key, row_id),
                    failure_updates,
                    condition=case_b)
                if cache is not None:
                    cache.note_logged_write(table, key, row_id, log_key)
                ctx.crash_point(f"condwrite:{step}:done")
                return False  # case B2
            except ConditionFailed:
                pass
            row = daal.read_row(store, table, key, row_id)
            if row is None:
                if not from_cache:
                    raise BeldiError(
                        f"row {row_id} vanished during condWrite")
                from_cache = False
                status, payload = _reprobe_after_vanish(
                    ctx, table, key, log_key, head_extra)
                if status == "done":
                    return bool(payload)
                row_id = payload
                continue
            from_cache = False
            writes = row.get("RecentWrites") or {}
            if log_key in writes:
                if cache is not None:
                    cache.remember_position(table, key, log_key, row_id)
                return bool(writes[log_key])  # case A
            if "NextRow" not in row:
                row_id = daal.append_row(store, table, key, row,
                                         ctx.fresh_row_id(),
                                         cache=cache)  # case D
            else:
                row_id = row["NextRow"]  # case C
        raise BeldiError(
            "condWrite did not terminate; chain unreasonably long")


def _only_hit(skeleton: daal.Skeleton) -> bool:
    outcome = next(iter(skeleton.log_hits.values()))
    return bool(outcome)
