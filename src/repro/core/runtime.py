"""The Beldi runtime: SSF registration and the instance lifecycle.

``BeldiRuntime`` wires the substrates together (kernel, store, platform)
and wraps every registered SSF handler with the protocol from §3.3/§4.5:

1. resolve the instance id (caller-assigned, or the platform request id
   for workflow roots) and ensure the intent record,
2. short-circuit if the intent is already done (re-issuing the callback),
3. run the user handler with a :class:`BeldiContext` — every operation
   inside replays from logs on re-execution,
4. deliver the result to the caller via the callback, and only then
5. mark the intent done.

The same wrapper dispatches the auxiliary message kinds: synchronous and
asynchronous callbacks, async registrations (Fig. 20), and transaction
Commit/Abort signals (§6.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.core import intents, invoke
from repro.core.config import BeldiConfig
from repro.core.context import BeldiContext
from repro.core.env import BeldiEnv
from repro.core.errors import TxnAborted
from repro.core.tailcache import TailCache
from repro.core.txn import (
    ABORT,
    COMMIT,
    TxnContext,
    propagate_signal,
    resolve_local,
)
from repro.kvstore import (
    KVStore,
    KernelTimeSource,
    ReplicaGroup,
    ReplicatedStore,
    ShardedStore,
)
from repro.kvstore.faults import FaultPolicy
from repro.platform import PlatformConfig, ServerlessPlatform
from repro.platform.context import InvocationContext
from repro.platform.errors import (
    FunctionCrashed,
    FunctionTimeout,
    TooManyRequests,
)
from repro.sim.kernel import SimKernel
from repro.sim.latency import LatencyModel
from repro.sim.randsrc import RandomSource

UserHandler = Callable[[BeldiContext, Any], Any]


@dataclass
class SSFDefinition:
    name: str
    handler: UserHandler
    env: BeldiEnv


class BeldiRuntime:
    """Wires kernel + store + platform and hosts SSFs."""

    def __init__(self, kernel: Optional[SimKernel] = None,
                 seed: int = 0,
                 latency_scale: float = 0.0,
                 config: Optional[BeldiConfig] = None,
                 platform_config: Optional[PlatformConfig] = None,
                 store: Optional[KVStore] = None,
                 platform: Optional[ServerlessPlatform] = None,
                 shards: int = 1,
                 shard_capacity: Optional[int] = None,
                 replicas: int = 1,
                 read_consistency: Optional[str] = None,
                 replication_lag_scale: float = 1.0,
                 store_faults: Optional[FaultPolicy] = None,
                 fault_timeline=None,
                 async_io: Optional[bool] = None,
                 batch_log_writes: Optional[bool] = None,
                 elastic: Optional[bool] = None,
                 observability: Optional[bool] = None,
                 resilience: Optional[bool] = None,
                 env_prefix: str = "") -> None:
        """``shards > 1`` partitions storage across that many simulated
        store nodes behind a :class:`~repro.kvstore.ShardedStore` — each
        node with its own latency stream, fault domain, metering, and
        (with ``shard_capacity``) bounded service parallelism. The
        default is the seed's single store; an explicit ``store``
        overrides the knobs.

        ``replicas > 1`` wraps every shard in a
        :class:`~repro.kvstore.ReplicaGroup` of one leader plus
        ``replicas - 1`` followers behind a
        :class:`~repro.kvstore.ReplicatedStore`: writes log-ship to
        followers with bounded lag (``replication_lag_scale`` scales the
        sampled ``repl.ship`` delay; ``0.0`` makes followers current),
        and eventually consistent reads route to followers at DynamoDB's
        half-price read rate. ``replicas=1`` (default) builds exactly
        the unreplicated store — bit-for-bit the prior behavior.

        ``read_consistency`` (``"strong"``/``"eventual"``) sets
        :attr:`BeldiConfig.read_consistency`: whether the staleness-
        tolerant read paths (:meth:`BeldiContext.read_eventual`, the
        GC's first-pass scan) actually go eventual. Protocol reads stay
        strong regardless.

        ``store_faults`` installs one
        :class:`~repro.kvstore.faults.FaultPolicy` on every store node
        and replica group (throttling, latency spikes, and — with
        ``leader_crash_probability`` — injected leader failovers).

        ``fault_timeline`` installs one
        :class:`~repro.kvstore.faults.FaultTimeline` — *scheduled*
        nemesis faults (outage windows, partitions, gray slowness,
        error bursts) pinned to virtual time — on every store node and
        replica group. Orthogonal to ``store_faults``: the policy is
        probabilistic background weather, the timeline is a scripted
        incident.

        ``resilience`` overrides :attr:`BeldiConfig.resilience`
        (default *on*): the retry/backoff/deadline/breaker layer
        (``repro.resilience``, ``docs/resilience.md``) wrapped around
        every env's store facade. Fault-free it makes no draws, no
        sleeps, and no extra store traffic, so goldens are bit-for-bit
        identical either way.

        ``async_io``/``batch_log_writes`` override the corresponding
        :class:`BeldiConfig` flags (both default *on* there): overlapped
        store round trips and coalesced idempotent log writes. With both
        ``False`` the runtime reproduces the sequential-I/O behavior
        bit-for-bit (pinned by ``tests/core/test_async_io_flags.py``).

        ``elastic`` overrides :attr:`BeldiConfig.elastic` (default *on*):
        on a multi-shard store the runtime watches per-shard load and
        live-migrates hot DAAL chains between shards when skew exceeds
        the configured load ratio (``docs/sharding.md``). Single-shard
        runtimes have nothing to balance; and below the detector's
        trigger thresholds an elastic runtime is bit-for-bit the static
        one (pinned by ``tests/core/test_elasticity_flags.py``).

        ``observability`` overrides :attr:`BeldiConfig.observability`
        (default *off*): virtual-time tracing + unified metrics
        (``repro.obs``, ``docs/observability.md``). Pure recording —
        behavior and virtual time are identical either way, and the
        off-state never constructs the observability objects at all.
        """
        self.kernel = kernel or SimKernel(seed=seed)
        self.rand = RandomSource(seed, "beldi")
        self.config = config or BeldiConfig()
        overrides = {}
        if read_consistency is not None:
            if read_consistency not in ("strong", "eventual"):
                raise ValueError(
                    f"read_consistency must be 'strong' or 'eventual', "
                    f"got {read_consistency!r}")
            overrides["read_consistency"] = read_consistency
        if async_io is not None:
            overrides["async_io"] = bool(async_io)
        if batch_log_writes is not None:
            overrides["batch_log_writes"] = bool(batch_log_writes)
        if elastic is not None:
            overrides["elastic"] = bool(elastic)
        if observability is not None:
            overrides["observability"] = bool(observability)
        if resilience is not None:
            overrides["resilience"] = bool(resilience)
        if overrides:
            # Copy before overriding: the caller may share one config
            # across runtimes, and the overrides are per-runtime.
            self.config = dataclasses.replace(self.config, **overrides)
        latency = LatencyModel(self.rand.child("latency"),
                               scale=latency_scale)
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")

        def build_node(i: int, suffix: str = "") -> KVStore:
            return KVStore(
                time_source=KernelTimeSource(self.kernel),
                latency=LatencyModel(
                    self.rand.child(f"latency-shard{i}{suffix}"),
                    scale=latency_scale),
                rand=self.rand.child(f"store-shard{i}{suffix}"),
                shard_id=i, capacity=shard_capacity,
                faults=store_faults)

        if store is not None:
            self.store = store
        elif replicas > 1:
            groups = []
            for i in range(shards):
                leader = build_node(i)
                followers = [build_node(i, suffix=f"r{j}")
                             for j in range(1, replicas)]
                # The group's own latency model (repl.ship lag,
                # repl.failover cost) runs at scale 1 regardless of the
                # global latency_scale: replication lag is a property of
                # the subsystem, toggled by replication_lag_scale alone,
                # so zero-latency test runtimes still exhibit real
                # staleness and failover windows.
                groups.append(ReplicaGroup(
                    leader, followers,
                    rand=self.rand.child(f"repl-shard{i}"),
                    latency=LatencyModel(
                        self.rand.child(f"repl-latency-shard{i}")),
                    faults=store_faults,
                    lag_scale=replication_lag_scale,
                    async_io=self.config.async_io))
            self.store = ReplicatedStore(groups,
                                         async_io=self.config.async_io)
        elif shards > 1:
            self.store = ShardedStore(
                [build_node(i) for i in range(shards)],
                async_io=self.config.async_io)
        else:
            self.store = KVStore(
                time_source=KernelTimeSource(self.kernel),
                latency=latency, rand=self.rand.child("store"),
                capacity=shard_capacity, faults=store_faults)
        if fault_timeline is not None:
            self._install_timeline(self.store, fault_timeline)
        self.fault_timeline = fault_timeline
        #: Hot-shard elasticity (docs/sharding.md): a detector+migrator
        #: pair on multi-shard stores. ``None`` when the flag is off or
        #: there is nothing to balance — every elastic hook then costs
        #: one attribute check.
        self.elasticity = None
        if (self.config.elastic
                and isinstance(self.store, ShardedStore)
                and self.store.n_shards > 1):
            from repro.kvstore.rebalance import (ChainMigrator,
                                                 ElasticityController)
            migrator = ChainMigrator(self.store,
                                     async_io=self.config.async_io,
                                     on_moved=self._chain_moved)
            self.elasticity = ElasticityController(
                self.store, migrator,
                check_every=self.config.elastic_check_every,
                min_window=self.config.elastic_min_window,
                load_ratio=self.config.elastic_load_ratio,
                max_moves=self.config.elastic_max_moves,
                tolerance=self.config.elastic_tolerance)
        #: Virtual-time tracing + metrics (``repro.obs``). ``None`` when
        #: the flag is off — every hook then costs one attribute check.
        #: Runtimes sharing one store (the concurrent DST harness) share
        #: one :class:`~repro.obs.Observability`, so the trace
        #: interleaves all of them on the one kernel clock.
        self.obs = None
        if self.config.observability:
            from repro.obs import Observability
            self.obs = getattr(self.store, "obs", None) or Observability(
                self.kernel)
            self.obs.attach_store(self.store)
            if getattr(self.kernel, "tracer", None) is None:
                self.kernel.tracer = self.obs.tracer
        #: Retry/backoff/deadline/breaker layer (``repro.resilience``).
        #: ``None`` when the flag is off; otherwise one shared
        #: :class:`~repro.resilience.ResilienceState` plus one shared
        #: :class:`~repro.resilience.ResilientStore` facade handed to
        #: every env this runtime creates. ``runtime.store`` stays the
        #: *raw* store — benches, elasticity, and observability attach
        #: beneath the wrapper.
        self.resilience = None
        self._resilient_store = None
        if self.config.resilience:
            from repro.resilience import (ResilienceState, ResilientStore,
                                          RetryPolicy)
            self.resilience = ResilienceState(
                self.kernel, self.rand.child("resilience"),
                RetryPolicy(self.config.retry_max_attempts,
                            self.config.retry_base_backoff,
                            self.config.retry_max_backoff,
                            self.config.retry_jitter),
                breaker_threshold=self.config.breaker_threshold,
                breaker_cooldown=self.config.breaker_cooldown,
                obs=self.obs)
            self._resilient_store = ResilientStore(
                self.store, self.resilience,
                degraded_reads=self.config.degraded_reads)
        self.platform = platform or ServerlessPlatform(
            self.kernel, rand=self.rand.child("platform"),
            latency=latency, config=platform_config)
        self._ids = self.rand.child("ids")
        #: Prepended to every env's *storage* name (never to SSF names).
        #: Lets several runtimes share one store without their
        #: same-named envs adopting each other's intent/log tables —
        #: the concurrent DST harness hosts travel + movie this way.
        self.env_prefix = env_prefix
        self.envs: dict[str, BeldiEnv] = {}
        self.ssfs: dict[str, SSFDefinition] = {}
        self.collector_handles: list[dict] = []
        #: §4.4 fast path: chain-position memory shared by every SSF this
        #: runtime hosts. Always constructed; the ``tail_cache`` config
        #: flag decides whether any layer consults it.
        self.tail_cache = TailCache()
        #: Locally resolved intents: instance id -> {"ret", "caller"}.
        #: Lets re-delivered/duplicate invocations skip the intent-table
        #: read entirely. Only ever populated *after* mark_done succeeds,
        #: so a cache hit implies the store agrees the work is complete.
        self._intent_cache: dict[str, dict] = {}
        self._intent_cache_limit = 4096

    # -- identities ----------------------------------------------------------
    def fresh_uuid(self) -> str:
        return self._ids.uuid()

    # -- nemesis timeline ------------------------------------------------------
    @staticmethod
    def _install_timeline(store, timeline) -> None:
        """Install one FaultTimeline on every layer that consults it:
        leaf nodes (outages/bursts/gray) and replica groups (partition
        shipping stalls). Duck-typed so plain, sharded, and replicated
        stores all work."""
        store.timeline = timeline
        for node in getattr(store, "nodes", ()):
            node.timeline = timeline
            for member in getattr(node, "nodes", ()):
                member.timeline = timeline

    # -- elasticity ------------------------------------------------------------
    def _chain_moved(self, table: str, key: Any) -> None:
        """A chain migrated between shards: drop its remembered tail.

        The cached row ids themselves stay valid (the copy is verbatim
        and routing follows the forward), but a moved chain starts cold
        on purpose — the next operation re-validates placement through a
        full probe rather than trusting memory across a reshard.
        """
        if self.config.tail_cache:
            self.tail_cache.note_migrated(table, key)

    # -- registration ----------------------------------------------------------
    def create_env(self, name: str, tables: Iterable[str] = (),
                   storage_mode: str = "daal") -> BeldiEnv:
        """Create a sovereignty domain (one intent/log/table set, §2.2)."""
        if name in self.envs:
            raise ValueError(f"env {name!r} already exists")
        # Envs see the resilient facade (when the flag is on); the raw
        # store stays at ``runtime.store`` for benches and substrates.
        env_store = self._resilient_store or self.store
        env = BeldiEnv(env_store, self.config, self.env_prefix + name,
                       tables, storage_mode=storage_mode,
                       tail_cache=(self.tail_cache
                                   if self.config.tail_cache else None))
        self.envs[name] = env
        return env

    def register_ssf(self, name: str, handler: UserHandler,
                     env: Optional[BeldiEnv] = None,
                     tables: Iterable[str] = (),
                     storage_mode: str = "daal") -> SSFDefinition:
        """Register an SSF; creates a private env unless one is shared."""
        if env is None:
            env = self.create_env(name, tables, storage_mode=storage_mode)
        ssf = SSFDefinition(name, handler, env)
        self.ssfs[name] = ssf
        self.platform.register(name, self._make_platform_handler(ssf))
        return ssf

    # -- collectors -----------------------------------------------------------------
    def start_collectors(self, ic_period: float = 60_000.0,
                         gc_period: float = 60_000.0,
                         envs: Optional[Iterable[BeldiEnv]] = None) -> None:
        """Register and schedule the IC/GC pair for each env (§3.3, §5)."""
        from repro.core.collector import make_intent_collector
        from repro.core.gc import make_garbage_collector
        for env in (envs if envs is not None else self.envs.values()):
            ic_name = f"{env.name}.ic"
            gc_name = f"{env.name}.gc"
            if not self.platform.is_registered(ic_name):
                self.platform.register(
                    ic_name, make_intent_collector(self, env))
                self.platform.register(
                    gc_name, make_garbage_collector(self, env))
            self.collector_handles.append(
                self.platform.add_timer(ic_name, ic_period))
            self.collector_handles.append(
                self.platform.add_timer(gc_name, gc_period))

    def stop_collectors(self) -> None:
        self.platform.stop_timers()

    # -- client entry ------------------------------------------------------------------
    def client_call(self, ssf_name: str, payload: Any = None) -> Any:
        """Issue a workflow request through the gateway (from a process)."""
        return self.platform.client_request(
            ssf_name, {"kind": "call", "input": payload})

    def run_workflow(self, ssf_name: str, payload: Any = None,
                     until: Optional[float] = None) -> Any:
        """Drive the kernel through one client request (test/demo sugar)."""
        box: dict[str, Any] = {}

        def client() -> None:
            box["result"] = self.client_call(ssf_name, payload)

        proc = self.kernel.spawn(client, name="client")
        self.kernel.run(until=until)
        if proc.error is not None:
            raise proc.error
        return box.get("result")

    # -- the instance lifecycle -----------------------------------------------------------
    def _make_platform_handler(self, ssf: SSFDefinition):
        def handler(platform_ctx: InvocationContext, payload: Any) -> Any:
            payload = payload or {}
            kind = payload.get("kind", "call")
            if kind == "call":
                return self._handle_call(ssf, platform_ctx, payload)
            if kind == "sync_callback":
                return self._handle_callback(ssf, payload,
                                             payload.get("result"))
            if kind == "async_callback":
                return self._handle_callback(ssf, payload,
                                             invoke.ASYNC_ACK)
            if kind == "async_register":
                return self._handle_async_register(ssf, platform_ctx,
                                                   payload)
            if kind == "txn_signal":
                return self._handle_txn_signal(ssf, platform_ctx, payload)
            raise ValueError(f"unknown payload kind {kind!r}")

        return handler

    def _remember_done(self, instance_id: str, ret: Any,
                       caller: Optional[dict]) -> None:
        """Record a locally resolved intent (bounded FIFO eviction)."""
        if not self.config.tail_cache:
            return
        if len(self._intent_cache) >= self._intent_cache_limit:
            for stale in list(self._intent_cache)[
                    :self._intent_cache_limit // 2]:
                del self._intent_cache[stale]
        self._intent_cache[instance_id] = {"ret": ret, "caller": caller}

    def _handle_call(self, ssf: SSFDefinition,
                     platform_ctx: InvocationContext, payload: dict) -> Any:
        if self.obs is None:
            return self._run_call(ssf, platform_ctx, payload)
        instance_id = payload.get("instance_id") or platform_ctx.request_id
        caller = payload.get("caller")
        # A sync callee's whole execution sits inside the caller's
        # invoke-step span; the two run on different worker threads, so
        # the edge is an explicit parent reference, not stack nesting.
        parent = (f"{caller['instance_id']}#{caller['step']}"
                  if caller and not payload.get("async") else None)
        with self.obs.tracer.span(f"request:{ssf.name}", cat="request",
                                  span_id=instance_id, parent_id=parent,
                                  function=ssf.name,
                                  invocation=platform_ctx.invocation_index):
            return self._run_call(ssf, platform_ctx, payload)

    def _run_call(self, ssf: SSFDefinition,
                  platform_ctx: InvocationContext, payload: dict) -> Any:
        if (self.resilience is None
                or self.config.request_deadline is None):
            return self._run_call_body(ssf, platform_ctx, payload)
        # Per-request budget, measured from *this* invocation's start —
        # an IC re-run gets a fresh budget, so recovery always finishes
        # and exactly-once is never sacrificed to the deadline.
        token = self.resilience.push_deadline(
            self.kernel.now + self.config.request_deadline)
        try:
            return self._run_call_body(ssf, platform_ctx, payload)
        finally:
            self.resilience.pop_deadline(token)

    def _run_call_body(self, ssf: SSFDefinition,
                       platform_ctx: InvocationContext,
                       payload: dict) -> Any:
        env = ssf.env
        instance_id = payload.get("instance_id") or platform_ctx.request_id
        is_async = bool(payload.get("async"))
        caller = payload.get("caller")
        txn_payload = payload.get("txn")
        if self.config.tail_cache:
            # Intent-status fast path: this runtime already saw the
            # instance complete, so the duplicate delivery can be answered
            # (and the caller re-notified) without touching the store.
            cached = self._intent_cache.get(instance_id)
            if cached is not None:
                self.tail_cache.stats.intent_hits += 1
                if is_async:
                    return None
                if cached.get("caller"):
                    self._issue_callback(platform_ctx, cached["caller"],
                                         instance_id, cached["ret"])
                return cached["ret"]
        if is_async:
            # Fig. 20 stub: run only if registered and unfinished.
            intent = intents.get_intent(env, instance_id)
            if intent is None or intent.get("Done"):
                return None
        else:
            intent, _created = intents.ensure_intent(
                env, instance_id, ssf.name, payload.get("input"),
                self.kernel.now, is_async, caller, txn_payload)
            if intent.get("Done"):
                # Late duplicate: the work is complete; make sure the
                # caller has the result, then return it.
                ret = intent.get("Ret")
                self._remember_done(instance_id, ret, intent.get("Caller"))
                if intent.get("Caller"):
                    self._issue_callback(platform_ctx, intent["Caller"],
                                         instance_id, ret)
                return ret
        platform_ctx.crash_point("intent:ensured")
        stored_txn = intent.get("Txn")
        txn_ctx = (TxnContext.from_payload(stored_txn)
                   if stored_txn else None)
        ctx = BeldiContext(self, ssf.name, env, platform_ctx, instance_id,
                           intent, txn=txn_ctx)
        aborted = False
        try:
            ret = ssf.handler(ctx, intent.get("Args"))
        except TxnAborted:
            # A non-owner dying under wait-die: report the abort outcome
            # to the caller; the owning SSF coordinates the rollback.
            aborted = True
            ret = None
        platform_ctx.crash_point("body:done")
        result = invoke.wrap_result(ret, aborted)
        effective_caller = intent.get("Caller") or caller
        if effective_caller and not is_async:
            self._issue_callback(platform_ctx, effective_caller,
                                 instance_id, result)
            platform_ctx.crash_point("callback:done")
        intents.mark_done(env, instance_id, result)
        self._remember_done(instance_id, result, effective_caller)
        platform_ctx.crash_point("done:marked")
        return result

    def _issue_callback(self, platform_ctx: InvocationContext,
                        caller: dict, callee_id: str, result: Any) -> None:
        """Deliver the result into the caller's invoke log (at-least-once)."""
        payload = {
            "kind": "sync_callback",
            "log_instance": caller["instance_id"],
            "log_step": caller["step"],
            "callee_id": callee_id,
            "result": result,
        }
        self._retry_invoke(platform_ctx, caller["ssf"], payload)

    def _retry_invoke(self, platform_ctx: InvocationContext, target: str,
                      payload: dict) -> Any:
        attempts = 0
        while True:
            try:
                return platform_ctx.sync_invoke(target, payload)
            except (FunctionCrashed, FunctionTimeout, TooManyRequests):
                attempts += 1
                if attempts > self.config.invoke_retry_limit:
                    raise
                self.kernel.sleep(
                    self.config.invoke_retry_backoff * attempts)

    def _handle_callback(self, ssf: SSFDefinition, payload: dict,
                         result: Any) -> str:
        recorded = invoke.record_callback(
            ssf.env, ssf.env.store, payload["log_instance"],
            payload["log_step"], payload["callee_id"], result)
        return "recorded" if recorded else "ignored"

    def _handle_async_register(self, ssf: SSFDefinition,
                               platform_ctx: InvocationContext,
                               payload: dict) -> str:
        """Fig. 20 registration: log the intent, ack into the caller."""
        env = ssf.env
        instance_id = payload["instance_id"]
        caller = payload.get("caller")
        intents.ensure_intent(env, instance_id, ssf.name,
                              payload.get("input"), self.kernel.now,
                              True, caller, None)
        platform_ctx.crash_point("async-register:intent")
        if caller:
            ack = {
                "kind": "async_callback",
                "log_instance": caller["instance_id"],
                "log_step": caller["step"],
                "callee_id": instance_id,
            }
            self._retry_invoke(platform_ctx, caller["ssf"], ack)
        return "registered"

    def _handle_txn_signal(self, ssf: SSFDefinition,
                           platform_ctx: InvocationContext,
                           payload: dict) -> str:
        """Commit/Abort arriving along a workflow edge (§6.2).

        Idempotent: resolve this SSF's local state for the transaction,
        then recurse to the callees recorded in the instance's invoke log.
        """
        env = ssf.env
        instance_id = payload["instance_id"]
        txn_payload = payload["txn"]
        mode = txn_payload.get("mode")
        if mode not in (COMMIT, ABORT):
            raise ValueError(f"bad txn_signal mode {mode!r}")
        resolve_local(env, txn_payload["id"], mode,
                      cache=(self.tail_cache
                             if self.config.tail_cache else None),
                      batch=self.config.batch_reads,
                      async_io=self.config.async_io)
        # Recurse using a minimal context (no intent bookkeeping needed:
        # signals are at-least-once and idempotent).
        intent = intents.get_intent(env, instance_id) or {
            "InstanceId": instance_id, "StartTime": 0.0}
        ctx = BeldiContext(self, ssf.name, env, platform_ctx, instance_id,
                           intent)
        propagate_signal(ctx, instance_id, txn_payload)
        return "resolved"
