"""Step-function workflows (§2.1, §6.2 "Supporting step functions").

The paper's second composition mechanism besides driver functions: a
declarative graph of SSFs that the provider schedules. Here a step
function compiles to a generated *driver SSF* running on Beldi — which
gives the orchestration itself exactly-once semantics for free (every
task invocation goes through the invoke log), and lets a
:class:`TxnScope` reproduce Fig. 21's begin/end topology: tasks inside
the scope share one transaction context, an abort anywhere propagates to
the scope's end, and the commit/abort decision then flows back over the
subgraph (the paper's 2PC-over-workflow-edges).

State types
-----------
``Task(name, ssf)``
    Invoke one SSF. Its payload is built by ``payload`` (a function of
    the accumulated results dict) or defaults to the workflow input.
``Parallel(branches)``
    Run several state lists concurrently and join (uses
    ``ctx.parallel_invoke`` under the hood for leaf fan-outs).
``TxnScope(body)``
    Execute ``body`` inside one transaction (Fig. 21's begin/end pair).

Results accumulate in a dict keyed by task name; the driver returns it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.core.errors import TxnAborted


@dataclass
class Task:
    """One SSF invocation in the workflow."""

    name: str
    ssf: str
    payload: Optional[Callable[[dict], Any]] = None

    def build_payload(self, results: dict) -> Any:
        if self.payload is not None:
            return self.payload(results)
        return results.get("__input__")


@dataclass
class Parallel:
    """Fan-out over branches; each branch is a list of states."""

    branches: Sequence[Sequence["State"]]


@dataclass
class TxnScope:
    """A transactional subgraph (the begin/end SSF pair of Fig. 21)."""

    body: Sequence["State"]
    on_abort: Optional[str] = None  # result key receiving the outcome


State = Union[Task, Parallel, TxnScope]


@dataclass
class StepFunction:
    """A named workflow over SSF identifiers."""

    name: str
    states: Sequence[State]
    ssf_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.ssf_count = _count_tasks(self.states)


def _count_tasks(states: Sequence[State]) -> int:
    total = 0
    for state in states:
        if isinstance(state, Task):
            total += 1
        elif isinstance(state, Parallel):
            total += sum(_count_tasks(b) for b in state.branches)
        elif isinstance(state, TxnScope):
            total += _count_tasks(state.body)
    return total


def _execute_states(ctx, states: Sequence[State], results: dict) -> None:
    for state in states:
        if isinstance(state, Task):
            payload = state.build_payload(results)
            results[state.name] = ctx.sync_invoke(state.ssf, payload)
        elif isinstance(state, Parallel):
            _execute_parallel(ctx, state, results)
        elif isinstance(state, TxnScope):
            _execute_txn_scope(ctx, state, results)
        else:
            raise TypeError(f"unknown state {state!r}")


def _execute_parallel(ctx, state: Parallel, results: dict) -> None:
    simple = all(len(branch) == 1 and isinstance(branch[0], Task)
                 for branch in state.branches)
    if simple:
        tasks = [branch[0] for branch in state.branches]
        calls = [(task.ssf, task.build_payload(results))
                 for task in tasks]
        outputs = ctx.parallel_invoke(calls)
        for task, output in zip(tasks, outputs):
            results[task.name] = output
    else:
        # Nested branches run sequentially (deterministic order); the
        # leaf fan-outs inside still parallelize.
        for branch in state.branches:
            _execute_states(ctx, branch, results)


def _execute_txn_scope(ctx, state: TxnScope, results: dict) -> None:
    with ctx.transaction() as tx:
        _execute_states(ctx, state.body, results)
    if state.on_abort is not None:
        results[state.on_abort] = tx.outcome
    elif tx.aborted:
        raise TxnAborted("step-function transaction scope aborted")


def make_driver(step_function: StepFunction):
    """Compile the workflow to a Beldi SSF handler."""

    def driver(ctx, payload: Any) -> dict:
        results: dict = {"__input__": payload}
        _execute_states(ctx, step_function.states, results)
        results.pop("__input__", None)
        return results

    return driver


def register_step_function(runtime, step_function: StepFunction):
    """Register the compiled driver on a runtime; returns its SSF."""
    return runtime.register_ssf(step_function.name,
                                make_driver(step_function))
