"""The DAAL fast path: remembering chain positions (§4.4).

The seed implementation rebuilds every item's chain skeleton with a fresh
projected ``query`` on every single read, write, and lock attempt. That
is sound but expensive: the query pays request units proportional to the
partition size (orphans included), and at scale the chain walk dominates
the hot path. §4.4 of the paper observes that Beldi can *remember chain
positions* and start from them instead of from ``HEAD``.

:class:`TailCache` is that memory, generalized to a per-runtime cache
with two maps:

``tails``
    ``(table, key) -> TailEntry(row_id, log_size)`` — the most recently
    observed reachable tail of the item's chain. Reads, writes, lock
    operations, and transaction flushes go straight to this row with one
    conditional ``get``/``update`` and fall back to the full skeleton
    traversal only when the cached row turns out stale (it chained, was
    disconnected by the GC, or was deleted).

``positions``
    ``(table, key, log_key) -> row_id`` — where each logged operation's
    write-log entry lives. Replayed operations jump straight to their
    entry with one ``get`` instead of probing the whole chain.

Soundness
---------

The cache never stores *values* — every fast-path operation re-reads its
target row from the (linearizable) store, so a hit can never surface a
stale value; staleness only costs an extra fallback traversal. Position
entries are recorded in the same scheduling step as the store mutation
they describe (no yield point in between), so a recorded position is
always real, and a missing position falls back to the sound slow path.

Skipping the initial whole-chain replay probe on a position miss relies
on one assumption: every operation against the store flows through this
runtime, so an entry that was never recorded here was never written.
That holds in this single-account simulation (the runtime hosts every
SSF, the IC, and the GC). A multi-host deployment would scope the
position memory per execution, exactly as §4.4's per-Lambda memory does.

The position map is bounded. Evicting an entry would silently break the
"miss means never logged" premise, so eviction *taints* the evicted
entries' instances instead: a tainted instance's position misses are no
longer trusted, and its operations take the full-probe slow path (seed
behavior) forever after. Correctness never depends on the bound.

Invariants maintained by callers:

- only rows observed *reachable* (a skeleton tail, a case-B target, an
  ``append_row`` winner) are ever remembered as tails — never orphan
  candidates;
- a detected-stale entry is evicted (or overwritten) before re-probing,
  so fallback loops terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.logkeys import instance_of as _instance_of


@dataclass(slots=True)
class TailEntry:
    """One remembered tail: the row id and the last-seen log size.

    ``log_size`` is advisory bookkeeping (``None`` when unknown) — kept
    for observability and cheap freshness heuristics, never consulted to
    skip a staleness check or a conditional write (the store's ``LogSize``
    is a GC-preserved high-water mark, so a cached "full" can be stale
    the other way: pruned tails accept writes again).
    """

    row_id: str
    log_size: Optional[int] = None


@dataclass(slots=True)
class TailCacheStats:
    """Observability counters (ablation benchmarks report these)."""

    tail_hits: int = 0
    tail_misses: int = 0
    tail_fallbacks: int = 0   # cached row was stale; traversal repaired it
    position_hits: int = 0
    position_fallbacks: int = 0
    intent_hits: int = 0

    def snapshot(self) -> dict:
        return {
            "tail_hits": self.tail_hits,
            "tail_misses": self.tail_misses,
            "tail_fallbacks": self.tail_fallbacks,
            "position_hits": self.position_hits,
            "position_fallbacks": self.position_fallbacks,
            "intent_hits": self.intent_hits,
        }


class TailCache:
    """Per-runtime memory of chain tails and log-entry positions."""

    # No lock: the simulation kernel schedules cooperatively (one
    # process runs at a time), so cache accesses never interleave —
    # same as the runtime's _intent_cache. A preemptive deployment
    # would need the whole check-then-act fast path synchronized, not
    # just these maps.
    def __init__(self, max_positions: int = 65_536) -> None:
        self._tails: dict[tuple, TailEntry] = {}
        self._positions: dict[tuple, str] = {}
        self._tainted: set = set()   # instances with evicted positions
        self._max_positions = max_positions
        self.stats = TailCacheStats()

    # -- tails -----------------------------------------------------------------
    def tail_of(self, table: str, key: Any) -> Optional[TailEntry]:
        entry = self._tails.get((table, _hashable(key)))
        if entry is None:
            self.stats.tail_misses += 1
            return None
        self.stats.tail_hits += 1
        return TailEntry(entry.row_id, entry.log_size)

    def remember_tail(self, table: str, key: Any, row_id: str,
                      log_size: Optional[int] = None) -> None:
        """Record ``row_id`` as the item's reachable tail.

        Callers must only pass rows they observed reachable; orphan
        candidates must never land here.
        """
        self._tails[(table, _hashable(key))] = TailEntry(row_id, log_size)

    def note_logged_write(self, table: str, key: Any, row_id: str,
                          log_key: str) -> None:
        """A case-B write landed in ``row_id``: bump the remembered log
        size and pin the entry's position in one step."""
        cache_key = (table, _hashable(key))
        entry = self._tails.get(cache_key)
        if entry is not None and entry.row_id == row_id and (
                entry.log_size is not None):
            entry.log_size += 1
        else:
            self._tails[cache_key] = TailEntry(row_id, None)
        self._remember_position(table, key, log_key, row_id)

    def forget(self, table: str, key: Any) -> None:
        """Evict a stale tail (the row chained, dangled, or vanished)."""
        if self._tails.pop((table, _hashable(key)), None) is not None:
            self.stats.tail_fallbacks += 1

    def drop_row(self, table: str, key: Any, row_id: str) -> None:
        """GC deleted ``row_id``: evict it if it is the cached tail."""
        cache_key = (table, _hashable(key))
        entry = self._tails.get(cache_key)
        if entry is not None and entry.row_id == row_id:
            del self._tails[cache_key]

    def note_migrated(self, table: str, key: Any) -> None:
        """The item's chain moved to another shard: start cold.

        Row ids survive a migration verbatim (and routing follows the
        ring's forwarding entry), so the entry is not *wrong* — but a
        reshard is exactly when placement memory should be re-proven,
        so the tail is dropped without counting a fallback. Position
        entries stay: they name rows, not placements, and a position
        miss would otherwise falsely read as "never executed".
        """
        self._tails.pop((table, _hashable(key)), None)

    # -- positions -------------------------------------------------------------
    def position_of(self, table: str, key: Any,
                    log_key: str) -> Optional[str]:
        return self._positions.get((table, _hashable(key), log_key))

    def remember_position(self, table: str, key: Any, log_key: str,
                          row_id: str) -> None:
        self._remember_position(table, key, log_key, row_id)

    def _remember_position(self, table: str, key: Any,
                           log_key: str, row_id: str) -> None:
        cache_key = (table, _hashable(key), log_key)
        if (cache_key not in self._positions
                and len(self._positions) >= self._max_positions):
            # A silently dropped position would turn a later miss into a
            # false "never executed" — so eviction taints the affected
            # instances, pushing their future ops onto the full-probe
            # slow path instead of trusting misses. Evict at least one
            # entry so the bound holds even at max_positions == 1, and
            # taint EVERY instance whose position is dropped.
            evict = max(1, self._max_positions // 2)
            for stale in list(self._positions)[:evict]:
                self._tainted.add(_instance_of(stale[2]))
                del self._positions[stale]
        self._positions[cache_key] = row_id

    def forget_position(self, table: str, key: Any, log_key: str) -> None:
        if self._positions.pop(
                (table, _hashable(key), log_key), None) is not None:
            self.stats.position_fallbacks += 1

    def trusts_miss(self, log_key: str) -> bool:
        """Whether a position miss for this op proves it never executed
        (False once the op's instance had positions evicted)."""
        return _instance_of(log_key) not in self._tainted

    # -- maintenance -----------------------------------------------------------
    def clear(self) -> None:
        """Drop the maps — but keep the soundness contract: dropping a
        recorded position turns a future miss into a false "never
        executed", so every instance with recorded positions is tainted,
        exactly as bulk eviction does."""
        for position_key in self._positions:
            self._tainted.add(_instance_of(position_key[2]))
        self._tails.clear()
        self._positions.clear()

    def __len__(self) -> int:
        return len(self._tails) + len(self._positions)


# Tag sentinels for _hashable's canonical forms. Private object()s (not
# strings) so no genuine key value can ever equal a tag — the encoding
# stays injective even against adversarial tuple keys like
# ("__list__", ...).
_LIST_TAG = object()
_DICT_TAG = object()


def _hashable(key: Any) -> Any:
    """Collision-free hashable stand-in for an item key.

    Unhashable keys (lists/dicts) are converted to a *tagged* canonical
    form rather than a bare ``repr`` string — a bare repr would let the
    distinct keys ``{"a": 1}`` and ``"{'a': 1}"`` collide into one cache
    slot, silently cross-wiring two items' tails and positions. Tuples
    convert element-wise (a tuple key may carry an unhashable part);
    dict items are sorted so two equal dicts built in different
    insertion orders share a slot.
    """
    if isinstance(key, tuple):
        return tuple(_hashable(part) for part in key)
    if isinstance(key, list):
        return (_LIST_TAG, tuple(_hashable(part) for part in key))
    if isinstance(key, dict):
        return (_DICT_TAG, tuple(
            sorted(((k, _hashable(v)) for k, v in key.items()),
                   key=repr)))
    return key
