"""Transactions over SSF workflows (§6): contexts, wait-die locks,
shadow redirection, and the coordinator-free commit/abort protocol.

The isolation level is **opacity**: rigorous two-phase locking means every
transaction — including ones destined to abort — only ever reads values
under locks it holds, so the Figure 12 inconsistent-snapshot infinite loop
cannot occur. Deadlock is prevented with wait-die keyed on intent-creation
timestamps (an SSF cannot wound another instance, §6.2).

Writes inside a transaction are redirected to a **shadow table**: a linked
DAAL keyed by ``"<txn id>|<item key>"`` whose head rows carry ``TxnId`` (a
secondary index the commit phase and the GC use) and ``OrigKey`` (so the
flush knows the real destination). Reads check the transaction's own
shadow first (read-your-writes), then the real table.

Commit/abort propagates along workflow edges: the SSF owning ``begin_tx``
flushes its own shadows, releases its own locks, and then re-invokes each
transactional callee (by its original instance id) with a ``txn_signal``;
each callee does the same and recurses to *its* callees, found in its
invoke log — collectively playing two-phase commit's coordinator (§6.2).
All signal handling is idempotent, so at-least-once delivery suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core import daal, ops
from repro.core.env import SHADOW_TXN_INDEX, BeldiEnv
from repro.core.errors import MisusedApi, TxnAborted
from repro.kvstore import Set, batch_get_all, overlap
from repro.kvstore.expressions import Condition, path

EXECUTE = "execute"
COMMIT = "commit"
ABORT = "abort"

TXN_ID_SEPARATOR = "~tx"


@dataclass
class TxnContext:
    """The per-instance view of one (possibly multi-SSF) transaction."""

    txn_id: str
    start_time: float
    mode: str = EXECUTE
    owner: bool = False
    aborted: bool = False
    # In-memory caches; rebuilt identically on replay because they are
    # filled by deterministic user-code order.
    locked: set = field(default_factory=set)
    written: set = field(default_factory=set)

    def payload(self, mode: Optional[str] = None) -> dict:
        return {"id": self.txn_id, "ts": self.start_time,
                "mode": mode or self.mode}

    @classmethod
    def from_payload(cls, payload: dict, owner: bool = False
                     ) -> "TxnContext":
        return cls(txn_id=payload["id"], start_time=payload["ts"],
                   mode=payload.get("mode", EXECUTE), owner=owner)

    def priority(self) -> tuple:
        """Wait-die rank: smaller = older = wins conflicts."""
        return (self.start_time, self.txn_id)


def owner_instance_of(txn_id: str) -> str:
    """The instance id that created this transaction."""
    return txn_id.split(TXN_ID_SEPARATOR, 1)[0]


def shadow_key(txn_id: str, key: Any) -> str:
    return f"{txn_id}|{key}"


def lock_ref(short: str, key: Any) -> str:
    return f"{short}|{key}"


# ---------------------------------------------------------------------------
# Execute-mode operations
# ---------------------------------------------------------------------------

def tx_lock(ctx, short: str, key: Any) -> None:
    """2PL acquisition with wait-die (Fig. 11).

    The acquisition is an exactly-once conditional write on the item's
    real DAAL (lock state lives with the data, §6.1); re-executions replay
    the logged outcome of every attempt, so the retry loop is
    deterministic. Losing to an older transaction raises
    :class:`TxnAborted` (the "die" branch).
    """
    txn = ctx.txn
    if (short, key) in txn.locked:
        return
    table = ctx.env.data_table(short)
    owner_update = [Set("LockOwner", {"Id": txn.txn_id,
                                      "Ts": txn.start_time})]
    attempts = 0
    while True:
        acquired = ops.cond_write_op(
            ctx, table, key,
            condition=daal.lock_free_condition(txn.txn_id),
            set_value=False, extra_updates=owner_update)
        if acquired:
            ctx.store.put(ctx.env.lockset_table, {
                "TxnId": txn.txn_id,
                "LockRef": lock_ref(short, key),
                "Table": short,
                "ItemKey": key,
                "OwnerInstance": owner_instance_of(txn.txn_id),
            })
            txn.locked.add((short, key))
            obs = ctx.obs
            if obs is not None:
                obs.metrics.inc("txn.locks_acquired")
            # Schedule-exploration point: the window right after a lock
            # grant is where a conflicting transaction's probe lands.
            ctx.interleave(f"lock:acquired:{short}:{key}")
            return
        holder = ops.read_op(ctx, table, key, attribute="LockOwner")
        if holder == daal.MISSING or not holder:
            continue  # released between our probe and read; try again
        holder_rank = (holder.get("Ts", 0.0), holder.get("Id", ""))
        if holder_rank <= txn.priority():
            obs = ctx.obs
            if obs is not None:
                obs.metrics.inc("txn.wait_die_aborts")
            ctx.interleave(f"lock:die:{short}:{key}")
            raise TxnAborted(
                f"wait-die: {txn.txn_id} dies to older {holder.get('Id')} "
                f"on {short}:{key}")
        obs = ctx.obs
        if obs is not None:
            obs.metrics.inc("txn.lock_waits")
        ctx.interleave(f"lock:wait:{short}:{key}")
        attempts += 1
        if attempts > ctx.config.lock_retry_limit:
            raise TxnAborted(
                f"lock {short}:{key} unobtainable after "
                f"{attempts} attempts")
        ctx.sleep(ctx.config.lock_retry_backoff)


def tx_read(ctx, short: str, key: Any) -> Any:
    """Locked read with read-your-writes through the shadow table."""
    tx_lock(ctx, short, key)
    if (short, key) in ctx.txn.written:
        table = ctx.env.shadow_table(short)
        return ops.read_op(ctx, table, shadow_key(ctx.txn.txn_id, key))
    return ops.read_op(ctx, ctx.env.data_table(short), key)


def tx_write(ctx, short: str, key: Any, value: Any) -> None:
    """Locked write, redirected to the transaction's shadow chain."""
    tx_lock(ctx, short, key)
    txn = ctx.txn
    table = ctx.env.shadow_table(short)
    ops.write_op(ctx, table, shadow_key(txn.txn_id, key), value,
                 head_extra={"TxnId": txn.txn_id, "OrigKey": key,
                             "OwnerInstance": ctx.instance_id})
    txn.written.add((short, key))


def tx_cond_write(ctx, short: str, key: Any, value: Any,
                  condition: Condition) -> bool:
    """Conditional write inside a transaction.

    Under 2PL the value cannot change while we hold the lock, so the
    condition is evaluated against the locked read (shadow-aware) and the
    write applied shadow-side if it holds. Both sub-steps are logged, so
    replays take the identical branch.
    """
    tx_lock(ctx, short, key)
    current = tx_read(ctx, short, key)
    visible = {} if current == daal.MISSING else {"Value": current}
    if not condition.evaluate(visible):
        return False
    tx_write(ctx, short, key, value)
    return True


# ---------------------------------------------------------------------------
# Commit / abort protocol
# ---------------------------------------------------------------------------

def resolve_local(env: BeldiEnv, txn_id: str, mode: str,
                  cache=None, batch: bool = False,
                  async_io: bool = False) -> dict:
    """Phase 2, local part: flush shadows (commit) and release locks.

    Idempotent and at-least-once: every step is conditioned on
    ``LockOwner.Id == txn_id``, which the first successful flush/release
    clears. A crashed resolver simply re-runs and skips finished keys.

    Fast paths: with ``cache`` the tail lookups (shadow reads, flushes,
    releases) go through the §4.4 position memory; with ``batch`` the
    N shadow-tail fetches coalesce into one ``batch_get`` round trip —
    single-row shadow chains (the common case) need no extra read at
    all, their head row from the index query already carries the value.
    With ``async_io`` the per-item flushes (and, separately, the lock
    releases) fan out under an :func:`~repro.kvstore.overlap` scope:
    each item's flush is one sequential branch (its internal
    read-retry-update chain still serializes), distinct items pay
    ``max`` instead of the sum. Sound because every branch touches a
    distinct item's chain, and each flush/release is individually
    idempotent — overlap changes when virtual time passes, never which
    conditional writes land.
    """
    obs = getattr(env.store, "obs", None)
    if obs is None:
        return _resolve_local(env, txn_id, mode, cache, batch, async_io)
    with obs.tracer.span("txn.resolve", cat="txn", mode=mode,
                         txn=txn_id):
        stats = _resolve_local(env, txn_id, mode, cache, batch, async_io)
    obs.metrics.inc("txn.flushed", stats["flushed"])
    obs.metrics.inc("txn.released", stats["released"])
    return stats


def _resolve_local(env: BeldiEnv, txn_id: str, mode: str,
                   cache, batch: bool, async_io: bool) -> dict:
    store = env.store
    stats = {"flushed": 0, "released": 0}
    if mode == COMMIT:
        for short in env.table_names():
            shadow = env.shadow_table(short)
            heads = store.query_index(shadow, SHADOW_TXN_INDEX, txn_id)
            chains = {}
            head_rows = {}
            for row in heads:
                if row.get("RowId") == daal.HEAD_ROW_ID:
                    chains[row["Key"]] = row.get("OrigKey")
                    head_rows[row["Key"]] = row
            finals = _shadow_finals(store, shadow, sorted(chains),
                                    head_rows, cache, batch)
            with overlap(store, enabled=async_io) as scope:
                for skey, orig_key in sorted(chains.items()):
                    final = finals[skey]
                    if final == daal.MISSING:
                        continue
                    with scope.branch():
                        if daal.flush_value(store, env.data_table(short),
                                            orig_key, final, txn_id,
                                            cache=cache):
                            stats["flushed"] += 1
    refs = store.query(env.lockset_table, txn_id)
    with overlap(store, enabled=async_io) as scope:
        for ref in refs.items:
            with scope.branch():
                released = daal.release_lock(
                    store, env.data_table(ref["Table"]), ref["ItemKey"],
                    txn_id, cache=cache)
                if released:
                    stats["released"] += 1
    return stats


def _shadow_finals(store, shadow: str, skeys, head_rows: dict,
                   cache, batch: bool) -> dict:
    """Resolve every shadow chain's tail value; one batched round trip
    for the multi-row chains when ``batch`` is on."""
    finals: dict = {}
    if not batch:
        for skey in skeys:
            finals[skey] = daal.tail_value(store, shadow, skey,
                                           cache=cache)
        return finals
    pending: list = []
    for skey in skeys:
        head = head_rows[skey]
        if "NextRow" not in head:
            # Single-row chain: the head *is* the tail, and the index
            # query already returned it whole.
            finals[skey] = head.get("Value", daal.MISSING)
        else:
            pending.append(skey)
    if not pending:
        return finals
    tail_ids: dict = {}
    for skey in pending:
        entry = cache.tail_of(shadow, skey) if cache is not None else None
        if entry is not None:
            tail_ids[skey] = entry.row_id
        else:
            skeleton = daal.load_skeleton(store, shadow, skey, cache=cache)
            tail_ids[skey] = skeleton.tail  # None when chain vanished
    lookups = [skey for skey in pending if tail_ids[skey] is not None]
    # batch_get_all retries any throttled (unprocessed) remainder, so a
    # partial batch throttle never fails the whole commit fetch.
    rows = batch_get_all(store, shadow,
                         [(skey, tail_ids[skey]) for skey in lookups])
    for skey, row in zip(lookups, rows):
        if row is None or "NextRow" in row:
            # Cached tail went stale between resolution and fetch; evict
            # and fall back to the sound traversal for this key.
            if cache is not None:
                cache.forget(shadow, skey)
            finals[skey] = daal.tail_value(store, shadow, skey,
                                           cache=cache)
        else:
            finals[skey] = row.get("Value", daal.MISSING)
    for skey in pending:
        if skey not in finals:
            finals[skey] = daal.MISSING
    return finals


def propagate_signal(ctx, instance_id: str, txn_payload: dict) -> int:
    """Phase 2, recursive part: signal every transactional callee.

    Callees are discovered from the signalling instance's invoke log and
    re-invoked by their original instance ids, carrying the Commit/Abort
    context along the workflow edges (Fig. 21's shape).
    """
    entries = ctx.store.query(ctx.env.invoke_log, instance_id)
    signalled = 0
    for entry in entries.items:
        if not entry.get("InTxn"):
            continue
        payload = {"kind": "txn_signal",
                   "instance_id": entry["CalleeId"],
                   "txn": dict(txn_payload)}
        _signal_with_retry(ctx, entry["Callee"], payload)
        signalled += 1
    return signalled


def _signal_with_retry(ctx, callee: str, payload: dict) -> None:
    from repro.platform.errors import (FunctionCrashed, FunctionTimeout,
                                       TooManyRequests)
    attempts = 0
    while True:
        try:
            ctx.platform_ctx.sync_invoke(callee, payload)
            return
        except (FunctionCrashed, FunctionTimeout, TooManyRequests):
            attempts += 1
            if attempts > ctx.config.invoke_retry_limit:
                raise
            ctx.sleep(ctx.config.invoke_retry_backoff * attempts)


def finish_transaction(ctx, commit: bool) -> str:
    """``end_tx`` for the owning SSF: decide, resolve locally, propagate."""
    txn = ctx.txn
    if txn is None:
        raise MisusedApi("end_tx without begin_tx")
    if not txn.owner:
        # Inherited context: the top-level owner coordinates; inner
        # begin/end pairs are ignored (§6.2).
        return "inherited"
    mode = COMMIT if commit and not txn.aborted else ABORT
    with ctx.trace(f"txn.finish:{mode}", cat="txn", txn=txn.txn_id):
        ctx.crash_point(f"txn:{txn.txn_id}:resolving:{mode}")
        resolve_local(ctx.env, txn.txn_id, mode, cache=ctx.tail_cache,
                      batch=getattr(ctx.config, "batch_reads", False),
                      async_io=getattr(ctx.config, "async_io", False))
        ctx.crash_point(f"txn:{txn.txn_id}:resolved-local")
        propagate_signal(ctx, ctx.instance_id, txn.payload(mode))
        ctx.crash_point(f"txn:{txn.txn_id}:propagated")
    obs = ctx.obs
    if obs is not None:
        obs.metrics.inc("txn.commit" if mode == COMMIT else "txn.abort")
    ctx.txn = None
    return mode


class TransactionHandle:
    """``with ctx.transaction():`` sugar around begin_tx/end_tx.

    A :class:`TxnAborted` escaping the block triggers the abort protocol
    and is swallowed; inspect :attr:`outcome` (``"committed"`` /
    ``"aborted"`` / ``"inherited"``) afterwards.
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self.outcome: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.outcome in ("committed", "inherited")

    @property
    def aborted(self) -> bool:
        return self.outcome == "aborted"

    def __enter__(self) -> "TransactionHandle":
        self._ctx.begin_tx()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            mode = self._ctx.end_tx()
            self.outcome = ("committed" if mode == COMMIT
                            else "inherited" if mode == "inherited"
                            else "aborted")
            return False
        if isinstance(exc, TxnAborted):
            if self._ctx.txn is not None and not self._ctx.txn.owner:
                # Not ours to resolve: propagate the abort to the caller,
                # who forwards it up to the owning SSF.
                return False
            mode = finish_transaction(self._ctx, commit=False)
            self.outcome = "aborted" if mode == ABORT else mode
            return True
        if not isinstance(exc, Exception):
            # A BaseException — the platform killing this worker (crash
            # injection, execution timeout). The crash is NOT a
            # transaction outcome: leave every lock and shadow in place
            # and let the intent collector's re-execution replay to a
            # deterministic decision. Aborting here would release locks
            # that the replayed commit still needs (lost update).
            return False
        # Deterministic application exception: abort, then re-raise (the
        # replay will raise it again and abort again — idempotent).
        if self._ctx.txn is not None and self._ctx.txn.owner:
            finish_transaction(self._ctx, commit=False)
            self.outcome = "aborted"
        return False
