"""A DynamoDB-like NoSQL key-value store (substrate).

Beldi assumes only a handful of storage properties (§2.2 of the paper):
strong consistency, fault tolerance, atomic conditional updates at a row
atomicity scope, and scans with filters and projections. This package
implements exactly that feature set, in-memory, with:

- tables keyed by a hash key and an optional range (sort) key,
- a condition/update expression language (attribute_not_exists, comparisons,
  SET/REMOVE/ADD over nested attribute paths),
- queries and scans with filter, projection, limit, and pagination,
- sparse global secondary indexes,
- per-item size limits (DynamoDB's 400 KB row cap is what motivates the
  linked DAAL in the first place),
- optional cross-table transactional writes (used only by the paper's
  "cross-table txn" baseline variant),
- request metering (read/write units, bytes moved, storage) so the paper's
  §7.3 cost analysis can be regenerated, and
- a pluggable time source so operations consume calibrated virtual latency
  when run under the simulation kernel.
"""

from repro.kvstore.errors import (
    ConditionFailed,
    ItemTooLarge,
    KVStoreError,
    TableExists,
    TableNotFound,
    ThrottledError,
    TransactionCanceled,
    UnavailableError,
)
from repro.kvstore.faults import FaultPolicy, FaultTimeline, FaultWindow
from repro.kvstore.expressions import (
    Add,
    And,
    AttrExists,
    AttrNotExists,
    BeginsWith,
    Between,
    Contains,
    Delete,
    Eq,
    Ge,
    Gt,
    IfNotExists,
    In,
    Le,
    ListAppend,
    Lt,
    Minus,
    Ne,
    Not,
    Or,
    Path,
    PathRef,
    Plus,
    Remove,
    Set,
    SizeEq,
    SizeGe,
    SizeGt,
    SizeLe,
    SizeLt,
    Value,
    path,
)
from repro.kvstore.asyncio import OverlapScope, overlap
from repro.kvstore.item import item_size
from repro.kvstore.metering import Metering
from repro.kvstore.rebalance import (
    ChainMigrator,
    ElasticityController,
    MigrationStats,
    placement_residue,
    recover_stale_migrations,
)
from repro.kvstore.replication import (
    ReadConsistency,
    ReplicaGroup,
    ReplicatedStore,
    ReplicationStats,
)
from repro.kvstore.sharding import HashRing, ShardedStore, ShardedTableView
from repro.kvstore.store import (
    BatchGetResult,
    BatchWriteResult,
    KernelTimeSource,
    KVStore,
    MAX_BATCH_WRITE_ITEMS,
    NullTimeSource,
    TransactDelete,
    TransactPut,
    TransactUpdate,
    batch_get_all,
    batch_write_all,
)
from repro.kvstore.table import KeySchema, QueryResult, ScanResult, Table

__all__ = [
    "Add", "And", "AttrExists", "AttrNotExists", "BatchGetResult",
    "BatchWriteResult", "BeginsWith", "Between",
    "ChainMigrator",
    "ConditionFailed", "Contains", "Delete", "ElasticityController",
    "Eq", "FaultPolicy", "FaultTimeline", "FaultWindow",
    "Ge", "Gt", "HashRing",
    "IfNotExists",
    "In", "ItemTooLarge", "KVStore", "KVStoreError", "KernelTimeSource",
    "KeySchema", "Le", "ListAppend", "Lt", "MAX_BATCH_WRITE_ITEMS",
    "Metering", "MigrationStats", "Minus", "Ne", "Not",
    "NullTimeSource", "Or", "OverlapScope", "Path", "PathRef", "Plus",
    "QueryResult",
    "ReadConsistency", "Remove", "ReplicaGroup", "ReplicatedStore",
    "ReplicationStats",
    "ScanResult", "Set", "ShardedStore", "ShardedTableView",
    "SizeEq", "SizeGe", "SizeGt", "SizeLe",
    "SizeLt", "Table", "TableExists", "TableNotFound", "ThrottledError",
    "TransactDelete", "TransactPut", "TransactUpdate", "TransactionCanceled",
    "UnavailableError",
    "Value", "batch_get_all", "batch_write_all", "item_size", "overlap",
    "path", "placement_residue", "recover_stale_migrations",
]
