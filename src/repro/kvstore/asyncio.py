"""Async storage I/O: overlapping independent store round trips.

The simulated stores are synchronous: every operation sleeps its sampled
latency through the caller's time source before returning, so N
independent round trips cost the *sum* of their latencies even though a
real client would issue them concurrently and pay roughly the *max*.
This module supplies the overlap primitive the hot paths use to close
that gap (ISSUE: "Async storage backends" / Netherite-style pipelining):

``overlap(store, enabled=...)``
    A context manager that, while active, intercepts every latency sleep
    the participating store(s) would pay and defers it. On exit, the
    caller sleeps once for the **completion frontier** — the latest
    finish time across everything issued inside — so independent work
    costs ``max(latencies)`` instead of the sum.

``scope.branch()``
    Marks one logically *sequential* strand inside the scope. Operations
    inside the same branch serialize (a dependent read-then-write still
    costs read + write); separate branches all start at the scope's
    origin and overlap with each other. Code not wrapped in a branch
    serializes with itself, which is the conservative default.

The model composes with the rest of the simulation:

- **Per-node capacity still binds.** A store node with a
  :class:`~repro.sim.latency.ServiceCapacity` queue sees every
  overlapped operation arrive at its true issue offset, so a saturated
  node still serializes: overlap buys ``max(latencies)`` *plus* whatever
  queueing the node imposes, never infinite parallelism.
- **Nesting folds.** An inner ``overlap`` opened while an outer one is
  active (e.g. a sharded ``batch_get`` fan-out inside a commit flush
  branch) does not sleep on exit; its frontier is folded back into the
  enclosing branch as one composite operation.
- **Scopes are atomic in virtual time.** Nothing inside a scope may
  yield to the kernel (all store sleeps are deferred, and scope bodies
  must only perform store operations), so no other simulated process can
  observe the half-issued state, and the scope's single exit sleep is
  the only scheduling point. This is exactly the crash model's
  granularity: a crash lands before the batch or after it, with explicit
  ``crash_point``\\ s in the callers covering partial completions of the
  *protocol* (retries re-issue idempotent work), never of one scope.

Correctness does not depend on overlap: latency is additive, never
causal (see ``repro/sim/latency.py``), so collapsing sleeps changes when
virtual time passes, not what the store contains. The exhaustive
crash-point sweep runs with the flag on to pin that down.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence


class OverlapScope:
    """Deferred-sleep accumulator shared by a set of time sources.

    Offsets are virtual milliseconds relative to the moment the
    *outermost* scope opened (no time passes inside a scope, so that
    moment is "now" throughout). ``cursor`` is where the next operation
    of the current strand starts; ``frontier`` is the latest completion
    seen anywhere in the scope.
    """

    def __init__(self, parent: Optional["OverlapScope"] = None) -> None:
        self.parent = parent
        self.start = parent.cursor if parent is not None else 0.0
        self.cursor = self.start
        self.frontier = self.start

    def add(self, duration: float) -> None:
        """Record one operation's sojourn time at the current cursor."""
        if duration > 0:
            self.cursor += duration
            if self.cursor > self.frontier:
                self.frontier = self.cursor

    @contextmanager
    def branch(self) -> Iterator[None]:
        """One sequential strand, concurrent with sibling branches."""
        saved = self.cursor
        self.cursor = self.start
        try:
            yield
        finally:
            self.cursor = saved

    def join_child(self, child: "OverlapScope") -> None:
        """Fold a nested scope back in as one composite operation."""
        self.cursor = child.frontier
        if self.frontier < child.frontier:
            self.frontier = child.frontier


class _NullScope:
    """Disabled scope: branches are no-ops, sleeps stay synchronous."""

    @contextmanager
    def branch(self) -> Iterator[None]:
        yield


NULL_SCOPE = _NullScope()


def _time_sources(store) -> list:
    """The distinct time sources behind a store facade (duck-typed)."""
    collect = getattr(store, "time_sources", None)
    if collect is None:
        return []
    seen: dict[int, object] = {}
    for source in collect():
        seen.setdefault(id(source), source)
    return list(seen.values())


@contextmanager
def overlap(store, enabled: bool = True) -> Iterator:
    """Open an overlap scope over every node behind ``store``.

    With ``enabled=False`` (the flags-off configuration) this yields a
    no-op scope and every store operation sleeps synchronously, exactly
    as without this module. With an outer scope already active on the
    store's time sources, the new scope nests (folds on exit) instead of
    sleeping.
    """
    if not enabled:
        yield NULL_SCOPE
        return
    sources = _time_sources(store)
    if not sources:
        yield NULL_SCOPE
        return
    parent = next((source._ov_scope for source in sources
                   if getattr(source, "_ov_scope", None) is not None), None)
    scope = OverlapScope(parent)
    previous = [(source, getattr(source, "_ov_scope", None))
                for source in sources]
    for source in sources:
        source._ov_scope = scope
    # Scope bodies are atomic in virtual time, so schedule-exploration
    # interleave points must not yield while one is open.
    kernels = {id(k): k for k in
               (getattr(source, "kernel", None) for source in sources)
               if k is not None and hasattr(k, "_no_yield")}
    for k in kernels.values():
        k._no_yield += 1
    try:
        yield scope
    finally:
        for k in kernels.values():
            k._no_yield -= 1
        for source, prior in previous:
            source._ov_scope = prior
        if parent is not None:
            parent.join_child(scope)
        else:
            _settle(sources, scope)


def _settle(sources: Sequence, scope: OverlapScope) -> None:
    """Sleep the frontier once per distinct *clock* behind the sources.

    Several :class:`~repro.kvstore.store.KernelTimeSource` instances may
    wrap one kernel; sleeping each would multiply the elapsed time, so
    sources are deduplicated by ``clock_id()``. Independent clocks
    (per-node ``NullTimeSource``\\ s in unit tests) each advance by the
    same frontier — the scope's wall time.
    """
    seen = set()
    for source in sources:
        key = source.clock_id()
        if key in seen:
            continue
        seen.add(key)
        source.sleep(scope.frontier)


__all__ = ["NULL_SCOPE", "OverlapScope", "overlap"]
