"""Error types raised by the NoSQL store."""

from __future__ import annotations


class KVStoreError(Exception):
    """Base class for all store errors."""


class TableNotFound(KVStoreError):
    """Referenced table does not exist."""


class TableExists(KVStoreError):
    """Attempt to create a table that already exists."""


class ConditionFailed(KVStoreError):
    """A conditional put/update/delete's condition evaluated to false.

    Mirrors DynamoDB's ``ConditionalCheckFailedException``; Beldi's
    lock-free algorithms branch on this error rather than treating it as a
    failure.
    """


class TransactionCanceled(KVStoreError):
    """A cross-table transactional write had a failing condition."""


class ItemTooLarge(KVStoreError):
    """Item exceeds the per-row size cap (DynamoDB: 400 KB).

    This limit is why Olive's single-row DAAL cannot hold unbounded logs
    and why Beldi introduces the *linked* DAAL (§4.1).
    """


class ThrottledError(KVStoreError):
    """Injected throughput throttling (fault injection)."""


class UnavailableError(KVStoreError):
    """The endpoint is dark for a scheduled outage window (fault injection).

    Raised before any table effect, so callers may retry the operation
    verbatim. Distinct from :class:`ThrottledError`: a throttle is a
    transient per-request rejection, an outage is a correlated window
    during which *every* matching operation on the node fails.
    """


class ValidationError(KVStoreError):
    """Malformed request: bad key, bad expression, wrong types."""
