"""Condition and update expression language.

A structured (AST-based) equivalent of DynamoDB's expression strings:

- **conditions** evaluate against an item (possibly ``None`` for a missing
  item) and return a bool — used for conditional writes, query filters, and
  scan filters;
- **updates** mutate an item in place — ``SET`` (with arithmetic,
  ``if_not_exists`` and ``list_append`` operands), ``REMOVE``, ``ADD`` and
  ``DELETE``.

Paths address nested attributes: ``path("RecentWrites", log_key)`` is the
map member ``RecentWrites.<log_key>``. Beldi's linked DAAL relies on exactly
this: a single conditional update can test ``attribute_not_exists(
RecentWrites.k) AND LogSize < N AND attribute_not_exists(NextRow)`` and
apply ``SET Value=v, LogSize=LogSize+1, RecentWrites.k=True`` atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from repro.kvstore.errors import ValidationError
from repro.kvstore.item import compare_values, copy_value, validate_value


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Path:
    """An attribute path: top-level name plus nested map keys/list indexes."""

    segments: tuple[Union[str, int], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValidationError("empty attribute path")
        if not isinstance(self.segments[0], str):
            raise ValidationError("path must start with an attribute name")

    @property
    def top(self) -> str:
        return self.segments[0]  # type: ignore[return-value]

    def get(self, item: Optional[dict]) -> tuple[bool, Any]:
        """Return ``(present, value)`` for this path in ``item``."""
        if item is None:
            return False, None
        node: Any = item
        for segment in self.segments:
            if isinstance(segment, str):
                if not isinstance(node, dict) or segment not in node:
                    return False, None
                node = node[segment]
            else:
                if not isinstance(node, list) or not (
                        0 <= segment < len(node)):
                    return False, None
                node = node[segment]
        return True, node

    def set(self, item: dict, value: Any) -> None:
        """Set the path in ``item``, creating intermediate maps as needed."""
        node: Any = item
        for segment in self.segments[:-1]:
            if isinstance(segment, str):
                if not isinstance(node, dict):
                    raise ValidationError(
                        f"cannot descend into non-map at {segment!r}")
                if segment not in node or not isinstance(
                        node[segment], (dict, list)):
                    node[segment] = {}
                node = node[segment]
            else:
                if not isinstance(node, list) or not (
                        0 <= segment < len(node)):
                    raise ValidationError(
                        f"list index {segment} out of range")
                node = node[segment]
        last = self.segments[-1]
        if isinstance(last, str):
            if not isinstance(node, dict):
                raise ValidationError(f"cannot set {last!r} on non-map")
            node[last] = value
        else:
            if not isinstance(node, list) or not (0 <= last < len(node)):
                raise ValidationError(f"list index {last} out of range")
            node[last] = value

    def remove(self, item: dict) -> None:
        """Remove the path from ``item``; missing paths are a no-op."""
        node: Any = item
        for segment in self.segments[:-1]:
            if isinstance(segment, str):
                if not isinstance(node, dict) or segment not in node:
                    return
                node = node[segment]
            else:
                if not isinstance(node, list) or not (
                        0 <= segment < len(node)):
                    return
                node = node[segment]
        last = self.segments[-1]
        if isinstance(last, str) and isinstance(node, dict):
            node.pop(last, None)
        elif isinstance(last, int) and isinstance(node, list):
            if 0 <= last < len(node):
                node.pop(last)

    def __str__(self) -> str:
        return ".".join(str(s) for s in self.segments)


def path(*segments: Union[str, int]) -> Path:
    """Convenience constructor: ``path("RecentWrites", key)``."""
    return Path(tuple(segments))


def _as_path(value: Union[str, Path]) -> Path:
    if isinstance(value, Path):
        return value
    return Path((value,))


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------

class Condition:
    """Base class; subclasses implement ``evaluate(item) -> bool``."""

    def evaluate(self, item: Optional[dict]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "And":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class _PathCondition(Condition):
    def __init__(self, target: Union[str, Path]) -> None:
        self.path = _as_path(target)


class AttrExists(_PathCondition):
    def evaluate(self, item: Optional[dict]) -> bool:
        present, _ = self.path.get(item)
        return present


class AttrNotExists(_PathCondition):
    def evaluate(self, item: Optional[dict]) -> bool:
        present, _ = self.path.get(item)
        return not present


class _Comparison(Condition):
    """Comparison against a constant; false when the path is missing."""

    def __init__(self, target: Union[str, Path], value: Any) -> None:
        self.path = _as_path(target)
        self.value = value

    def _compare(self, lhs: Any) -> int:
        return compare_values(lhs, self.value)

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        if not present:
            return False
        return self._test(lhs)

    def _test(self, lhs: Any) -> bool:
        raise NotImplementedError


class Eq(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return lhs == self.value


class Ne(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return lhs != self.value


class Lt(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return self._compare(lhs) < 0


class Le(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return self._compare(lhs) <= 0


class Gt(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return self._compare(lhs) > 0


class Ge(_Comparison):
    def _test(self, lhs: Any) -> bool:
        return self._compare(lhs) >= 0


class Between(Condition):
    def __init__(self, target: Union[str, Path], low: Any, high: Any) -> None:
        self.path = _as_path(target)
        self.low = low
        self.high = high

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        if not present:
            return False
        return (compare_values(lhs, self.low) >= 0
                and compare_values(lhs, self.high) <= 0)


class In(Condition):
    def __init__(self, target: Union[str, Path],
                 options: Iterable[Any]) -> None:
        self.path = _as_path(target)
        self.options = list(options)

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        return present and lhs in self.options


class BeginsWith(Condition):
    def __init__(self, target: Union[str, Path], prefix: str) -> None:
        self.path = _as_path(target)
        self.prefix = prefix

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        return present and isinstance(lhs, str) and lhs.startswith(
            self.prefix)


class Contains(Condition):
    def __init__(self, target: Union[str, Path], member: Any) -> None:
        self.path = _as_path(target)
        self.member = member

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        if not present:
            return False
        if isinstance(lhs, (str, list, set, frozenset)):
            return self.member in lhs
        return False


def _size_of(value: Any) -> Optional[int]:
    if isinstance(value, (str, bytes, list, dict, set, frozenset)):
        return len(value)
    return None


class _SizeComparison(Condition):
    def __init__(self, target: Union[str, Path], bound: int) -> None:
        self.path = _as_path(target)
        self.bound = bound

    def evaluate(self, item: Optional[dict]) -> bool:
        present, lhs = self.path.get(item)
        if not present:
            return False
        size = _size_of(lhs)
        if size is None:
            return False
        return self._test(size)

    def _test(self, size: int) -> bool:
        raise NotImplementedError


class SizeLt(_SizeComparison):
    def _test(self, size: int) -> bool:
        return size < self.bound


class SizeLe(_SizeComparison):
    def _test(self, size: int) -> bool:
        return size <= self.bound


class SizeGt(_SizeComparison):
    def _test(self, size: int) -> bool:
        return size > self.bound


class SizeGe(_SizeComparison):
    def _test(self, size: int) -> bool:
        return size >= self.bound


class SizeEq(_SizeComparison):
    def _test(self, size: int) -> bool:
        return size == self.bound


class And(Condition):
    def __init__(self, *conditions: Condition) -> None:
        if not conditions:
            raise ValidationError("And() needs at least one condition")
        self.conditions = conditions

    def evaluate(self, item: Optional[dict]) -> bool:
        return all(c.evaluate(item) for c in self.conditions)


class Or(Condition):
    def __init__(self, *conditions: Condition) -> None:
        if not conditions:
            raise ValidationError("Or() needs at least one condition")
        self.conditions = conditions

    def evaluate(self, item: Optional[dict]) -> bool:
        return any(c.evaluate(item) for c in self.conditions)


class Not(Condition):
    def __init__(self, condition: Condition) -> None:
        self.condition = condition

    def evaluate(self, item: Optional[dict]) -> bool:
        return not self.condition.evaluate(item)


# ---------------------------------------------------------------------------
# Update operands (right-hand sides of SET)
# ---------------------------------------------------------------------------

class Operand:
    def resolve(self, item: dict) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Value(Operand):
    value: Any

    def resolve(self, item: dict) -> Any:
        validate_value(self.value)
        return copy_value(self.value)


@dataclass(frozen=True)
class PathRef(Operand):
    ref: Path

    def resolve(self, item: dict) -> Any:
        present, value = self.ref.get(item)
        if not present:
            raise ValidationError(f"path {self.ref} missing during update")
        return copy_value(value)


@dataclass(frozen=True)
class IfNotExists(Operand):
    ref: Path
    default: Operand

    def resolve(self, item: dict) -> Any:
        present, value = self.ref.get(item)
        if present:
            return copy_value(value)
        return self.default.resolve(item)


@dataclass(frozen=True)
class Plus(Operand):
    left: Operand
    right: Operand

    def resolve(self, item: dict) -> Any:
        return self.left.resolve(item) + self.right.resolve(item)


@dataclass(frozen=True)
class Minus(Operand):
    left: Operand
    right: Operand

    def resolve(self, item: dict) -> Any:
        return self.left.resolve(item) - self.right.resolve(item)


@dataclass(frozen=True)
class ListAppend(Operand):
    left: Operand
    right: Operand

    def resolve(self, item: dict) -> Any:
        left = self.left.resolve(item)
        right = self.right.resolve(item)
        if not isinstance(left, list) or not isinstance(right, list):
            raise ValidationError("list_append needs two lists")
        return left + right


def _as_operand(value: Any) -> Operand:
    if isinstance(value, Operand):
        return value
    if isinstance(value, Path):
        return PathRef(value)
    return Value(value)


# ---------------------------------------------------------------------------
# Update actions
# ---------------------------------------------------------------------------

class UpdateAction:
    def apply(self, item: dict) -> None:
        raise NotImplementedError


class Set(UpdateAction):
    """``SET path = operand`` (operand may reference other paths)."""

    def __init__(self, target: Union[str, Path], value: Any) -> None:
        self.path = _as_path(target)
        self.operand = _as_operand(value)

    def apply(self, item: dict) -> None:
        resolved = self.operand.resolve(item)
        validate_value(resolved)
        self.path.set(item, resolved)


class Remove(UpdateAction):
    """``REMOVE path`` — missing paths are a no-op."""

    def __init__(self, target: Union[str, Path]) -> None:
        self.path = _as_path(target)

    def apply(self, item: dict) -> None:
        self.path.remove(item)


class Add(UpdateAction):
    """``ADD path value`` — numeric increment or set union."""

    def __init__(self, target: Union[str, Path], value: Any) -> None:
        self.path = _as_path(target)
        self.value = value

    def apply(self, item: dict) -> None:
        present, current = self.path.get(item)
        if isinstance(self.value, (int, float)) and not isinstance(
                self.value, bool):
            base = current if present else 0
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                raise ValidationError(f"ADD to non-number at {self.path}")
            self.path.set(item, base + self.value)
        elif isinstance(self.value, (set, frozenset)):
            base = set(current) if present else set()
            if present and not isinstance(current, (set, frozenset)):
                raise ValidationError(f"ADD set to non-set at {self.path}")
            self.path.set(item, base | set(self.value))
        else:
            raise ValidationError("ADD needs a number or a set")


class Delete(UpdateAction):
    """``DELETE path value`` — set difference."""

    def __init__(self, target: Union[str, Path], value: Any) -> None:
        self.path = _as_path(target)
        if not isinstance(value, (set, frozenset)):
            raise ValidationError("DELETE needs a set")
        self.value = set(value)

    def apply(self, item: dict) -> None:
        present, current = self.path.get(item)
        if not present:
            return
        if not isinstance(current, (set, frozenset)):
            raise ValidationError(f"DELETE from non-set at {self.path}")
        self.path.set(item, set(current) - self.value)


def apply_updates(item: dict, updates: Sequence[UpdateAction]) -> None:
    """Apply a sequence of update actions to ``item`` in place."""
    for action in updates:
        action.apply(item)


@dataclass
class Projection:
    """Selects which top-level/nested attributes an op returns.

    Beldi's traversal projects just ``RowId`` and ``NextRow`` so a scan of a
    linked DAAL downloads ~32 bytes per row rather than the whole row.
    """

    paths: list[Path] = field(default_factory=list)

    @classmethod
    def of(cls, *targets: Union[str, Path]) -> "Projection":
        return cls([_as_path(t) for t in targets])

    def apply(self, item: dict) -> dict:
        out: dict = {}
        for target in self.paths:
            present, value = target.get(item)
            if present:
                target.set(out, copy_value(value))
        return out
