"""Store-level fault injection: throttling and latency spikes.

These model the *environment* faults a DynamoDB client sees (throughput
throttling, tail latency), as opposed to the SSF crash faults injected by
``repro.platform.crashes``. The store itself is always durable and strongly
consistent — exactly the paper's assumption (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.randsrc import RandomSource


@dataclass
class FaultPolicy:
    """Probabilistic fault model applied per store operation.

    throttle_probability:
        Chance an operation raises :class:`ThrottledError` before running.
    spike_probability / spike_multiplier:
        Chance an operation's latency is multiplied (tail injection).
    only_ops:
        When set, the policy only applies to these facade operation names
        (``"db.read"``, ``"db.batch_read"``, ``"db.query"``, ...). Lets
        tests target one operation kind — e.g. throttle batched reads as
        whole batches while leaving point reads untouched. ``None``
        applies to everything.
    only_shards:
        When set, the policy only applies to store nodes with these
        ``shard_id`` values — a *per-shard fault domain*: one sick shard
        of a :class:`~repro.kvstore.sharding.ShardedStore` throttles or
        spikes while its siblings serve normally. A node with no shard id
        (an unsharded store) is unaffected by a shard-scoped policy.
    leader_crash_probability:
        Chance that a *leader-routed* operation (any write, and any
        strongly consistent read) arriving at a
        :class:`~repro.kvstore.replication.ReplicaGroup` finds its leader
        crashed. The group then fails over — promoting the most
        caught-up follower and replaying the unacked replication-log
        suffix — before serving the operation on the new leader.
        Meaningless (ignored) on an unreplicated node: the store
        substrate itself stays durable, per §2.2. Scope with ``only_ops``
        / ``only_shards`` like every other fault.

    A batched operation (``batch_get``, ``batch_write``) consults the
    policy **once per batch**, not once per row: one draw throttles or
    spikes the whole round trip, which is exactly how a provider-side
    throttle behaves. A throttled batch is *partially* served,
    DynamoDB-style: the store processes a prefix and reports the rest
    as unprocessed (see :meth:`~repro.kvstore.KVStore.batch_get` /
    :meth:`~repro.kvstore.KVStore.batch_write`).
    """

    throttle_probability: float = 0.0
    spike_probability: float = 0.0
    spike_multiplier: float = 10.0
    only_ops: Optional[frozenset] = None
    only_shards: Optional[frozenset] = None
    leader_crash_probability: float = 0.0

    @classmethod
    def for_ops(cls, ops: Iterable[str], **kwargs) -> "FaultPolicy":
        return cls(only_ops=frozenset(ops), **kwargs)

    @classmethod
    def for_shards(cls, shards: Iterable[int], **kwargs) -> "FaultPolicy":
        return cls(only_shards=frozenset(shards), **kwargs)

    def applies_to(self, op: str, shard: Optional[int] = None) -> bool:
        if self.only_ops is not None and op not in self.only_ops:
            return False
        if self.only_shards is not None and shard not in self.only_shards:
            return False
        return True

    def should_throttle(self, rand: RandomSource, op: str = "",
                        shard: Optional[int] = None) -> bool:
        if not self.applies_to(op, shard):
            return False
        return (self.throttle_probability > 0
                and rand.random() < self.throttle_probability)

    def should_crash_leader(self, rand: RandomSource, op: str = "",
                            shard: Optional[int] = None) -> bool:
        if not self.applies_to(op, shard):
            return False
        return (self.leader_crash_probability > 0
                and rand.random() < self.leader_crash_probability)

    def latency_multiplier(self, rand: RandomSource, op: str = "",
                           shard: Optional[int] = None) -> float:
        if not self.applies_to(op, shard):
            return 1.0
        if self.spike_probability > 0 and rand.random() < (
                self.spike_probability):
            return self.spike_multiplier
        return 1.0


NO_FAULTS: Optional[FaultPolicy] = None
