"""Store-level fault injection: throttling and latency spikes.

These model the *environment* faults a DynamoDB client sees (throughput
throttling, tail latency), as opposed to the SSF crash faults injected by
``repro.platform.crashes``. The store itself is always durable and strongly
consistent — exactly the paper's assumption (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.randsrc import RandomSource


@dataclass
class FaultPolicy:
    """Probabilistic fault model applied per store operation.

    throttle_probability:
        Chance an operation raises :class:`ThrottledError` before running.
    spike_probability / spike_multiplier:
        Chance an operation's latency is multiplied (tail injection).
    """

    throttle_probability: float = 0.0
    spike_probability: float = 0.0
    spike_multiplier: float = 10.0

    def should_throttle(self, rand: RandomSource) -> bool:
        return (self.throttle_probability > 0
                and rand.random() < self.throttle_probability)

    def latency_multiplier(self, rand: RandomSource) -> float:
        if self.spike_probability > 0 and rand.random() < (
                self.spike_probability):
            return self.spike_multiplier
        return 1.0


NO_FAULTS: Optional[FaultPolicy] = None
