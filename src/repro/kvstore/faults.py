"""Store-level fault injection: throttling, latency spikes, and timelines.

These model the *environment* faults a DynamoDB client sees (throughput
throttling, tail latency), as opposed to the SSF crash faults injected by
``repro.platform.crashes``. The store itself is always durable and strongly
consistent — exactly the paper's assumption (§2.2).

Two fault models live here:

- :class:`FaultPolicy` — *probabilistic*, per-operation: each matching op
  independently draws throttles / latency spikes / leader crashes.
- :class:`FaultTimeline` — *scheduled*, virtual-time: correlated fault
  windows (a node dark for ``[start, end)``, a leader↔follower partition,
  a persistently-slow gray node, an error burst) placed at exact virtual
  times, so a nemesis test can sweep *when* a fault lands relative to the
  protocol instead of hoping a coin flip hits the window.

Both are deterministic: the policy draws from the store's seeded
:class:`~repro.sim.randsrc.RandomSource`, the timeline is a pure function
of virtual time (plus seeded draws for burst error rates < 1).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.sim.randsrc import RandomSource


@dataclass
class FaultPolicy:
    """Probabilistic fault model applied per store operation.

    throttle_probability:
        Chance an operation raises :class:`ThrottledError` before running.
    spike_probability / spike_multiplier:
        Chance an operation's latency is multiplied (tail injection).
    only_ops:
        When set, the policy only applies to these facade operation names
        (``"db.read"``, ``"db.batch_read"``, ``"db.query"``, ...). Lets
        tests target one operation kind — e.g. throttle batched reads as
        whole batches while leaving point reads untouched. ``None``
        applies to everything.
    only_shards:
        When set, the policy only applies to store nodes with these
        ``shard_id`` values — a *per-shard fault domain*: one sick shard
        of a :class:`~repro.kvstore.sharding.ShardedStore` throttles or
        spikes while its siblings serve normally. A node with no shard id
        (an unsharded store) is unaffected by a shard-scoped policy.
    leader_crash_probability:
        Chance that a *leader-routed* operation (any write, and any
        strongly consistent read) arriving at a
        :class:`~repro.kvstore.replication.ReplicaGroup` finds its leader
        crashed. The group then fails over — promoting the most
        caught-up follower and replaying the unacked replication-log
        suffix — before serving the operation on the new leader.
        Meaningless (ignored) on an unreplicated node: the store
        substrate itself stays durable, per §2.2. Scope with ``only_ops``
        / ``only_shards`` like every other fault.

    A batched operation (``batch_get``, ``batch_write``) consults the
    policy **once per batch**, not once per row: one draw throttles or
    spikes the whole round trip, which is exactly how a provider-side
    throttle behaves. A throttled batch is *partially* served,
    DynamoDB-style: the store processes a prefix and reports the rest
    as unprocessed (see :meth:`~repro.kvstore.KVStore.batch_get` /
    :meth:`~repro.kvstore.KVStore.batch_write`).
    """

    throttle_probability: float = 0.0
    spike_probability: float = 0.0
    spike_multiplier: float = 10.0
    only_ops: Optional[frozenset] = None
    only_shards: Optional[frozenset] = None
    leader_crash_probability: float = 0.0

    @classmethod
    def for_ops(cls, ops: Iterable[str], **kwargs) -> "FaultPolicy":
        return cls(only_ops=frozenset(ops), **kwargs)

    @classmethod
    def for_shards(cls, shards: Iterable[int], **kwargs) -> "FaultPolicy":
        return cls(only_shards=frozenset(shards), **kwargs)

    def applies_to(self, op: str, shard: Optional[int] = None) -> bool:
        if self.only_ops is not None and op not in self.only_ops:
            return False
        if self.only_shards is not None and shard not in self.only_shards:
            return False
        return True

    def should_throttle(self, rand: RandomSource, op: str = "",
                        shard: Optional[int] = None) -> bool:
        if not self.applies_to(op, shard):
            return False
        return (self.throttle_probability > 0
                and rand.random() < self.throttle_probability)

    def should_crash_leader(self, rand: RandomSource, op: str = "",
                            shard: Optional[int] = None) -> bool:
        if not self.applies_to(op, shard):
            return False
        return (self.leader_crash_probability > 0
                and rand.random() < self.leader_crash_probability)

    def latency_multiplier(self, rand: RandomSource, op: str = "",
                           shard: Optional[int] = None) -> float:
        if not self.applies_to(op, shard):
            return 1.0
        if self.spike_probability > 0 and rand.random() < (
                self.spike_probability):
            return self.spike_multiplier
        return 1.0


NO_FAULTS: Optional[FaultPolicy] = None


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: ``kind`` active for virtual ``[start, end)``.

    kind:
        ``"outage"`` — matching ops raise ``UnavailableError``.
        ``"partition"`` — replication shipping from the leader stalls;
        records become visible on followers only after the window heals
        (lag grows without bound during the window, then converges).
        ``"gray"`` — matching ops pay ``multiplier`` × latency,
        persistently, not probabilistically (the classic slow-but-alive
        node no probe marks dead).
        ``"error_burst"`` — matching ops are throttled with probability
        ``error_rate`` for the duration of the window.
    only_ops / only_shards:
        Same scoping as :class:`FaultPolicy` — facade op names and node
        ``shard_id`` values. ``None`` matches everything.
    role:
        ``"leader"`` / ``"follower"`` restricts the window to replica
        nodes serving that role (roles are endpoint-static: failover
        swaps table *contents*, not nodes). A window with a role still
        applies to nodes with no role (an unsharded or unreplicated
        store is its own leader); a node's role only excludes windows
        scoped to the *other* role.
    """

    kind: str
    start: float
    end: float
    only_ops: Optional[frozenset] = None
    only_shards: Optional[frozenset] = None
    role: Optional[str] = None
    multiplier: float = 1.0
    error_rate: float = 1.0

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def applies_to(self, op: str, shard: Optional[int] = None,
                   role: Optional[str] = None) -> bool:
        if self.only_ops is not None and op not in self.only_ops:
            return False
        if self.only_shards is not None and shard not in self.only_shards:
            return False
        if self.role is not None and role is not None and role != self.role:
            return False
        return True


def _scope(shards, ops) -> dict:
    """Normalize scope arguments: a scalar means a singleton scope."""
    if shards is not None and isinstance(shards, (int, str)):
        shards = (shards,)
    if ops is not None and isinstance(ops, str):
        ops = (ops,)
    return {
        "only_shards": None if shards is None else frozenset(shards),
        "only_ops": None if ops is None else frozenset(ops),
    }


class FaultTimeline:
    """A deterministic schedule of correlated fault windows.

    Build one fluently and hand it to ``BeldiRuntime(fault_timeline=...)``
    (or set ``node.timeline`` / ``group.timeline`` directly in store-level
    tests)::

        FaultTimeline().outage(500, 2_500, shards=[0]) \\
                       .partition(1_000, 3_000, shards=[1]) \\
                       .gray(0, None, multiplier=25.0, shards=[2])

    The timeline is consulted on the store hot path only when non-empty,
    and is a pure function of virtual time, so an **empty timeline is
    bit-for-bit invisible** (golden-pinned). Every window edge fires a
    ``kernel.interleave_point("fault:<kind>:<start|end>:<i>")`` the first
    time any node observes virtual time past it, so DST schedules can
    race protocol steps against fault onset/heal, plus an observability
    instant event when tracing is on.
    """

    def __init__(self, windows: Iterable[FaultWindow] = ()):
        self.windows: List[FaultWindow] = list(windows)
        self._edges: Optional[List[Tuple[float, str]]] = None
        self._edge_index = 0

    # -- construction ---------------------------------------------------

    def _add(self, window: FaultWindow) -> "FaultTimeline":
        self.windows.append(window)
        self._edges = None
        self._edge_index = 0
        return self

    def outage(self, start: float, end: float, *, shards=None, ops=None,
               role: Optional[str] = None) -> "FaultTimeline":
        """Matching ops raise ``UnavailableError`` for t ∈ [start, end)."""
        return self._add(FaultWindow("outage", start, end, role=role,
                                     **_scope(shards, ops)))

    def partition(self, start: float, end: float, *,
                  shards=None) -> "FaultTimeline":
        """Leader→follower shipping stalls for t ∈ [start, end)."""
        return self._add(FaultWindow("partition", start, end,
                                     **_scope(shards, None)))

    def gray(self, start: float, end: Optional[float] = None, *,
             multiplier: float = 10.0, shards=None, ops=None,
             role: Optional[str] = None) -> "FaultTimeline":
        """Matching ops pay ``multiplier``× latency; ``end=None`` = forever."""
        return self._add(FaultWindow(
            "gray", start, math.inf if end is None else end, role=role,
            multiplier=multiplier, **_scope(shards, ops)))

    def error_burst(self, start: float, end: float, *, rate: float = 1.0,
                    shards=None, ops=None) -> "FaultTimeline":
        """Matching ops throttle with probability ``rate`` in the window."""
        return self._add(FaultWindow("error_burst", start, end,
                                     error_rate=rate, **_scope(shards, ops)))

    # -- queries (store hot path) ---------------------------------------

    def outage_active(self, now: float, op: str,
                      shard: Optional[int] = None,
                      role: Optional[str] = None) -> bool:
        for w in self.windows:
            if (w.kind == "outage" and w.active(now)
                    and w.applies_to(op, shard, role)):
                return True
        return False

    def burst_rate(self, now: float, op: str,
                   shard: Optional[int] = None,
                   role: Optional[str] = None) -> float:
        rate = 0.0
        for w in self.windows:
            if (w.kind == "error_burst" and w.active(now)
                    and w.applies_to(op, shard, role)):
                rate = max(rate, w.error_rate)
        return rate

    def latency_multiplier(self, now: float, op: str,
                           shard: Optional[int] = None,
                           role: Optional[str] = None) -> float:
        multiplier = 1.0
        for w in self.windows:
            if (w.kind == "gray" and w.active(now)
                    and w.applies_to(op, shard, role)):
                multiplier *= w.multiplier
        return multiplier

    def partition_heal_time(self, now: float,
                            shard: Optional[int] = None) -> Optional[float]:
        """Latest heal time of an active partition covering ``shard``."""
        heal = None
        for w in self.windows:
            if (w.kind == "partition" and w.active(now)
                    and (w.only_shards is None or shard in w.only_shards)):
                heal = w.end if heal is None else max(heal, w.end)
        return heal

    # -- edge observation ------------------------------------------------

    def _edge_list(self) -> List[Tuple[float, str]]:
        if self._edges is None:
            edges = []
            for i, w in enumerate(self.windows):
                edges.append((w.start, f"fault:{w.kind}:start:{i}"))
                if w.end != math.inf:
                    edges.append((w.end, f"fault:{w.kind}:end:{i}"))
            edges.sort()
            self._edges = edges
        return self._edges

    def observe(self, node, now: float) -> None:
        """Fire interleave points + obs events for edges now in the past.

        Called from the store hot path; the common case (no pending edge)
        is one comparison. Each edge fires exactly once, from whichever
        node first observes virtual time past it.
        """
        edges = self._edge_list()
        i = self._edge_index
        if i >= len(edges) or edges[i][0] > now:
            return
        while i < len(edges) and edges[i][0] <= now:
            _, tag = edges[i]
            i += 1
            self._edge_index = i
            self._fire(node, tag, now)

    def _fire(self, node, tag: str, now: float) -> None:
        obs = getattr(node, "obs", None)
        if obs is not None:
            obs.metrics.inc("resilience.fault_edges")
            obs.tracer.event(tag, cat="fault", at=now)
        time_source = getattr(node, "time", None)
        kernel = getattr(time_source, "kernel", None)
        in_scope = (time_source is not None
                    and getattr(time_source, "_ov_scope", None) is not None)
        if kernel is not None and not in_scope:
            kernel.interleave_point(tag)

    # -- reporting -------------------------------------------------------

    def describe(self) -> List[dict]:
        """JSON-ready description (embedded in DST failure artifacts)."""
        out = []
        for w in self.windows:
            out.append({
                "kind": w.kind,
                "start": w.start,
                "end": None if w.end == math.inf else w.end,
                "only_ops": sorted(w.only_ops) if w.only_ops else None,
                "only_shards": (sorted(w.only_shards)
                                if w.only_shards else None),
                "role": w.role,
                "multiplier": w.multiplier,
                "error_rate": w.error_rate,
            })
        return out

    def __bool__(self) -> bool:
        return bool(self.windows)
