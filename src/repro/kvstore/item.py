"""Item model: attribute values, deep copies, and size accounting.

Items are plain ``dict``s mapping attribute names to values. Supported
value types mirror DynamoDB's: ``None``, ``bool``, ``int``, ``float``,
``str``, ``bytes``, ``list``, ``dict`` (map), and ``set``.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.errors import ValidationError

_SCALARS = (type(None), bool, int, float, str, bytes)


def validate_value(value: Any) -> None:
    """Reject value types the store does not model."""
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for element in value:
            validate_value(element)
        return
    if isinstance(value, dict):
        for key, element in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"map keys must be str, got {key!r}")
            validate_value(element)
        return
    if isinstance(value, (set, frozenset)):
        for element in value:
            if not isinstance(element, (int, float, str, bytes)):
                raise ValidationError(
                    f"set elements must be scalar, got {element!r}")
        return
    raise ValidationError(f"unsupported attribute value: {value!r}")


def copy_value(value: Any) -> Any:
    """Deep-copy a value so callers can never alias stored state."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return [copy_value(v) for v in value]
    if isinstance(value, list):
        return [copy_value(v) for v in value]
    if isinstance(value, dict):
        return {k: copy_value(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return set(value)
    raise ValidationError(f"unsupported attribute value: {value!r}")


def copy_item(item: dict[str, Any]) -> dict[str, Any]:
    return {name: copy_value(value) for name, value in item.items()}


def value_size(value: Any) -> int:
    """Approximate DynamoDB on-disk size of a single value, in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        # DynamoDB numbers cost roughly (significant digits)/2 + 1; a
        # simple string-length proxy is close enough for metering.
        return max(1, len(str(value)) // 2 + 1)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 3 + sum(1 + value_size(v) for v in value)
    if isinstance(value, dict):
        return 3 + sum(len(k.encode("utf-8")) + value_size(v) + 1
                       for k, v in value.items())
    if isinstance(value, (set, frozenset)):
        return 3 + sum(value_size(v) for v in value)
    raise ValidationError(f"unsupported attribute value: {value!r}")


def item_size(item: dict[str, Any]) -> int:
    """Approximate stored size of an item (names + values), in bytes."""
    return sum(len(name.encode("utf-8")) + value_size(value)
               for name, value in item.items())


def compare_values(left: Any, right: Any) -> int:
    """Three-way comparison used by condition expressions.

    Only values of comparable types may be ordered; mixed-type comparisons
    raise ``ValidationError`` (DynamoDB rejects them too). Numbers compare
    numerically across int/float.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
        raise ValidationError(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, bytes) and isinstance(right, bytes):
        return (left > right) - (left < right)
    raise ValidationError(f"cannot compare {left!r} with {right!r}")
