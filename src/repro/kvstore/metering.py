"""Request metering: read/write units, bytes moved, dollar estimates.

The paper's §7.3 reports Beldi's overheads in storage bytes, network bytes
fetched by scans, and marginal dollar cost per operation in DynamoDB's
on-demand mode ($2.5e-7 per read, $1.25e-6 per write). This module meters
every store operation so those numbers can be regenerated from a run.

Reads carry a *consistency mode*, mirroring DynamoDB's pricing knob: a
strongly consistent read costs one read unit per 4 KB, an eventually
consistent one half that (strong reads cost 2x — the trade §2.2 pays for
by assuming strong consistency everywhere). Eventual reads are counted
separately (``OpRecord.eventual_count``, :attr:`Metering.per_table_eventual`)
so a run can *prove* which reads were allowed off the leader.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

READ_UNIT_BYTES = 4 * 1024
WRITE_UNIT_BYTES = 1024
# On-demand pricing used in the paper (us-east-1, 2020).
DOLLARS_PER_READ_UNIT = 2.5e-7
DOLLARS_PER_WRITE_UNIT = 1.25e-6
# DynamoDB charges eventually consistent reads half a unit per 4 KB.
EVENTUAL_READ_UNIT_FACTOR = 0.5

EVENTUAL = "eventual"
STRONG = "strong"


def normalize_consistency(consistency) -> Optional[str]:
    """Canonicalize a consistency argument to ``"eventual"`` or ``None``.

    Accepts ``None``, the strings ``"strong"``/``"eventual"``, or any
    enum-like object whose ``value`` is one of those (e.g.
    :class:`~repro.kvstore.replication.ReadConsistency`). ``None`` means
    strong — the default everywhere, so legacy callers are untouched.
    """
    if consistency is None:
        return None
    value = getattr(consistency, "value", consistency)
    if value == STRONG:
        return None
    if value == EVENTUAL:
        return EVENTUAL
    raise ValueError(f"unknown read consistency {consistency!r}")


@dataclass
class OpRecord:
    """Counters for one operation kind.

    ``count`` is the number of *round trips* (requests billed against the
    provider's request-rate limits); ``items`` is the number of rows those
    requests touched. For point operations the two match; for batched and
    ranged operations (``batch_get``, ``query``, ``scan``) ``items`` grows
    while ``count`` does not — which is precisely the fast path's win.
    """

    count: int = 0
    items: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_units: float = 0.0
    write_units: float = 0.0
    #: How many of ``count`` were eventually consistent reads (priced at
    #: half a unit; see module docstring). Always 0 for writes.
    eventual_count: int = 0


@dataclass
class Metering:
    """Accumulates per-operation counters for a store."""

    ops: dict = field(default_factory=dict)
    per_table: Counter = field(default_factory=Counter)
    #: Requests per table that were served at eventual consistency — the
    #: counter the replication gates use to verify every DAAL/txn/GC
    #: correctness read stayed leader-routed (no log/intent table may
    #: ever appear here).
    per_table_eventual: Counter = field(default_factory=Counter)
    enabled: bool = True

    def record_read(self, op: str, table: str, nbytes: int,
                    items: int = 1,
                    consistency: Optional[str] = None) -> None:
        if not self.enabled:
            return
        rec = self.ops.setdefault(op, OpRecord())
        rec.count += 1
        rec.items += max(items, 1)
        rec.bytes_read += nbytes
        units = max(items, 1) * max(1.0, nbytes / READ_UNIT_BYTES / max(
            items, 1))
        if normalize_consistency(consistency) == EVENTUAL:
            units *= EVENTUAL_READ_UNIT_FACTOR
            rec.eventual_count += 1
            self.per_table_eventual[table] += 1
        rec.read_units += units
        self.per_table[table] += 1

    def record_write(self, op: str, table: str, nbytes: int) -> None:
        if not self.enabled:
            return
        rec = self.ops.setdefault(op, OpRecord())
        rec.count += 1
        rec.items += 1
        rec.bytes_written += nbytes
        rec.write_units += max(1.0, nbytes / WRITE_UNIT_BYTES)
        self.per_table[table] += 1

    def record_batch_write(self, op: str, table: str,
                           sizes: Sequence[int]) -> None:
        """One batched round trip covering ``len(sizes)`` written rows.

        Write units are billed per item exactly as the sequential path
        would (``max(1, bytes/1KB)`` each — DynamoDB prices
        ``BatchWriteItem`` identically to the individual writes); only
        the request ``count`` drops to one, which is precisely the
        batching win the fast-path gates measure.
        """
        if not self.enabled:
            return
        rec = self.ops.setdefault(op, OpRecord())
        rec.count += 1
        rec.items += max(len(sizes), 1)
        rec.bytes_written += sum(sizes)
        rec.write_units += sum(
            max(1.0, nbytes / WRITE_UNIT_BYTES) for nbytes in sizes)
        self.per_table[table] += 1

    # -- rollups --------------------------------------------------------------
    def total(self, field_name: str) -> float:
        return sum(getattr(rec, field_name) for rec in self.ops.values())

    @property
    def op_count(self) -> int:
        return int(self.total("count"))

    @property
    def bytes_read(self) -> int:
        return int(self.total("bytes_read"))

    @property
    def bytes_written(self) -> int:
        return int(self.total("bytes_written"))

    def dollar_cost(self) -> float:
        """Marginal request cost in on-demand mode."""
        return (self.total("read_units") * DOLLARS_PER_READ_UNIT
                + self.total("write_units") * DOLLARS_PER_WRITE_UNIT)

    def read_dollars(self) -> float:
        """The read side of the bill alone — what the consistency knob
        moves (writes always go through the leader at full price)."""
        return self.total("read_units") * DOLLARS_PER_READ_UNIT

    def totals(self) -> dict:
        """Cross-op rollup (requests, units, dollars) — the shape the
        observability snapshot and bench JSON reports embed."""
        return {
            "dollars": round(self.dollar_cost(), 9),
            "eventual_reads": int(self.total("eventual_count")),
            "items": int(self.total("items")),
            "read_units": round(self.total("read_units"), 3),
            "requests": self.op_count,
            "write_units": round(self.total("write_units"), 3),
        }

    def snapshot(self) -> dict:
        """A plain-dict view, convenient for bench reporting."""
        return {
            op: {
                "count": rec.count,
                "items": rec.items,
                "bytes_read": rec.bytes_read,
                "bytes_written": rec.bytes_written,
                "read_units": round(rec.read_units, 3),
                "write_units": round(rec.write_units, 3),
                "eventual_count": rec.eventual_count,
            }
            for op, rec in sorted(self.ops.items())
        }

    def diff(self, baseline: "Metering") -> dict:
        """Counters accumulated since ``baseline`` was snapshotted."""
        out: dict = {}
        for op, rec in self.ops.items():
            base = baseline.ops.get(op, OpRecord())
            delta = OpRecord(
                count=rec.count - base.count,
                items=rec.items - base.items,
                bytes_read=rec.bytes_read - base.bytes_read,
                bytes_written=rec.bytes_written - base.bytes_written,
                read_units=rec.read_units - base.read_units,
                write_units=rec.write_units - base.write_units,
                eventual_count=rec.eventual_count - base.eventual_count)
            if delta.count:
                out[op] = delta
        return out

    def merge_from(self, other: "Metering") -> None:
        """Accumulate another book into this one (fleet/group rollups)."""
        for op, rec in other.ops.items():
            out = self.ops.setdefault(op, OpRecord())
            out.count += rec.count
            out.items += rec.items
            out.bytes_read += rec.bytes_read
            out.bytes_written += rec.bytes_written
            out.read_units += rec.read_units
            out.write_units += rec.write_units
            out.eventual_count += rec.eventual_count
        self.per_table.update(other.per_table)
        self.per_table_eventual.update(other.per_table_eventual)

    def copy(self) -> "Metering":
        clone = Metering(enabled=self.enabled)
        for op, rec in self.ops.items():
            clone.ops[op] = OpRecord(rec.count, rec.items,
                                     rec.bytes_read, rec.bytes_written,
                                     rec.read_units, rec.write_units,
                                     rec.eventual_count)
        clone.per_table = Counter(self.per_table)
        clone.per_table_eventual = Counter(self.per_table_eventual)
        return clone

    def reset(self) -> None:
        self.ops.clear()
        self.per_table.clear()
        self.per_table_eventual.clear()
