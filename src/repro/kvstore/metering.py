"""Request metering: read/write units, bytes moved, dollar estimates.

The paper's §7.3 reports Beldi's overheads in storage bytes, network bytes
fetched by scans, and marginal dollar cost per operation in DynamoDB's
on-demand mode ($2.5e-7 per read, $1.25e-6 per write). This module meters
every store operation so those numbers can be regenerated from a run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

READ_UNIT_BYTES = 4 * 1024
WRITE_UNIT_BYTES = 1024
# On-demand pricing used in the paper (us-east-1, 2020).
DOLLARS_PER_READ_UNIT = 2.5e-7
DOLLARS_PER_WRITE_UNIT = 1.25e-6


@dataclass
class OpRecord:
    """Counters for one operation kind.

    ``count`` is the number of *round trips* (requests billed against the
    provider's request-rate limits); ``items`` is the number of rows those
    requests touched. For point operations the two match; for batched and
    ranged operations (``batch_get``, ``query``, ``scan``) ``items`` grows
    while ``count`` does not — which is precisely the fast path's win.
    """

    count: int = 0
    items: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_units: float = 0.0
    write_units: float = 0.0


@dataclass
class Metering:
    """Accumulates per-operation counters for a store."""

    ops: dict = field(default_factory=dict)
    per_table: Counter = field(default_factory=Counter)
    enabled: bool = True

    def record_read(self, op: str, table: str, nbytes: int,
                    items: int = 1) -> None:
        if not self.enabled:
            return
        rec = self.ops.setdefault(op, OpRecord())
        rec.count += 1
        rec.items += max(items, 1)
        rec.bytes_read += nbytes
        units = max(items, 1) * max(1.0, nbytes / READ_UNIT_BYTES / max(
            items, 1))
        rec.read_units += units
        self.per_table[table] += 1

    def record_write(self, op: str, table: str, nbytes: int) -> None:
        if not self.enabled:
            return
        rec = self.ops.setdefault(op, OpRecord())
        rec.count += 1
        rec.items += 1
        rec.bytes_written += nbytes
        rec.write_units += max(1.0, nbytes / WRITE_UNIT_BYTES)
        self.per_table[table] += 1

    # -- rollups --------------------------------------------------------------
    def total(self, field_name: str) -> float:
        return sum(getattr(rec, field_name) for rec in self.ops.values())

    @property
    def op_count(self) -> int:
        return int(self.total("count"))

    @property
    def bytes_read(self) -> int:
        return int(self.total("bytes_read"))

    @property
    def bytes_written(self) -> int:
        return int(self.total("bytes_written"))

    def dollar_cost(self) -> float:
        """Marginal request cost in on-demand mode."""
        return (self.total("read_units") * DOLLARS_PER_READ_UNIT
                + self.total("write_units") * DOLLARS_PER_WRITE_UNIT)

    def snapshot(self) -> dict:
        """A plain-dict view, convenient for bench reporting."""
        return {
            op: {
                "count": rec.count,
                "items": rec.items,
                "bytes_read": rec.bytes_read,
                "bytes_written": rec.bytes_written,
                "read_units": round(rec.read_units, 3),
                "write_units": round(rec.write_units, 3),
            }
            for op, rec in sorted(self.ops.items())
        }

    def diff(self, baseline: "Metering") -> dict:
        """Counters accumulated since ``baseline`` was snapshotted."""
        out: dict = {}
        for op, rec in self.ops.items():
            base = baseline.ops.get(op, OpRecord())
            delta = OpRecord(
                count=rec.count - base.count,
                items=rec.items - base.items,
                bytes_read=rec.bytes_read - base.bytes_read,
                bytes_written=rec.bytes_written - base.bytes_written,
                read_units=rec.read_units - base.read_units,
                write_units=rec.write_units - base.write_units)
            if delta.count:
                out[op] = delta
        return out

    def copy(self) -> "Metering":
        clone = Metering(enabled=self.enabled)
        for op, rec in self.ops.items():
            clone.ops[op] = OpRecord(rec.count, rec.items,
                                     rec.bytes_read, rec.bytes_written,
                                     rec.read_units, rec.write_units)
        clone.per_table = Counter(self.per_table)
        return clone

    def reset(self) -> None:
        self.ops.clear()
        self.per_table.clear()
