"""Hot-shard elasticity: live chain migration and skew detection.

PR 2 made uniform traffic scale by partitioning the store; a Zipf-skewed
key population defeats it — consistent hashing pins the hottest items to
whatever shard their hash picked, and that shard's ``ServiceCapacity``
queue caps the whole fleet's throughput. Netherite (arXiv:2103.00033)
and the transactional-dataflow line (arXiv:2512.17429) both make the
same observation: partition *ownership must move* under load imbalance,
without giving up exactly-once semantics. This module is that movement
for the linked DAAL:

:class:`ChainMigrator`
    Moves one ``(table, partition key)``'s complete row set — the DAAL
    chain with its embedded write logs, orphan rows, lock markers, and
    (when the controller asks) the item's shadow chain — from its
    current owner node to a target node, then installs a **forwarding
    entry** in the :class:`~repro.kvstore.sharding.HashRing` so routing
    follows the move. On a replicated store the nodes are
    :class:`~repro.kvstore.replication.ReplicaGroup`\\ s, so a group
    migrates as a unit: the copy commits on the target's leader and
    ships to its followers through the ordinary replication log, and the
    source's deletes ship as tombstones.

:class:`ElasticityController`
    The hot-partition detector. Samples per-shard routed-op counts (and
    leader queue backlog) kept by
    :meth:`~repro.kvstore.sharding.ShardedStore.enable_elasticity`,
    and when one shard's share of the observation window exceeds a
    load-ratio threshold, asks the ring for a
    :meth:`~repro.kvstore.sharding.HashRing.plan_rebalance` over the
    per-key heat map and executes the plan's moves.

Migration protocol (and why it is linearizable and crash-recoverable)
---------------------------------------------------------------------

Each move is driven by a durable **migration record** in the store-level
``__migrations__`` table, written through the normal conditional-write
path (so it meters, pays latency, and replicates like any other row):

``copy``       record exists, rows may be partially copied to the
               target; **routing still points at the source**, which
               remains authoritative. A crash here is rolled *back*
               (target partial copy deleted, record reverted).
``committed``  the copy is complete and the ring's forwarding entry
               points at the target; the source's rows are stale
               leftovers awaiting deletion. A crash here is rolled
               *forward* (source rows deleted, record marked done).
``done``       the move is finished; the record persists as the durable
               twin of the in-memory forwarding entry.

Concurrency safety rests on three mechanisms in
:class:`~repro.kvstore.sharding.ShardedStore`:

- a per-token **latch** blocks new inline operations on the moving item
  for the duration of the move (they wait in virtual time — the stall a
  real resharding imposes);
- the migrator **drains in-flight** inline operations (and whole-table
  scans) before copying, so no operation that resolved its node before
  the move can mutate the source afterwards;
- the copy + record flip + forward installation run inside one
  :func:`~repro.kvstore.asyncio.overlap` scope, which is **atomic in
  virtual time** — concurrent overlap-scope bodies (themselves atomic)
  therefore serialize entirely before the copy (and are captured by it)
  or after it (and route to the target). With ``async_io`` off no scope
  exists anywhere, and the latch + drain alone provide the exclusion.

A crash (``ProcessCrashed`` at one of the migration's explicit crash
points) releases the in-memory latch on the way out — the worker's
memory dies with it — and leaves the durable record mid-phase; recovery
is performed by whoever sees the record next: the GC's periodic
:func:`recover_stale_migrations` pass, or the next migration attempt for
the same token. Lock-set records (keyed by transaction id) and the
read/invoke logs (keyed by instance id) route by their own keys and need
no movement; the chain's embedded ``LockOwner`` markers and write-log
entries travel inside the rows.

The exhaustive crash sweep's ``fastpath-on-elastic`` variant forces a
migration mid-request and re-runs the workflow once per crash point —
including the points inside the migration itself — asserting
exactly-once effects, atomicity, a residue-free store, and (via
:func:`placement_residue`) that every row sits exactly where routing
says it should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.kvstore.asyncio import overlap
from repro.kvstore.errors import (ConditionFailed, ThrottledError,
                                  UnavailableError)
from repro.kvstore.expressions import AttrNotExists, Eq, Set
from repro.kvstore.item import item_size
from repro.kvstore.metering import Metering
from repro.kvstore.store import batch_write_all

#: Store-level table holding one durable record per migrated route token.
MIGRATIONS_TABLE = "__migrations__"

PHASE_COPY = "copy"
PHASE_COMMITTED = "committed"
PHASE_DONE = "done"


@dataclass
class MigrationStats:
    """Observability counters for one migrator.

    ``metering`` mirrors the request units the migration traffic added
    to the node books (same formulas, same pricing), so benchmarks can
    report the move cost separately from the workload's own $/op.
    """

    migrations: int = 0          # tokens moved to a committed new owner
    rows_moved: int = 0
    rolled_back: int = 0         # crashed copies undone
    rolled_forward: int = 0      # crashed cleanups completed
    skipped: int = 0             # moves abandoned (contention, throttle)
    metering: Metering = field(default_factory=Metering)

    def dollars(self) -> float:
        return self.metering.dollar_cost()


class ChainMigrator:
    """Live mover of DAAL chains between the shards of one store."""

    def __init__(self, store, async_io: bool = False,
                 on_moved: Optional[Callable[[str, Any], None]] = None
                 ) -> None:
        self.store = store
        self.async_io = async_io
        #: Called as ``on_moved(table, key)`` after each committed move —
        #: the runtime invalidates the §4.4 tail cache through this.
        self.on_moved = on_moved
        self.stats = MigrationStats()
        store.enable_elasticity()
        store.ensure_table(MIGRATIONS_TABLE, hash_key="Token")

    # -- bookkeeping helpers ---------------------------------------------------
    def _token(self, table: str, key: Any) -> str:
        return self.store._route_token(
            table, self.store._partition_value(table, key))

    def _meter_write(self, op: str, nbytes: int) -> None:
        self.stats.metering.record_write(op, MIGRATIONS_TABLE, nbytes)

    # -- the public entry ------------------------------------------------------
    def migrate(self, moves: Sequence[tuple], ctx=None) -> int:
        """Move each ``(table, key, target_shard)`` to its target.

        Returns the number of tokens committed to a new owner. ``ctx``
        (an invocation context) threads the crash-point instrumentation
        through; migrations triggered outside any invocation pass
        ``None`` and simply cannot crash. Contended tokens (already
        latched by a concurrent move) and moves to the current owner are
        skipped, not errors.
        """
        store = self.store
        work = []
        tables = set()
        seen: set = set()
        for table, key, target in moves:
            if not 0 <= target < store.n_shards:
                raise ValueError(f"no shard {target}")
            token = self._token(table, key)
            if token in seen:
                # One batch, one move per token: a duplicate would
                # find the first entry's record live mid-batch and
                # "recover" it onto a third shard. First entry wins.
                self.stats.skipped += 1
                continue
            seen.add(token)
            if token in store._latched:
                self.stats.skipped += 1
                continue
            if store.ring.shard_of(token) == target:
                continue
            work.append((token, table, key, target))
            tables.add(table)
        if not work:
            return 0
        store._migration_epoch = getattr(store, "_migration_epoch",
                                         0) + 1
        for token, *_ in work:
            store._latched.add(token)
        for table in tables:
            store._migrating_tables[table] = (
                store._migrating_tables.get(table, 0) + 1)
        try:
            return self._migrate_latched(work, tables, ctx)
        finally:
            for table in tables:
                remaining = store._migrating_tables.get(table, 0) - 1
                if remaining > 0:
                    store._migrating_tables[table] = remaining
                else:
                    store._migrating_tables.pop(table, None)
            for token, *_ in work:
                store._latched.discard(token)

    def _migrate_latched(self, work, tables, ctx) -> int:
        store = self.store
        # Drain: no inline operation that resolved its node before this
        # point may still be in flight on a moving token (or scanning a
        # moving table) when the copy runs.
        store._await(lambda: not any(
            store._inflight.get(token, 0) for token, *_ in work)
            and not any(store._table_inflight.get(table, 0)
                        for table in tables))
        if ctx is not None:
            ctx.crash_point("migrate:start")
        # Phase 1 — durable intent: one record per token, phase="copy",
        # via ordinary conditional writes (a crashed attempt's record is
        # recovered first, so the conditions never fight a corpse).
        prepared = []
        for token, table, key, target in work:
            source = self._prepare(token, table, key, target)
            if source is not None:
                prepared.append((token, table, key, source, target))
            else:
                self.stats.skipped += 1
        if ctx is not None and prepared:
            ctx.crash_point("migrate:prepared")
        if not prepared:
            return 0
        # Phase 2 — copy + flip, atomic in virtual time under async_io
        # (one overlap scope; mutations land at the issue instant, the
        # deferred latency is slept on exit). With async_io off the
        # latch + drain provide the exclusion instead.
        committed = []
        with overlap(store, enabled=self.async_io) as scope:
            for token, table, key, source, target in prepared:
                with scope.branch():
                    row_keys = self._copy(token, table, key, source,
                                          target)
                    committed.append(
                        (token, table, key, source, target, row_keys))
        if ctx is not None:
            ctx.crash_point("migrate:committed")
        # Phase 3 — retire the source copies and close the records.
        with overlap(store, enabled=self.async_io) as scope:
            for token, table, key, source, target, row_keys in committed:
                with scope.branch():
                    self._cleanup(token, table, source, row_keys)
        if ctx is not None and committed:
            ctx.crash_point("migrate:done")
        for token, table, key, *_ in committed:
            if self.on_moved is not None:
                self.on_moved(table, key)
        self.stats.migrations += len(committed)
        obs = getattr(self.store, "obs", None)
        if obs is not None and committed:
            obs.tracer.event(
                "migration:committed", cat="elasticity",
                moves=[[table, str(target)] for _token, table, _key,
                       _source, target, _rows in committed])
            obs.metrics.inc("elasticity.migrations", len(committed))
        return len(committed)

    # -- phases ----------------------------------------------------------------
    def _prepare(self, token: str, table: str, key: Any,
                 target: int) -> Optional[int]:
        """Create/advance the durable record to ``copy``; returns the
        source shard, or ``None`` when the move should be skipped."""
        store = self.store
        record = store.get(MIGRATIONS_TABLE, token)
        if record is not None and record["Phase"] != PHASE_DONE:
            # A predecessor crashed mid-move; put the world back first.
            self.recover(record)
            record = store.get(MIGRATIONS_TABLE, token)
        source = store.ring.shard_of(token)
        if source == target:
            return None
        now = store.nodes[0].time.now()
        try:
            if record is None:
                item = {"Token": token, "Table": table, "Key": key,
                        "Source": source, "Target": target,
                        "Phase": PHASE_COPY, "StartedAt": now}
                store.put(MIGRATIONS_TABLE, item,
                          condition=AttrNotExists("Token"))
                self._meter_write("migrate_meta", item_size(item))
            else:
                store.update(MIGRATIONS_TABLE, token,
                             [Set("Source", source),
                              Set("Target", target),
                              Set("Phase", PHASE_COPY),
                              Set("StartedAt", now)],
                             condition=Eq("Phase", PHASE_DONE))
                self._meter_write("migrate_meta", item_size(record))
        except (ConditionFailed, ThrottledError, UnavailableError):
            return None
        return source

    def _copy(self, token: str, table: str, key: Any, source: int,
              target: int) -> list:
        """Copy every row of the item (reachable chain, orphans, lock
        markers — the lot) to the target, then flip record + ring."""
        store = self.store
        result = store.nodes[source].query(table, key)
        rows = result.items
        self.stats.metering.record_read(
            "migrate_read", table,
            sum(item_size(row) for row in rows),
            items=max(1, len(rows)))
        if rows:
            batch_write_all(_NodeTable(store.nodes[target], table),
                            table, puts=rows)
            self.stats.metering.record_batch_write(
                "migrate_write", table,
                [item_size(row) for row in rows])
        store.update(MIGRATIONS_TABLE, token,
                     [Set("Phase", PHASE_COMMITTED)],
                     condition=Eq("Phase", PHASE_COPY))
        self._meter_write("migrate_meta", 64)
        # In the same (yield-free) step as the record flip: routing.
        store.ring.set_forward(token, target)
        self.stats.rows_moved += len(rows)
        schema = store._schemas[table]
        return [schema.extract(row) for row in rows]

    def _cleanup(self, token: str, table: str, source: int,
                 row_keys: list) -> None:
        if row_keys:
            batch_write_all(_NodeTable(self.store.nodes[source], table),
                            table, deletes=row_keys)
            self.stats.metering.record_batch_write(
                "migrate_delete", table, [0] * len(row_keys))
        self.store.update(MIGRATIONS_TABLE, token,
                          [Set("Phase", PHASE_DONE)],
                          condition=Eq("Phase", PHASE_COMMITTED))
        self._meter_write("migrate_meta", 64)

    # -- recovery --------------------------------------------------------------
    def recover(self, record: dict) -> bool:
        """Roll a crashed migration forward or back from its record.

        ``copy`` rolls back: the source never stopped being
        authoritative, so the target's partial rows are deleted and the
        record reverts to its pre-move state (``done`` at the source if
        the source itself was a forwarded placement, gone otherwise).
        ``committed`` rolls forward: routing already points at the
        target, so the source's leftover rows are deleted and the record
        closes. Returns whether anything had to be done.
        """
        store = self.store
        token = record["Token"]
        table, key = record["Table"], record["Key"]
        phase = record["Phase"]
        if phase == PHASE_DONE:
            return False
        if phase == PHASE_COPY:
            self._delete_all_rows(record["Target"], table, key)
            self._meter_write("migrate_meta", 64)
            try:
                if store.ring._forwards.get(token) == record["Source"]:
                    # The source placement was itself a forwarded one:
                    # the record must survive as its durable twin.
                    store.update(MIGRATIONS_TABLE, token,
                                 [Set("Phase", PHASE_DONE),
                                  Set("Target", record["Source"])],
                                 condition=Eq("Phase", PHASE_COPY))
                else:
                    store.delete(MIGRATIONS_TABLE, token,
                                 condition=Eq("Phase", PHASE_COPY))
            except ConditionFailed:
                return False  # a concurrent recovery beat us to it
            self.stats.rolled_back += 1
            return True
        # committed: finish the job the crashed worker started.
        store.ring.set_forward(token, record["Target"])
        self._delete_all_rows(record["Source"], table, key)
        self._meter_write("migrate_meta", 64)
        try:
            store.update(MIGRATIONS_TABLE, token,
                         [Set("Phase", PHASE_DONE)],
                         condition=Eq("Phase", PHASE_COMMITTED))
        except ConditionFailed:
            return False
        if self.on_moved is not None:
            self.on_moved(table, key)
        self.stats.rolled_forward += 1
        return True

    def _delete_all_rows(self, shard: int, table: str, key: Any) -> None:
        # Recovery traffic mirrors into the migration book exactly like
        # the happy path's copy/cleanup — the "$/op flat modulo
        # separately-metered migration writes" accounting must cover
        # rolled-back and rolled-forward moves too.
        node = self.store.nodes[shard]
        result = node.query(table, key)
        self.stats.metering.record_read(
            "migrate_read", table,
            sum(item_size(row) for row in result.items),
            items=max(1, len(result.items)))
        schema = self.store._schemas[table]
        row_keys = [schema.extract(row) for row in result.items]
        if row_keys:
            batch_write_all(_NodeTable(node, table), table,
                            deletes=row_keys)
            self.stats.metering.record_batch_write(
                "migrate_delete", table, [0] * len(row_keys))


class _NodeTable:
    """Adapter pinning ``batch_write_all``'s store argument to one node.

    ``batch_write_all`` speaks the plain store surface; the migrator
    must address a *specific* node (the copy's target, the cleanup's
    source) rather than let the facade re-route mid-move.
    """

    def __init__(self, node, table: str) -> None:
        self._node = node
        self._table = table

    def batch_write(self, table: str, puts=(), deletes=()):
        return self._node.batch_write(table, puts, deletes)

    def put(self, table: str, item, condition=None):
        return self._node.put(table, item, condition=condition)

    def delete(self, table: str, key, condition=None):
        return self._node.delete(table, key, condition=condition)


def recover_stale_migrations(store, migrator: Optional[ChainMigrator]
                             = None) -> int:
    """GC hook: roll every crashed (unlatched, non-``done``) migration
    forward or back. Tokens still latched belong to a live move and are
    left alone. Returns the number of records recovered.

    Epoch-gated: the migrator bumps ``store._migration_epoch`` once per
    attempt, and a completed sweep remembers the epoch it covered — so
    a GC cycle with no new migration activity skips the (metered)
    record scan entirely instead of billing a steady-state tax.
    """
    if getattr(store, "heat", None) is None:
        return 0
    if MIGRATIONS_TABLE not in getattr(store, "_schemas", {}):
        return 0
    # Both default 0: a store that never migrated anything must skip
    # the scan outright, or an elastic-but-idle runtime's first GC pass
    # would pay latency and read units PR 4 never paid.
    epoch = getattr(store, "_migration_epoch", 0)
    if epoch == getattr(store, "_migration_epoch_swept", 0):
        return 0
    if migrator is None:
        migrator = ChainMigrator(store)
    recovered = 0
    skipped_live = False
    scan = store.scan(MIGRATIONS_TABLE)
    for record in scan.items:
        if record["Phase"] == PHASE_DONE:
            continue
        if record["Token"] in store._latched:
            skipped_live = True
            continue
        if migrator.recover(record):
            recovered += 1
    if not skipped_live:
        store._migration_epoch_swept = epoch
    return recovered


def placement_residue(store) -> list:
    """Rows living on a node that routing does not map them to.

    The invariant a correct migration history maintains: for every data
    table, every row's partition key routes (hash + forwards) to exactly
    the node storing it. Mid-``copy`` target rows and
    mid-``committed`` source leftovers show up here — after recovery
    the list must be empty. Test/assert helper; scans node state
    directly (no latency, no metering).
    """
    residue = []
    for table, schema in getattr(store, "_schemas", {}).items():
        if table == MIGRATIONS_TABLE:
            continue
        for shard, node in enumerate(store.nodes):
            seen = set()
            for row in node._tables[table].scan().items:
                value = row[schema.hash_key]
                token = repr(value)
                if token in seen:
                    continue
                seen.add(token)
                if store.shard_for(table, value) != shard:
                    residue.append((table, value, shard))
    return residue


class ElasticityController:
    """Hot-partition detector: watch per-shard load, trigger rebalances.

    ``tick()`` is called by the runtime once per logged Beldi operation
    (a pure-python counter bump). Every ``check_every`` ticks it looks
    at the routed-op window since the last decision; when the window is
    big enough to trust (``min_window``) and the hottest shard carries
    more than ``load_ratio`` times the mean, it plans token moves over
    the per-key heat map and executes them — migrating each data chain
    together with its shadow-table twin. Below the trigger it draws no
    randomness, pays no latency, and touches no store state, so an
    elastic-but-balanced runtime is bit-for-bit a static one.
    """

    def __init__(self, store, migrator: ChainMigrator,
                 check_every: int = 64, min_window: int = 2500,
                 load_ratio: float = 1.5, max_moves: int = 8,
                 tolerance: float = 0.2) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        store.enable_elasticity()
        self.store = store
        self.migrator = migrator
        self.check_every = check_every
        self.min_window = min_window
        self.load_ratio = load_ratio
        self.max_moves = max_moves
        self.tolerance = tolerance
        self._ticks = 0
        self._busy = False
        self._baseline = list(store.shard_ops)
        self.rebalances = 0      # triggered plan executions
        self.checks = 0          # windows actually evaluated
        self.last_ratio: Optional[float] = None

    # -- sampling --------------------------------------------------------------
    def window(self) -> list:
        """Routed ops per shard since the last rebalance decision."""
        return [current - base for current, base
                in zip(self.store.shard_ops, self._baseline)]

    def queue_backlog(self) -> list:
        """Per-shard leader queue busy horizon (virtual ms from now) —
        the second skew signal next to op counts."""
        now = self.store.nodes[0].time.now()
        backlog = []
        for node in self.store.nodes:
            queue = getattr(node, "queue", None)
            backlog.append(max(0.0, queue.busy_until() - now)
                           if queue is not None else 0.0)
        return backlog

    def _reset_window(self) -> None:
        self._baseline = list(self.store.shard_ops)
        self.store.heat.clear()

    # -- the per-op hook -------------------------------------------------------
    def tick(self, ctx=None) -> None:
        if self.store.n_shards < 2 or self._busy:
            return
        self._ticks += 1
        if self._ticks % self.check_every:
            return
        window = self.window()
        total = sum(window)
        if total < self.min_window:
            return
        self.checks += 1
        mean = total / len(window)
        self.last_ratio = max(window) / mean if mean else 0.0
        if self.last_ratio <= self.load_ratio:
            # Second skew signal: a shard can be queue-saturated while
            # op counts look even (few-but-expensive operations).
            # Consulted only when the op window already leans the same
            # way (at least halfway to the trigger) so a momentarily
            # lumpy queue cannot thrash a balanced fleet, and only
            # when nodes actually have work queued — with no capacity
            # queues (or idle ones) backlog is all zeros and this is
            # inert, so the bit-for-bit pins hold.
            halfway = 1.0 + (self.load_ratio - 1.0) / 2.0
            backlog = (self.queue_backlog()
                       if self.last_ratio > halfway else [])
            backlog_mean = (sum(backlog) / len(backlog)
                            if backlog else 0.0)
            if (backlog_mean <= 0.0
                    or max(backlog) <= self.load_ratio * backlog_mean):
                self._reset_window()
                return
            self.last_ratio = max(backlog) / backlog_mean
        self._busy = True
        moved = 0
        try:
            moved = self._rebalance(ctx)
        except (ThrottledError, UnavailableError):
            # An injected fault mid-move (throttle or scheduled outage)
            # abandons the move; recovery rolls back the durable record.
            # Background placement work must never kill the foreground
            # request whose step ticked it.
            pass
        finally:
            self._busy = False
            if moved:
                self._reset_window()
            # An over-threshold window with no productive move (e.g.
            # one mega-key dominating it) keeps accumulating: a richer
            # heat map is what eventually makes a move productive.

    def _rebalance(self, ctx) -> int:
        store = self.store
        loads: dict[str, float] = {}
        units: dict[str, tuple] = {}
        for (table, key), count in store.heat.items():
            if not self._migratable(table):
                continue
            token = store._route_token(table, key)
            loads[token] = loads.get(token, 0) + count
            units[token] = (table, key)
        plan = store.ring.plan_rebalance(loads,
                                         tolerance=self.tolerance,
                                         max_moves=self.max_moves)
        if not plan:
            return 0
        moves = []
        planned = {token for token, *_ in plan}
        for token, _source, target in plan:
            table, key = units[token]
            moves.append((table, key, target))
            if table.endswith(".shadow"):
                continue  # planned directly; no twin to derive
            shadow = f"{table}.shadow"
            if store._route_token(shadow, key) in planned:
                continue  # the shadow was planned on its own merit
            if shadow in store._schemas:
                # The item's transaction scratch chain travels with it —
                # but only if it has rows. An empty shadow needs no
                # placement pin (correctness is placement-independent;
                # co-location is a locality nicety), and skipping it
                # saves two durable record writes per move. The probe
                # is an ordinary metered read, mirrored into the
                # migration book like every other move cost.
                probe = store.query(shadow, key, limit=1)
                self.migrator.stats.metering.record_read(
                    "migrate_probe", shadow, probe.consumed_bytes,
                    items=max(1, probe.scanned_count))
                if probe.items:
                    moves.append((shadow, key, target))
        moved = self.migrator.migrate(moves, ctx=ctx)
        if moved:
            self.rebalances += 1
        return moved

    @staticmethod
    def _migratable(table: str) -> bool:
        """Only DAAL data/shadow chains move; intent/read/invoke logs
        and lock sets are keyed by instance/transaction id (their own
        placement unit), and the migration table never migrates."""
        if table == MIGRATIONS_TABLE:
            return False
        suffix = table.rsplit(".", 1)[-1]
        return suffix not in ("intent", "readlog", "invokelog",
                              "locksets", "writelog")


__all__ = [
    "ChainMigrator",
    "ElasticityController",
    "MIGRATIONS_TABLE",
    "MigrationStats",
    "placement_residue",
    "recover_stale_migrations",
]
