"""Replicated shards: per-shard replica groups with log shipping.

The paper assumes a durable, strongly consistent store (§2.2) and pays
DynamoDB's price for it: a strongly consistent read costs twice an
eventually consistent one. This module makes that trade *expressible*.
A :class:`ReplicaGroup` wraps one shard's state in a group of one
**leader** plus N **followers**:

- Every write commits on the leader (full latency, full metering), then
  appends a record to the group's durable **replication log** — the
  final row state, Netherite-style log shipping. Each follower applies
  the log in order after a sampled shipping delay (``repl.ship`` in
  ``sim/latency.py``), clamped to ``max_lag`` virtual ms — the *bounded
  replication-lag model*. A follower's state is therefore always a
  prefix-consistent past state of the leader.
- Reads carry a :class:`ReadConsistency`. ``STRONG`` (the default
  everywhere) routes to the leader and prices at one read unit per 4 KB.
  ``EVENTUAL`` routes to a follower — possibly stale within the lag
  bound — and prices at half a unit, exactly DynamoDB's knob. Per-item
  follower affinity (the same item's eventual reads always land on the
  same follower) keeps multi-operation reads such as a DAAL chain
  traversal monotonic.
- A :class:`~repro.kvstore.faults.FaultPolicy` with
  ``leader_crash_probability`` can crash the leader out from under any
  leader-routed operation. The group then **fails over**: every
  follower drains what has shipped, the most-caught-up one is promoted,
  and the unacked suffix of the replication log is replayed onto it
  (paying ``repl.failover`` latency per replayed record). Because the
  log is durable and replayed in full, the promoted leader's state is
  *identical* to the crashed leader's — no acknowledged write is ever
  lost, so the DAAL/txn layers above notice nothing but latency. The
  old node re-joins as a fully caught-up follower (re-replication from
  its intact durable storage).

``replicas=1`` is handled one level up: the runtime simply does not
wrap the shard, so the unreplicated configuration stays bit-for-bit the
plain :class:`~repro.kvstore.sharding.ShardedStore` behavior.

:class:`ReplicatedStore` is a :class:`ShardedStore` whose nodes are
replica groups — all routing, fan-out, and cross-shard transaction
logic is inherited unchanged; the group speaks the node protocol.

With ``async_io=True`` the group additionally **batches log shipping**:
a multi-row commit (a transaction's writes, a ``batch_write``) ships as
one boat per follower — a single sampled ``repl.ship`` delay covers the
whole batch, Netherite-style — and the eventually consistent
``batch_get`` fan-out across followers overlaps its round trips. Off
(the default for hand-built groups) keeps per-record shipping and
sequential fan-outs bit-for-bit.

Invariants this layer must uphold (see ``docs/architecture.md``):

- **Writes are leader-serialized.** Every mutation commits on the
  leader before anything ships; followers apply the log strictly in
  sequence order, so a follower is always a prefix-consistent past
  state of the leader — never a divergent one.
- **Bounded staleness.** A record becomes visible on every follower no
  later than ``max_lag`` after commit (batched boats included), which
  is what makes eventual reads — and the GC's eventual first-pass
  scan — analyzable.
- **Failover loses nothing.** The replication log is durable; promotion
  replays the unacked suffix, so the promoted leader's state is
  identical to the crashed leader's and no acknowledged write is ever
  lost. Layers above observe only latency.
- **Correctness reads stay leader-routed.** Only reads that explicitly
  declare eventual consistency may touch a follower;
  ``Metering.per_table_eventual`` exists to prove protocol tables never
  appear there.
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.kvstore.asyncio import overlap
from repro.kvstore.errors import ThrottledError, UnavailableError
from repro.kvstore.expressions import Condition, Projection
from repro.kvstore.faults import FaultPolicy
from repro.kvstore.metering import Metering, normalize_consistency
from repro.kvstore.sharding import HashRing, ShardedStore, ShardedTableView
from repro.kvstore.store import (
    BatchGetResult,
    BatchWriteResult,
    KVStore,
    TransactOp,
    TransactPut,
)
from repro.kvstore.table import KeySchema, QueryResult, ScanResult, Table
from repro.sim.latency import LatencyModel
from repro.sim.randsrc import RandomSource

#: Default clamp on one record's shipping delay (virtual ms). DynamoDB
#: documents eventual reads as "usually" current within a second; the
#: bound is what makes staleness — and the GC's eventual first-pass scan
#: — analyzable: a follower can never be more than ``max_lag`` behind.
DEFAULT_MAX_LAG_MS = 250.0


class ReadConsistency(enum.Enum):
    """DynamoDB's read-consistency knob.

    ``STRONG`` reads the leader (current state, full price); ``EVENTUAL``
    reads a follower (bounded-stale state, half price). Anything
    accepting a consistency argument also takes the plain strings
    ``"strong"``/``"eventual"`` or ``None`` (= strong).
    """

    STRONG = "strong"
    EVENTUAL = "eventual"


_PUT = "put"
_DELETE = "delete"


@dataclass(frozen=True)
class _LogRecord:
    """One shipped state change: the *final* row (or its tombstone)."""

    seq: int
    kind: str          # _PUT | _DELETE
    table: str
    item: Optional[dict]   # final row state for _PUT
    key: Any               # normalized key tuple for _DELETE


@dataclass
class ReplicationStats:
    """Observability counters for one replica group."""

    shipped: int = 0        # records appended to the replication log
    applied: int = 0        # record applications across all followers
    failovers: int = 0      # leader promotions
    replayed: int = 0       # records replayed during failovers
    eventual_reads: int = 0  # read operations served by a follower

    def merge(self, other: "ReplicationStats") -> None:
        self.shipped += other.shipped
        self.applied += other.applied
        self.failovers += other.failovers
        self.replayed += other.replayed
        self.eventual_reads += other.eventual_reads


class _Follower:
    """Per-follower shipping state: the pending (seq, visible_at) queue."""

    def __init__(self, node: KVStore) -> None:
        self.node = node
        self.applied_seq = 0          # highest log seq applied
        self.pending: deque = deque()  # (_LogRecord, visible_at)
        self.last_visible = 0.0       # enforces in-order visibility


class ReplicatedTableView:
    """Direct (latency-free, unmetered) table access on a replica group.

    The group's answer to ``node.table(name)`` — the same surface a raw
    :class:`~repro.kvstore.table.Table` offers for seeding and test
    peeks, except that mutations also append to the replication log
    (with zero shipping delay: out-of-band writes are immediately
    durable everywhere) so followers never diverge from seeded state.
    """

    def __init__(self, group: "ReplicaGroup", name: str) -> None:
        self._group = group
        self.name = name

    @property
    def _leader_table(self) -> Table:
        return self._group.leader._tables[self.name]

    @property
    def schema(self) -> KeySchema:
        return self._leader_table.schema

    @property
    def max_item_bytes(self) -> int:
        return self._leader_table.max_item_bytes

    @property
    def _indexes(self) -> dict:
        return self._leader_table._indexes

    def add_index(self, name: str, attribute: str) -> None:
        for node in self._group.nodes:
            node._tables[self.name].add_index(name, attribute)

    # -- direct row access -----------------------------------------------------
    def get(self, key: Any,
            projection: Optional[Projection] = None) -> Optional[dict]:
        return self._leader_table.get(key, projection=projection)

    def put(self, item: dict,
            condition: Optional[Condition] = None) -> None:
        self._leader_table.put(item, condition=condition)
        self._group._ship_row(self.name, self.schema.extract(item),
                              immediate=True)

    def update(self, key: Any, updates, condition=None) -> dict:
        new_item = self._leader_table.update(key, updates,
                                             condition=condition)
        self._group._ship_row(self.name, key, immediate=True)
        return new_item

    def delete(self, key: Any, condition=None) -> Optional[dict]:
        removed = self._leader_table.delete(key, condition=condition)
        if removed is not None:
            self._group._ship_row(self.name, key, immediate=True)
        return removed

    # -- stats -----------------------------------------------------------------
    def item_count(self) -> int:
        return self._leader_table.item_count()

    def storage_bytes(self) -> int:
        return self._leader_table.storage_bytes()


class ReplicaGroup:
    """One leader plus N followers behind the single-node protocol.

    Speaks the same surface as :class:`~repro.kvstore.KVStore`, so a
    :class:`~repro.kvstore.sharding.ShardedStore` can use groups as its
    nodes. Writes go to the leader and ship asynchronously; reads route
    by consistency. ``faults.leader_crash_probability`` injects leader
    failover on any leader-routed operation.
    """

    def __init__(self, leader: KVStore, followers: Sequence[KVStore],
                 rand: Optional[RandomSource] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPolicy] = None,
                 max_lag: float = DEFAULT_MAX_LAG_MS,
                 lag_scale: float = 1.0,
                 async_io: bool = False) -> None:
        if max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {max_lag}")
        #: Batch multi-row log shipping (one boat per follower per
        #: commit) and overlap the eventual batch-read fan-out. Off =
        #: per-record shipping and sequential fan-outs, bit-for-bit.
        self.async_io = async_io
        self.nodes: list[KVStore] = [leader, *followers]
        self.leader_index = 0
        # Roles are endpoint-static: failover swaps table *contents*
        # into the leader endpoint, never the nodes themselves, so the
        # labels (which scope role-targeted fault windows) never move.
        leader.replica_role = "leader"
        for node in followers:
            node.replica_role = "follower"
        #: Scheduled fault windows (:class:`FaultTimeline`); the group
        #: consults partition windows when shipping the replication log.
        #: Member nodes hold the same timeline for their own op checks.
        self.timeline = None
        self.rand = rand or RandomSource(0, "replica-group")
        #: Samples ``repl.ship`` / ``repl.failover``; independent of the
        #: member nodes' latency streams so that enabling replication
        #: never perturbs the leader's own draws.
        self.latency = latency or LatencyModel.zero()
        self.faults = faults
        self.max_lag = max_lag
        self.lag_scale = lag_scale
        self.time = leader.time
        self.stats = ReplicationStats()
        #: Observability hub (``repro.obs``); attached by an
        #: observability-enabled runtime, ``None`` otherwise.
        self.obs = None
        #: Sequence number of the last committed record. The durable
        #: log itself is materialized as each follower's ``pending``
        #: deque — exactly the unacked suffix that follower (or a
        #: failover replay) still needs; the fully-acked prefix would
        #: never be read again and is not retained.
        self._next_seq = 0
        self._followers: dict[int, _Follower] = {
            index: _Follower(node)
            for index, node in enumerate(self.nodes) if index != 0}
        self._views: dict[str, ReplicatedTableView] = {}

    # -- roles -----------------------------------------------------------------
    @property
    def leader(self) -> KVStore:
        return self.nodes[self.leader_index]

    @property
    def followers(self) -> list[KVStore]:
        return [node for index, node in enumerate(self.nodes)
                if index != self.leader_index]

    @property
    def n_replicas(self) -> int:
        return len(self.nodes)

    @property
    def shard_id(self) -> Optional[int]:
        return self.leader.shard_id

    @property
    def queue(self):
        """The leader's service-capacity queue (or ``None``).

        Writes and strong reads all funnel through the leader, so its
        queue backlog is the group's saturation signal — what the
        hot-shard detector (:mod:`repro.kvstore.rebalance`) samples.
        When a chain migrates between groups, the whole group moves as
        a unit: the copy commits on the target's leader and reaches its
        followers through the ordinary replication log, the source's
        deletes ship as tombstones, and this queue simply stops seeing
        the item's traffic.
        """
        return self.leader.queue

    # -- node-protocol plumbing used by ShardedStore ---------------------------
    @property
    def _tables(self) -> dict[str, Table]:
        return self.leader._tables

    @property
    def metering(self) -> Metering:
        """Group-wide books: leader plus every follower.

        Followers meter only the (half-price) eventual reads they serve;
        log application is internal replication traffic, unmetered —
        DynamoDB does not bill for it either.
        """
        merged = Metering()
        for node in self.nodes:
            merged.merge_from(node.metering)
        return merged

    def _pay(self, op: str, units: float = 0.0) -> None:
        # Cross-shard 2PC rounds land here; they are leader-routed.
        self._maybe_failover(op)
        self.leader._pay(op, units=units)

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ReplicatedTableView:
        for node in self.nodes:
            node.create_table(name, hash_key, range_key, max_item_bytes)
        view = ReplicatedTableView(self, name)
        self._views[name] = view
        return view

    def ensure_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ReplicatedTableView:
        if name in self._views:
            return self._views[name]
        return self.create_table(name, hash_key, range_key, max_item_bytes)

    def table(self, name: str) -> ReplicatedTableView:
        view = self._views.get(name)
        if view is None:
            # Adopt a table created behind the group's back (defensive;
            # raises TableNotFound if the leader lacks it too).
            self.leader.table(name)
            view = ReplicatedTableView(self, name)
            self._views[name] = view
        return view

    def drop_table(self, name: str) -> None:
        for node in self.nodes:
            node.drop_table(name)
        self._views.pop(name, None)
        # Pending records for a dropped table are void.
        for follower in self._followers.values():
            follower.pending = deque(
                (record, visible) for record, visible in follower.pending
                if record.table != name)

    def table_names(self) -> list[str]:
        return self.leader.table_names()

    # -- the replication log ---------------------------------------------------
    def _partition_value(self, table: str, key: Any) -> Any:
        schema = self.leader._tables[table].schema
        if isinstance(key, dict):
            return key[schema.hash_key]
        if isinstance(key, tuple):
            return key[0]
        return key

    def _follower_index_for(self, token: str) -> int:
        """Stable per-item follower affinity (process-independent)."""
        indexes = [index for index in self._followers
                   if index != self.leader_index]
        digest = int.from_bytes(
            hashlib.md5(token.encode("utf-8")).digest()[:8], "big")
        return indexes[digest % len(indexes)]

    def _ship_records(self, protos: Sequence[tuple], immediate: bool,
                      batched: bool = False) -> None:
        """Commit ``protos`` (``(kind, table, item, key)``) to the log.

        ``batched=False`` reproduces per-record shipping exactly: one
        ``repl.ship`` draw per record per follower, in record order.
        ``batched=True`` (the ``async_io`` boat) draws **one** delay per
        follower for the whole batch — the records travel together,
        Netherite-style — while per-follower in-order visibility (and
        therefore prefix consistency) is preserved by ``last_visible``.
        """
        records = []
        for kind, table, item, key in protos:
            self._next_seq += 1
            records.append(_LogRecord(self._next_seq, kind, table, item,
                                      key))
            self.stats.shipped += 1
        now = self.time.now()
        follower_items = [(index, follower)
                          for index, follower in self._followers.items()
                          if index != self.leader_index]
        # A scheduled leader↔follower partition stalls the shipping
        # channel: records committed during the window leave the leader
        # only once it heals, so follower lag grows unboundedly (past
        # ``max_lag``) and converges through the ordinary pending-queue
        # drain afterwards. Out-of-band (``immediate``) writes bypass
        # the channel, as they bypass its latency.
        ship_base = now
        if (not immediate and self.timeline is not None
                and self.timeline.windows):
            self.timeline.observe(self.leader, now)
            heal = self.timeline.partition_heal_time(now, self.shard_id)
            if heal is not None:
                ship_base = max(ship_base, heal)

        def ship_delay() -> float:
            if immediate or self.lag_scale == 0.0:
                return 0.0
            return min(self.latency.sample("repl.ship") * self.lag_scale,
                       self.max_lag)

        if batched:
            for index, follower in follower_items:
                delay = ship_delay()
                for record in records:
                    visible = max(follower.last_visible, ship_base + delay)
                    follower.last_visible = visible
                    follower.pending.append((record, visible))
        else:
            for record in records:
                for index, follower in follower_items:
                    delay = ship_delay()
                    visible = max(follower.last_visible, ship_base + delay)
                    follower.last_visible = visible
                    follower.pending.append((record, visible))
        # Opportunistic catch-up: apply whatever has already shipped, so
        # a write-only stretch cannot grow the pending queues unboundedly
        # (a record visible at ``t`` applies no later than the next
        # append — or the next read/failover, whichever drains first).
        for index, _follower in follower_items:
            self._drain(index, now)

    def _row_proto(self, table: str, key: Any) -> tuple:
        """The row's *current leader state*, ready for the log."""
        leader_table = self.leader._tables[table]
        normalized = leader_table.schema.normalize(key)
        row = leader_table.get(normalized)
        if row is None:
            return (_DELETE, table, None, normalized)
        return (_PUT, table, row, None)

    def _ship_row(self, table: str, key: Any, immediate: bool = False
                  ) -> None:
        """Append the row's current leader state to the log."""
        self._ship_records([self._row_proto(table, key)], immediate)

    def _apply_record(self, node: KVStore, record: _LogRecord) -> None:
        table = node._tables.get(record.table)
        if table is None:
            return  # table dropped since the record shipped
        if record.kind == _PUT:
            table.put(dict(record.item))
        else:
            table.delete(record.key)

    def _drain(self, index: int, now: Optional[float] = None) -> None:
        """Apply every record that has shipped to follower ``index``."""
        follower = self._followers[index]
        if now is None:
            now = self.time.now()
        while follower.pending and follower.pending[0][1] <= now:
            record, _visible = follower.pending.popleft()
            self._apply_record(follower.node, record)
            follower.applied_seq = record.seq
            self.stats.applied += 1

    def replication_lag(self) -> dict[int, int]:
        """Records not yet *visible*, per follower node index.

        Drains each follower first (application is lazy; a record whose
        ship time has passed is semantically already there), so the
        answer is how far behind a follower read would actually be.
        """
        now = self.time.now()
        for index in list(self._followers):
            if index != self.leader_index:
                self._drain(index, now)
        return {index: self._next_seq - follower.applied_seq
                for index, follower in self._followers.items()
                if index != self.leader_index}

    # -- failover --------------------------------------------------------------
    def _maybe_failover(self, op: str) -> None:
        if self.faults is None or len(self.nodes) < 2:
            return
        if self.faults.should_crash_leader(self.rand, op,
                                           shard=self.shard_id):
            self.fail_leader()

    def fail_leader(self) -> int:
        """Crash the leader and promote the most-caught-up follower.

        Followers first drain everything that has shipped; the one with
        the highest applied sequence wins (lowest node index breaks
        ties). Promotion moves that follower's durable storage into the
        leader *endpoint* — ``nodes[0]``'s identity is stable, so an
        in-flight operation that already resolved the leader lands on
        the post-failover state, exactly as an operation arriving
        during a real failover is served by the recovered leader — and
        then replays the unacked suffix of the durable replication log
        onto it. After the replay the promoted state is identical to
        the crashed leader's: no acknowledged write is lost. The
        crashed node's storage (intact — the substrate is durable,
        §2.2) re-joins as the winning follower's, already fully caught
        up: re-replication for free.

        The promotion itself is atomic in virtual time (no yield
        points), so concurrent operations serialize strictly before or
        after it; the ``repl.failover`` latency (one unit per replayed
        record) is charged afterwards to the operation that tripped
        over the crash. Returns the index of the follower whose state
        was promoted.
        """
        if len(self.nodes) < 2:
            raise ValueError("cannot fail over a single-replica group")
        now = self.time.now()
        candidates = list(self._followers)
        for index in candidates:
            self._drain(index, now)
        promoted_index = max(candidates,
                             key=lambda index: (
                                 self._followers[index].applied_seq,
                                 -index))
        promoted = self._followers[promoted_index]
        leader = self.nodes[self.leader_index]
        # Swap storage *contents*: the winner's state becomes the leader
        # endpoint's; the crashed leader's (fully caught-up, durable)
        # state re-joins as the winner's follower storage. Contents, not
        # object identity — a concurrent operation that resolved its
        # ``Table`` before yielding into its latency sleep must wake up
        # holding the (recovered) leader table, never the demoted copy.
        for name, leader_table in leader._tables.items():
            self._swap_table_state(leader_table,
                                   promoted.node._tables[name])
        replay = list(promoted.pending)
        for record, _visible in replay:
            self._apply_record(leader, record)
        promoted.applied_seq = self._next_seq
        promoted.pending.clear()
        promoted.last_visible = now
        self.stats.failovers += 1
        self.stats.replayed += len(replay)
        if self.obs is not None:
            self.obs.tracer.event(
                f"failover:shard{self.shard_id}", cat="replication",
                promoted=promoted_index, replayed=len(replay),
                shard=self.shard_id)
            self.obs.metrics.inc("replication.failovers")
            self.obs.metrics.inc("replication.replayed", len(replay))
        # ``pay`` (not ``sleep``): a failover tripped inside an overlap
        # scope must defer its cost like any other store latency — a
        # scope body may never yield to the kernel mid-flight.
        self.time.pay(
            self.latency.sample("repl.failover", units=len(replay)))
        # Schedule-exploration point *after* the (atomic) promotion: the
        # interesting races are between the freshly promoted state and
        # operations that resolved routing before the crash. The kernel
        # guard keeps this a no-op inside overlap scopes.
        kernel = getattr(self.time, "kernel", None)
        if kernel is not None:
            kernel.interleave_point(f"failover:promoted:{self.shard_id}")
        return promoted_index

    @staticmethod
    def _swap_table_state(a: Table, b: Table) -> None:
        """Exchange two tables' storage (rows, indexes, sort caches).

        Object identities — and each table's own lock — stay put, so
        references resolved before a failover remain references to the
        same *role* (leader endpoint or follower) afterwards.
        """
        for attr in ("_partitions", "_indexes", "_sorted_cache"):
            first, second = getattr(a, attr), getattr(b, attr)
            setattr(a, attr, second)
            setattr(b, attr, first)

    # -- read routing ----------------------------------------------------------
    def _route_read(self, table: str, partition_value: Any,
                    consistency) -> tuple[KVStore, Optional[str]]:
        """Pick the serving node for one read.

        Returns ``(node, consistency-to-meter)``. Strong reads (and any
        read in a followerless group) go to the leader; eventual reads
        go to the item's affine follower, drained to now first.
        """
        mode = normalize_consistency(consistency)
        if mode is None or len(self.nodes) < 2:
            self._maybe_failover("db.read")
            return self.leader, mode
        token = f"{table}|{partition_value!r}"
        index = self._follower_index_for(token)
        self._drain(index)
        self.stats.eventual_reads += 1
        return self._followers[index].node, mode

    def _route_scan(self, consistency) -> tuple[KVStore, Optional[str]]:
        """Whole-table reads: leader when strong, else any follower
        (rotating by a stable draw from the group's stream)."""
        mode = normalize_consistency(consistency)
        if mode is None or len(self.nodes) < 2:
            self._maybe_failover("db.scan")
            return self.leader, mode
        indexes = sorted(index for index in self._followers
                         if index != self.leader_index)
        index = indexes[self.rand.randint(0, len(indexes) - 1)]
        self._drain(index)
        self.stats.eventual_reads += 1
        return self._followers[index].node, mode

    # -- KVStore surface: reads ------------------------------------------------
    def get(self, table: str, key: Any,
            projection: Optional[Projection] = None,
            consistency=None) -> Optional[dict]:
        node, mode = self._route_read(
            table, self._partition_value(table, key), consistency)
        return node.get(table, key, projection=projection,
                        consistency=mode)

    def batch_get(self, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None,
                  consistency=None) -> BatchGetResult:
        if not keys:
            return BatchGetResult()
        mode = normalize_consistency(consistency)
        if mode is None or len(self.nodes) < 2:
            self._maybe_failover("db.batch_read")
            return self.leader.batch_get(table, keys,
                                         projection=projection,
                                         consistency=mode)
        # Eventual batches split by each item's affine follower — the
        # same per-item routing as point reads, so an item never goes
        # backwards in time between a batch and a point read. One round
        # trip per involved follower, re-merged aligned with the
        # request (the ShardedStore fan-out shape).
        by_follower: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            token = f"{table}|{self._partition_value(table, key)!r}"
            by_follower.setdefault(self._follower_index_for(token),
                                   []).append(position)
        results: list[Optional[dict]] = [None] * len(keys)
        unprocessed: list[int] = []
        served_any = False
        follower_dark = False
        with overlap(self, enabled=self.async_io) as scope:
            for index in sorted(by_follower):
                positions = by_follower[index]
                self._drain(index)
                self.stats.eventual_reads += 1
                try:
                    with scope.branch():
                        got = self._followers[index].node.batch_get(
                            table, [keys[i] for i in positions],
                            projection=projection, consistency=mode)
                except UnavailableError:
                    follower_dark = True
                    unprocessed.extend(positions)
                    continue
                except ThrottledError:
                    unprocessed.extend(positions)
                    continue
                unserved = set(got.unprocessed_indexes)
                for offset, position in enumerate(positions):
                    if offset in unserved:
                        unprocessed.append(position)
                    else:
                        served_any = True
                        results[position] = got[offset]
        if not served_any:
            if follower_dark:
                raise UnavailableError(
                    "db.batch_read unavailable on every follower")
            raise ThrottledError(
                "db.batch_read throttled on every follower")
        return BatchGetResult(results,
                              unprocessed_indexes=sorted(unprocessed),
                              keys=keys)

    def query(self, table: str, hash_value: Any,
              consistency=None, **kwargs) -> QueryResult:
        node, mode = self._route_read(table, hash_value, consistency)
        return node.query(table, hash_value, consistency=mode, **kwargs)

    def scan(self, table: str,
             filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None,
             consistency=None) -> ScanResult:
        node, mode = self._route_scan(consistency)
        return node.scan(table, filter_condition=filter_condition,
                         projection=projection, limit=limit,
                         exclusive_start=exclusive_start,
                         consistency=mode)

    def query_index(self, table: str, index_name: str, value: Any,
                    projection: Optional[Projection] = None,
                    consistency=None) -> list[dict]:
        node, mode = self._route_scan(consistency)
        return node.query_index(table, index_name, value,
                                projection=projection, consistency=mode)

    # -- KVStore surface: writes (leader + ship) -------------------------------
    def put(self, table: str, item: dict,
            condition: Optional[Condition] = None) -> None:
        self._maybe_failover(
            "db.cond_write" if condition is not None else "db.write")
        self.leader.put(table, item, condition=condition)
        self._ship_row(table, self.leader._tables[table].schema.extract(
            item))

    def update(self, table: str, key: Any, updates,
               condition: Optional[Condition] = None) -> dict:
        self._maybe_failover(
            "db.cond_write" if condition is not None else "db.write")
        new_item = self.leader.update(table, key, updates,
                                      condition=condition)
        self._ship_row(table, key)
        return new_item

    def delete(self, table: str, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        self._maybe_failover("db.delete")
        removed = self.leader.delete(table, key, condition=condition)
        if removed is not None:
            self._ship_row(table, key)
        return removed

    def batch_write(self, table: str, puts: Sequence[dict] = (),
                    deletes: Sequence[Any] = ()) -> BatchWriteResult:
        """Leader ``BatchWriteItem``; applied rows ship to followers.

        Only the *applied* prefix ships (unprocessed items changed
        nothing). Deletes of absent rows ship harmless tombstones, as a
        follower's delete of a missing key is a no-op. Under ``async_io``
        the whole batch travels as one boat per follower.
        """
        # Materialize before the leader consumes them: a generator
        # argument must still be visible for shipping below.
        puts = list(puts)
        deletes = list(deletes)
        self._maybe_failover("db.batch_write")
        result = self.leader.batch_write(table, puts, deletes)
        served_puts = puts[:len(puts) - len(result.unprocessed_puts)]
        served_deletes = deletes[:len(deletes)
                                 - len(result.unprocessed_deletes)]
        schema = self.leader._tables[table].schema
        protos = [self._row_proto(table, schema.extract(item))
                  for item in served_puts]
        protos += [self._row_proto(table, key) for key in served_deletes]
        if protos:
            self._ship_records(protos, immediate=False,
                               batched=self.async_io)
        return result

    def transact_write(self, ops: Sequence[TransactOp]) -> None:
        self._maybe_failover("db.txn")
        self.leader.transact_write(ops)
        self._ship_transact(ops)

    def _ship_transact(self, ops: Sequence[TransactOp]) -> None:
        keys = [(op.table,
                 self.leader._tables[op.table].schema.extract(op.item)
                 if isinstance(op, TransactPut) else op.key)
                for op in ops]
        if self.async_io and len(keys) > 1:
            # One boat: the transaction's rows ship together, each
            # follower drawing a single delay for the whole commit.
            self._ship_records([self._row_proto(table, key)
                                for table, key in keys],
                               immediate=False, batched=True)
            return
        for table, key in keys:
            self._ship_row(table, key)

    # -- two-phase hooks used by ShardedStore's cross-shard path ---------------
    def _transact_check(self, ops: Sequence[TransactOp]) -> None:
        self.leader._transact_check(ops)

    def _transact_apply(self, ops: Sequence[TransactOp]) -> None:
        self.leader._transact_apply(ops)
        self._ship_transact(ops)

    # -- stats -----------------------------------------------------------------
    def time_sources(self) -> list:
        """Every member's time source (leader and followers alike)."""
        sources = []
        for node in self.nodes:
            sources.extend(node.time_sources())
        return sources

    def storage_bytes(self, table: Optional[str] = None) -> int:
        # Logical bytes: replicas are copies, not additional data.
        return self.leader.storage_bytes(table)

    def item_count(self, table: str) -> int:
        return self.leader.item_count(table)


class ReplicatedStore(ShardedStore):
    """N replica groups behind the sharded-store facade.

    Same routing, fan-out, and cross-shard transaction machinery as
    :class:`ShardedStore` — its nodes just happen to be
    :class:`ReplicaGroup` instances, so every shard gains followers,
    bounded-lag eventual reads, and leader failover without a line of
    the layers above changing.
    """

    def __init__(self, groups: Sequence[ReplicaGroup],
                 ring: Optional[HashRing] = None,
                 async_io: bool = False) -> None:
        super().__init__(groups, ring=ring, async_io=async_io)

    @property
    def groups(self) -> list[ReplicaGroup]:
        return list(self.nodes)

    @property
    def replication_stats(self) -> ReplicationStats:
        total = ReplicationStats()
        for group in self.nodes:
            total.merge(group.stats)
        return total

    def replication_lag(self) -> dict[int, dict[int, int]]:
        """Unapplied record counts: shard index -> follower -> lag."""
        return {shard: group.replication_lag()
                for shard, group in enumerate(self.nodes)}


__all__ = [
    "DEFAULT_MAX_LAG_MS",
    "ReadConsistency",
    "ReplicaGroup",
    "ReplicatedStore",
    "ReplicatedTableView",
    "ReplicationStats",
]
