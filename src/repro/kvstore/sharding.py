"""A sharded store: N ``KVStore`` nodes behind one facade.

The linked DAAL keys every chain by ``(table, key)`` with all of an
item's rows sharing the item's hash key — exactly the unit a partitioned
store needs. :class:`ShardedStore` exploits that: it routes each
``(table, partition key)`` to one of N :class:`~repro.kvstore.KVStore`
nodes via consistent hashing, so

- every row of one item's chain (and therefore every row-scoped atomic
  conditional write, which is Beldi's whole atomicity story) lives on a
  single node;
- ``query`` — the skeleton traversal — is a single-node operation;
- each node keeps its **own** latency model, fault domain
  (:class:`~repro.kvstore.faults.FaultPolicy` with ``only_shards``),
  service capacity, and metering, so per-shard throttling, latency
  spikes, and saturation are all expressible;
- the DAAL, transaction, GC, and collector layers go through the facade
  unchanged — it implements the full ``KVStore`` surface.

Fan-out operations:

``scan``
    Walks the nodes in shard order; ``last_evaluated_key`` is a tagged
    ``(_SHARD_TOKEN, shard index, node key)`` tuple so paged scans (the
    GC's Appendix-A refinement) resume where they stopped.
``query_index``
    Queries every node and merge-sorts by ``(index value, primary key)``
    so the global order matches single-node semantics exactly,
    independent of placement.
``batch_get``
    Splits the batch by owning shard, one round trip per involved node,
    and re-merges aligned with the request. A node's partial throttle
    (or full ``ThrottledError``) surfaces as unprocessed positions; the
    call only raises when **no** key anywhere was served.
``transact_write``
    Ops on a single shard delegate to that node's native transaction.
    Ops spanning shards fall back to a lock-based two-phase path: pay a
    prepare and a commit round of conditional-write latency on every
    involved shard, then check all conditions and apply all writes under
    the involved tables' locks in deterministic order. The store
    substrate is durable and non-crashing by assumption (§2.2), so the
    coordinator window collapses to latency — what remains observable is
    the two-round cost and all-or-nothing atomicity.

``batch_write``
    The write-side twin: puts route by item, deletes by key, one
    ``BatchWriteItem`` round trip per involved node; unprocessed items
    merge back and the call raises only when no item anywhere applied.

With ``async_io=True`` the fan-outs (``batch_get``/``batch_write``) and
the cross-shard transaction's per-shard rounds run under an
:func:`~repro.kvstore.asyncio.overlap` scope: the involved nodes' round
trips pay ``max(latencies)`` plus per-node capacity queueing instead of
the sum. Off (the default for hand-built stores) keeps the sequential
virtual-latency model bit-for-bit.

Routing is stable: an MD5-based hash ring with virtual nodes, keyed by
``"<table>|<partition key repr>"`` — independent of process hash seeds,
so a given key lands on the same shard in every run and every test.

Invariants this layer must uphold (see ``docs/architecture.md``):

- **Chain co-location.** Every row of one item's chain routes by the
  item's partition key alone, so the row-scoped atomic conditional
  write — Beldi's entire atomicity story — never spans nodes, and
  ``query`` (the skeleton traversal) is single-node.
- **Placement-independent results.** Fan-out reads re-merge to exactly
  the single-node order (``query_index`` merge-sorts, ``batch_get``/
  ``batch_write`` align with the request), so no layer above can
  observe how many shards exist.
- **All-or-nothing cross-shard writes.** The two-phase path checks
  every condition and applies every write under all involved table
  locks with no yield point in between; the store substrate is durable
  and non-crashing (§2.2), so the coordinator window collapses to
  latency.
- **Per-shard fault/latency/metering domains stay independent** — one
  node's throttle or saturation never alters a sibling's draws.
- **Placement follows routing, always.** Every row lives on exactly the
  node the (weight- and forward-aware) ring maps its partition key to;
  live chain migration (:mod:`repro.kvstore.rebalance`) may *move* that
  mapping, but never leaves a row behind it —
  ``placement_residue(store)`` is empty at every crash point of the
  sweep.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Optional, Sequence

from repro.kvstore.asyncio import overlap
from repro.kvstore.errors import (
    TableExists,
    TableNotFound,
    ThrottledError,
    UnavailableError,
)
from repro.kvstore.expressions import Condition, Projection, path
from repro.kvstore.metering import Metering
from repro.kvstore.store import (
    BatchGetResult,
    BatchWriteResult,
    KVStore,
    MAX_BATCH_WRITE_ITEMS,
    TransactPut,
    TransactOp,
)
from repro.kvstore.table import (
    KeySchema,
    QueryResult,
    ScanResult,
    Table,
    _sort_token,
    _sort_token_tuple,
)

_SHARD_TOKEN = "__shard__"

#: Backoff while an operation waits out a live chain migration (virtual
#: ms). Small against any store round trip; the stall an operation can
#: observe is the migration's own duration, not this granularity.
_LATCH_WAIT_MS = 1.0


class HashRing:
    """Consistent hashing over shard indexes with virtual nodes.

    ``replicas`` virtual points per shard smooth the key distribution;
    MD5 keeps placement stable across processes and Python versions
    (``hash()`` is salted per process and would reshard every run).

    Two elasticity mechanisms sit on top of the pure hash placement:

    **Weights.** Each shard carries a weight scaling its virtual-node
    count (``round(replicas * weight)``). A shard's vnode labels are a
    stable prefix sequence (``shard-i#0..k``), so re-weighting one shard
    only adds or removes *that shard's* points: keys move to it (weight
    up) or from it (weight down), never between two other shards.

    **Forwarding entries.** ``set_forward(token, shard)`` pins one route
    token to an explicit owner, overriding the hash placement — the
    in-memory face of a committed chain migration
    (:mod:`repro.kvstore.rebalance` keeps the durable twin). Lookups
    check forwards first; :meth:`hash_shard_of` exposes the underlying
    hash owner for rollback decisions.
    """

    def __init__(self, n_shards: int, replicas: int = 64,
                 weights: Optional[Sequence[float]] = None) -> None:
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.replicas = replicas
        if weights is None:
            weights = [1.0] * n_shards
        if len(weights) != n_shards:
            raise ValueError(
                f"{n_shards} shards need {n_shards} weights, "
                f"got {len(weights)}")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self._weights = list(weights)
        #: token -> shard overrides (committed migrations).
        self._forwards: dict[str, int] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        #: token -> hash owner memo; placement is deterministic for a
        #: given point set, so this only ever invalidates on re-weight.
        #: It also keeps the elasticity hooks cheap: heat tracking and
        #: the op's own routing resolve the same token back-to-back,
        #: and the second lookup must not pay a second MD5 digest.
        self._memo: dict[str, int] = {}
        points = []
        for shard in range(self.n_shards):
            count = int(round(self.replicas * self._weights[shard]))
            if self._weights[shard] > 0:
                count = max(1, count)
            for replica in range(count):
                points.append((self._digest(f"shard-{shard}#{replica}"),
                               shard))
        if not points:
            raise ValueError("at least one shard needs a positive weight")
        points.sort()
        self._points = [p[0] for p in points]
        self._owners = [p[1] for p in points]

    @staticmethod
    def _digest(token: str) -> int:
        return int.from_bytes(
            hashlib.md5(token.encode("utf-8")).digest()[:8], "big")

    # -- weights ---------------------------------------------------------------
    @property
    def weights(self) -> list[float]:
        return list(self._weights)

    def set_weight(self, shard: int, weight: float) -> None:
        """Re-weight one shard's share of the ring.

        Only that shard's virtual points change, so keys move to it
        (weight up) or off it (weight down) — never between two other
        shards (property-tested in ``tests/kvstore/test_sharding.py``).
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"no shard {shard} in a "
                             f"{self.n_shards}-shard ring")
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self._weights[shard] = weight
        self._rebuild()

    # -- forwarding ------------------------------------------------------------
    @property
    def forwards(self) -> dict[str, int]:
        """Token -> shard overrides currently installed (a copy)."""
        return dict(self._forwards)

    def set_forward(self, token: str, shard: int) -> None:
        """Pin ``token`` to ``shard``, overriding hash placement."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"no shard {shard} in a "
                             f"{self.n_shards}-shard ring")
        if shard == self.hash_shard_of(token):
            # A forward to the hash owner is a no-op entry; keep the
            # overlay minimal so balanced states need no bookkeeping.
            self._forwards.pop(token, None)
        else:
            self._forwards[token] = shard

    def clear_forward(self, token: str) -> None:
        self._forwards.pop(token, None)

    def hash_shard_of(self, token: str) -> int:
        """The pure consistent-hash owner, ignoring forwards."""
        owner = self._memo.get(token)
        if owner is None:
            position = bisect_right(self._points, self._digest(token))
            if position == len(self._points):
                position = 0
            owner = self._owners[position]
            if len(self._memo) >= 65_536:
                # Tokens include instance-keyed log rows, an unbounded
                # population; the memo is a pure cache, so dropping it
                # wholesale is always sound.
                self._memo.clear()
            self._memo[token] = owner
        return owner

    def shard_of(self, token: str) -> int:
        """The shard owning ``token`` (forwards first, then the ring)."""
        forwarded = self._forwards.get(token)
        if forwarded is not None:
            return forwarded
        return self.hash_shard_of(token)

    # -- rebalancing -----------------------------------------------------------
    def plan_rebalance(self, loads, tolerance: float = 0.2,
                       max_moves: Optional[int] = None) -> list[tuple]:
        """Minimal token moves that bring observed load inside tolerance.

        ``loads`` maps route tokens to non-negative observed load (op
        counts, queue samples — any additive measure). The plan is a
        list of ``(token, source_shard, target_shard)`` moves, greedy
        largest-first: while some shard carries more than
        ``mean * (1 + tolerance)``, move its heaviest token that (a)
        strictly narrows the donor/recipient gap and (b) does not push
        the recipient itself past tolerance. Both guards make the plan
        *convergent*: applying every move and re-planning from the
        resulting placement yields the empty plan, and a balanced load
        yields the empty plan outright (property-tested).

        The plan is advisory routing arithmetic only — executing it
        (copying chains, installing forwards) is the
        :class:`~repro.kvstore.rebalance.ChainMigrator`'s job.
        """
        n = self.n_shards
        if n < 2 or not loads:
            return []
        shard_load = [0.0] * n
        by_shard: dict[int, list] = {shard: [] for shard in range(n)}
        for token in sorted(loads):
            load = loads[token]
            if load < 0:
                raise ValueError(f"negative load for token {token!r}")
            shard = self.shard_of(token)
            shard_load[shard] += load
            by_shard[shard].append(token)
        total = sum(shard_load)
        if total <= 0:
            return []
        mean = total / n
        bound = mean * (1.0 + tolerance)
        # Heaviest-first candidate order per shard; stable by token so
        # the plan is deterministic for a given load map.
        for shard in range(n):
            by_shard[shard].sort(key=lambda t: (-loads[t], t))
        moves: list[tuple] = []
        moved: set = set()
        for _ in range(len(loads) + 1):
            donor = max(range(n), key=lambda s: (shard_load[s], -s))
            recipient = min(range(n), key=lambda s: (shard_load[s], s))
            if shard_load[donor] <= bound:
                break
            gap = shard_load[donor] - shard_load[recipient]
            candidate = None
            for token in by_shard[donor]:
                if token in moved:
                    continue
                load = loads[token]
                if load <= 0 or load >= gap:
                    continue
                if shard_load[recipient] + load > bound:
                    continue
                candidate = token
                break
            if candidate is None:
                break  # nothing productive left (e.g. one mega-token)
            moves.append((candidate, donor, recipient))
            moved.add(candidate)  # moved tokens are final this plan
            by_shard[donor].remove(candidate)
            shard_load[donor] -= loads[candidate]
            shard_load[recipient] += loads[candidate]
            if max_moves is not None and len(moves) >= max_moves:
                break
        return moves


class ShardedTableView:
    """The facade's answer to ``store.table(name)``.

    Presents one logical table backed by N physical ones. Index
    management fans out (indexes exist on every node); direct row
    operations route to the owning node's :class:`Table` — zero-latency,
    unmetered access, same as touching a ``Table`` directly (benchmark
    seeding and tests use this).
    """

    def __init__(self, store: "ShardedStore", name: str) -> None:
        self._store = store
        self.name = name

    @property
    def schema(self) -> KeySchema:
        return self._node_tables()[0].schema

    @property
    def max_item_bytes(self) -> int:
        return self._node_tables()[0].max_item_bytes

    @property
    def _indexes(self) -> dict:
        # All nodes carry identical index definitions; node 0 speaks for
        # the logical table.
        return self._node_tables()[0]._indexes

    def _node_tables(self) -> list:
        # ``node.table(name)`` rather than raw ``_tables`` access: a
        # replicated node answers with a view that also ships direct
        # mutations to its followers.
        return [node.table(self.name) for node in self._store.nodes]

    def _owner(self, key: Any):
        node = self._store.node_for(self.name, key)
        return node.table(self.name)

    def add_index(self, name: str, attribute: str) -> None:
        for table in self._node_tables():
            table.add_index(name, attribute)

    # -- direct (latency-free) row access ------------------------------------
    def get(self, key: Any,
            projection: Optional[Projection] = None) -> Optional[dict]:
        return self._owner(key).get(key, projection=projection)

    def put(self, item: dict,
            condition: Optional[Condition] = None) -> None:
        key = self.schema.extract(item)
        self._owner(key).put(item, condition=condition)

    def update(self, key: Any, updates, condition=None) -> dict:
        return self._owner(key).update(key, updates, condition=condition)

    def delete(self, key: Any, condition=None) -> Optional[dict]:
        return self._owner(key).delete(key, condition=condition)

    # -- stats ----------------------------------------------------------------
    def item_count(self) -> int:
        return sum(t.item_count() for t in self._node_tables())

    def storage_bytes(self) -> int:
        return sum(t.storage_bytes() for t in self._node_tables())


class ShardedStore:
    """N store nodes behind the single-store facade.

    Drop-in for :class:`KVStore` everywhere above the storage layer: the
    DAAL, ops, txn, GC, and env code paths run unchanged. Construct with
    pre-built nodes (each carrying its own time source, latency model,
    fault policy, and capacity), or let
    :meth:`~repro.core.runtime.BeldiRuntime` build a fleet via its
    ``shards=`` parameter.
    """

    def __init__(self, nodes: Sequence[KVStore],
                 ring: Optional[HashRing] = None,
                 async_io: bool = False) -> None:
        if not nodes:
            raise ValueError("a sharded store needs at least one node")
        self.nodes = list(nodes)
        self.ring = ring or HashRing(len(self.nodes))
        if self.ring.n_shards != len(self.nodes):
            raise ValueError(
                f"ring covers {self.ring.n_shards} shards but "
                f"{len(self.nodes)} nodes were given")
        #: Overlap independent per-shard round trips (fan-outs, the
        #: cross-shard transaction rounds) instead of serializing their
        #: virtual latency. Off = the sequential model, bit-for-bit.
        self.async_io = async_io
        #: Observability hub (``repro.obs``); attached by an
        #: observability-enabled runtime, ``None`` otherwise.
        self.obs = None
        self._schemas: dict[str, KeySchema] = {}
        self._views: dict[str, ShardedTableView] = {}
        # -- elasticity bookkeeping (dormant until enable_elasticity) --
        #: Per-(table, partition key) routed-op counts — the observed
        #: load the hot-shard detector plans against. ``None`` disables
        #: every elasticity hook at a single attribute check.
        self.heat = None
        #: Routed ops per shard since construction (windowed by the
        #: detector via snapshots).
        self.shard_ops: list[int] = []
        #: Route tokens with a live migration: inline operations wait
        #: here instead of racing the copy.
        self._latched: set = set()
        #: Tables with a live migration (gates whole-table fan-outs).
        self._migrating_tables: dict[str, int] = {}
        #: In-flight inline operations per route token / per table —
        #: what a migration drains before touching rows. Operations
        #: issued inside an overlap scope are exempt: a scope body is
        #: atomic in virtual time, so its mutations land entirely
        #: before or after the (equally atomic) copy instant.
        self._inflight: dict = {}
        self._table_inflight: dict[str, int] = {}

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    # -- routing ---------------------------------------------------------------
    def _route_token(self, table: str, partition_value: Any) -> str:
        return f"{table}|{partition_value!r}"

    def _partition_value(self, table: str, key: Any) -> Any:
        schema = self._schemas.get(table)
        if schema is None:
            raise TableNotFound(f"no table named {table!r}")
        if isinstance(key, dict):
            return key[schema.hash_key]
        if isinstance(key, tuple):
            return key[0]
        return key

    def shard_for(self, table: str, key: Any) -> int:
        """The shard index owning ``(table, key)``; key may be a scalar
        partition value (even for a ranged table), a (hash, range)
        tuple, or an item dict — only the partition component routes, so
        one item's whole chain co-locates."""
        return self.ring.shard_of(self._route_token(
            table, self._partition_value(table, key)))

    def node_for(self, table: str, key: Any) -> KVStore:
        return self.nodes[self.shard_for(table, key)]

    # -- elasticity hooks ------------------------------------------------------
    def enable_elasticity(self) -> None:
        """Start heat tracking and migration safety bookkeeping.

        Idempotent. Until called, every hook below is a single ``is
        None`` check, so a non-elastic store runs the exact pre-existing
        code path (the pure-python counters themselves never draw
        randomness or pay latency, so enabling tracking alone cannot
        perturb a run's virtual timeline either).
        """
        if self.heat is None:
            self.heat = {}
            self.shard_ops = [0] * self.n_shards

    def _await(self, ready) -> None:
        """Wait (in virtual time) until ``ready()`` holds.

        Only meaningful under a kernel: latches are held exclusively by
        migrations running inside simulated processes, so a
        non-process caller can never observe one.
        """
        while not ready():
            self.nodes[0].time.sleep(_LATCH_WAIT_MS)

    def _note_heat(self, table: str, partition_value: Any,
                   shard: int) -> None:
        self.shard_ops[shard] += 1
        try:
            self.heat[(table, partition_value)] = (
                self.heat.get((table, partition_value), 0) + 1)
        except TypeError:
            pass  # unhashable partition value: never a migration unit

    def _in_scope(self) -> bool:
        # Cooperative scheduling: an overlap scope can only be active on
        # the store's clocks while its *owning* process runs its (never
        # yielding) scope body — so "a scope is attached" means "the
        # current caller is inside one", and its mutations are atomic.
        return self.nodes[0].time._ov_scope is not None

    def _interleave(self, tag: str) -> None:
        """Schedule-exploration point (no-op without an exploring
        schedule). Never yields inside an overlap scope."""
        if self._in_scope():
            return
        kernel = getattr(self.nodes[0].time, "kernel", None)
        if kernel is not None:
            kernel.interleave_point(tag)

    def _enter_keys(self, table: str, keys) -> Optional[list]:
        return self._enter_pairs([(table, key) for key in keys])

    def _enter_pairs(self, pairs) -> Optional[list]:
        """Register inline in-flight operations on the pairs' tokens.

        ``pairs`` is ``(table, key)`` tuples — one call covers every
        token an operation touches (all tables of a transact group), so
        there is never a wait while already holding a registration.
        Waits out any live migration latch on the involved tokens first
        (re-checking all of them after every wait, since a new latch can
        appear while sleeping), then registers every token with no
        intervening yield. Returns the token list for ``_exit_keys``, or
        ``None`` when elasticity is off or the caller sits inside an
        overlap scope (whose body is atomic in virtual time — it cannot
        straddle a migration's copy instant).
        """
        if self.heat is None:
            return None
        tokens = []
        seen = set()
        for table, key in pairs:
            value = self._partition_value(table, key)
            token = self._route_token(table, value)
            self._note_heat(table, value, self.ring.shard_of(token))
            if token not in seen:
                seen.add(token)
                tokens.append(token)
        if self._in_scope():
            return None
        if self._latched:
            self._await(lambda: not any(t in self._latched
                                        for t in tokens))
        for token in tokens:
            self._inflight[token] = self._inflight.get(token, 0) + 1
        return tokens

    def _exit_keys(self, tokens: Optional[list]) -> None:
        if not tokens:
            return
        for token in tokens:
            remaining = self._inflight.get(token, 0) - 1
            if remaining > 0:
                self._inflight[token] = remaining
            else:
                self._inflight.pop(token, None)

    def _enter_table(self, table: str) -> Optional[str]:
        """The whole-table twin of ``_enter_keys`` for scans/index
        fan-outs: waits out migrations touching ``table``, then counts
        the fan-out in flight so a migration drains it before copying."""
        if self.heat is None:
            return None
        if self._in_scope():
            return None
        if self._migrating_tables:
            self._await(
                lambda: self._migrating_tables.get(table, 0) == 0)
        self._table_inflight[table] = (
            self._table_inflight.get(table, 0) + 1)
        return table

    def _exit_table(self, table: Optional[str]) -> None:
        if table is None:
            return
        remaining = self._table_inflight.get(table, 0) - 1
        if remaining > 0:
            self._table_inflight[table] = remaining
        else:
            self._table_inflight.pop(table, None)

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ShardedTableView:
        if name in self._schemas:
            raise TableExists(f"table {name!r} already exists")
        for node in self.nodes:
            node.create_table(name, hash_key, range_key, max_item_bytes)
        self._schemas[name] = KeySchema(hash_key, range_key)
        view = ShardedTableView(self, name)
        self._views[name] = view
        return view

    def ensure_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ShardedTableView:
        if name in self._schemas:
            return self._views[name]
        return self.create_table(name, hash_key, range_key, max_item_bytes)

    def table(self, name: str) -> ShardedTableView:
        view = self._views.get(name)
        if view is None:
            raise TableNotFound(f"no table named {name!r}")
        return view

    def drop_table(self, name: str) -> None:
        for node in self.nodes:
            node.drop_table(name)
        self._schemas.pop(name, None)
        self._views.pop(name, None)

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    # -- point ops (route to the owner) ----------------------------------------
    def get(self, table: str, key: Any,
            projection: Optional[Projection] = None,
            consistency: Optional[str] = None) -> Optional[dict]:
        guard = self._enter_keys(table, (key,)) if (
            self.heat is not None) else None
        try:
            return self.node_for(table, key).get(table, key,
                                                 projection=projection,
                                                 consistency=consistency)
        finally:
            self._exit_keys(guard)

    def put(self, table: str, item: dict,
            condition: Optional[Condition] = None) -> None:
        guard = self._enter_keys(table, (item,)) if (
            self.heat is not None) else None
        try:
            self.node_for(table, item).put(table, item,
                                           condition=condition)
        finally:
            self._exit_keys(guard)

    def update(self, table: str, key: Any, updates,
               condition: Optional[Condition] = None) -> dict:
        guard = self._enter_keys(table, (key,)) if (
            self.heat is not None) else None
        try:
            return self.node_for(table, key).update(table, key, updates,
                                                    condition=condition)
        finally:
            self._exit_keys(guard)

    def delete(self, table: str, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        guard = self._enter_keys(table, (key,)) if (
            self.heat is not None) else None
        try:
            return self.node_for(table, key).delete(table, key,
                                                    condition=condition)
        finally:
            self._exit_keys(guard)

    def query(self, table: str, hash_value: Any, **kwargs) -> QueryResult:
        # One partition lives on exactly one shard — no fan-out.
        guard = self._enter_keys(table, (hash_value,)) if (
            self.heat is not None) else None
        try:
            return self.node_for(table, hash_value).query(
                table, hash_value, **kwargs)
        finally:
            self._exit_keys(guard)

    # -- fan-out reads ----------------------------------------------------------
    def batch_get(self, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None,
                  consistency: Optional[str] = None
                  ) -> BatchGetResult:
        """Per-shard fan-out of one logical batch, re-merged in order.

        One ``batch_get`` round trip per involved node. Partial
        throttles (and whole-node ``ThrottledError``\\ s) become
        unprocessed positions in the merged result; the call raises only
        when not a single key on any shard was served.
        """
        if not keys:
            return BatchGetResult()
        guard = self._enter_keys(table, keys) if (
            self.heat is not None) else None
        try:
            by_shard: dict[int, list[int]] = {}
            for index, key in enumerate(keys):
                by_shard.setdefault(self.shard_for(table, key),
                                    []).append(index)
            results: list[Optional[dict]] = [None] * len(keys)
            unprocessed: list[int] = []
            served_any = False
            shard_dark = False
            with overlap(self, enabled=self.async_io) as scope:
                for shard in sorted(by_shard):
                    indexes = by_shard[shard]
                    try:
                        with scope.branch():
                            got = self.nodes[shard].batch_get(
                                table, [keys[i] for i in indexes],
                                projection=projection,
                                consistency=consistency)
                    except UnavailableError:
                        shard_dark = True
                        unprocessed.extend(indexes)
                        continue
                    except ThrottledError:
                        unprocessed.extend(indexes)
                        continue
                    unserved = set(got.unprocessed_indexes)
                    for position, index in enumerate(indexes):
                        if position in unserved:
                            unprocessed.append(index)
                        else:
                            served_any = True
                            results[index] = got[position]
            if not served_any:
                if shard_dark:
                    raise UnavailableError(
                        "db.batch_read unavailable on every shard")
                raise ThrottledError(
                    "db.batch_read throttled on every shard")
            return BatchGetResult(results,
                                  unprocessed_indexes=sorted(unprocessed),
                                  keys=keys)
        finally:
            self._exit_keys(guard)

    def batch_write(self, table: str, puts: Sequence[dict] = (),
                    deletes: Sequence[Any] = ()) -> BatchWriteResult:
        """Per-shard fan-out of one logical write batch.

        Puts route by item, deletes by key; each involved node pays one
        ``batch_write`` round trip (overlapped under ``async_io``).
        Partial throttles and whole-node ``ThrottledError``\\ s merge into
        the unprocessed lists; the call raises only when not a single
        item on any shard was applied.
        """
        puts = list(puts)
        deletes = list(deletes)
        total = len(puts) + len(deletes)
        if total == 0:
            return BatchWriteResult()
        if total > MAX_BATCH_WRITE_ITEMS:
            raise ValueError(
                f"batch_write accepts at most {MAX_BATCH_WRITE_ITEMS} "
                f"items per request, got {total}")
        guard = self._enter_keys(table, puts + deletes) if (
            self.heat is not None) else None
        try:
            puts_by_shard: dict[int, list[dict]] = {}
            deletes_by_shard: dict[int, list[Any]] = {}
            for item in puts:
                puts_by_shard.setdefault(
                    self.shard_for(table, item), []).append(item)
            for key in deletes:
                deletes_by_shard.setdefault(
                    self.shard_for(table, key), []).append(key)
            merged = BatchWriteResult()
            applied_any = False
            shard_dark = False
            with overlap(self, enabled=self.async_io) as scope:
                for shard in sorted(set(puts_by_shard)
                                    | set(deletes_by_shard)):
                    shard_puts = puts_by_shard.get(shard, [])
                    shard_deletes = deletes_by_shard.get(shard, [])
                    try:
                        with scope.branch():
                            result = self.nodes[shard].batch_write(
                                table, shard_puts, shard_deletes)
                    except UnavailableError:
                        shard_dark = True
                        merged.merge_from(BatchWriteResult(shard_puts,
                                                           shard_deletes))
                        continue
                    except ThrottledError:
                        merged.merge_from(BatchWriteResult(shard_puts,
                                                           shard_deletes))
                        continue
                    if (len(result.unprocessed_puts)
                            + len(result.unprocessed_deletes)
                            < len(shard_puts) + len(shard_deletes)):
                        applied_any = True
                    merged.merge_from(result)
            if not applied_any:
                if shard_dark:
                    raise UnavailableError(
                        "db.batch_write unavailable on every shard")
                raise ThrottledError(
                    "db.batch_write throttled on every shard")
            return merged
        finally:
            self._exit_keys(guard)

    def scan(self, table: str,
             filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None,
             consistency: Optional[str] = None) -> ScanResult:
        """Shard-ordered scan with cross-shard paging.

        ``last_evaluated_key`` from a truncated sharded scan is a tagged
        tuple ``(_SHARD_TOKEN, shard, node_key)``; pass it back as
        ``exclusive_start`` to resume. Plain (untagged) start keys are
        not meaningful across shards and are rejected.
        """
        if table not in self._schemas:
            raise TableNotFound(f"no table named {table!r}")
        start_shard, node_start = 0, None
        if exclusive_start is not None:
            if not (isinstance(exclusive_start, tuple)
                    and len(exclusive_start) == 3
                    and exclusive_start[0] == _SHARD_TOKEN):
                raise ValueError(
                    "sharded scan resumes only from a last_evaluated_key "
                    "it produced")
            _, start_shard, node_start = exclusive_start
        guard = self._enter_table(table) if (
            self.heat is not None) else None
        try:
            items: list[dict] = []
            scanned = 0
            consumed = 0
            for shard in range(start_shard, self.n_shards):
                remaining = None if limit is None else limit - scanned
                if remaining is not None and remaining <= 0:
                    return ScanResult(items,
                                      (_SHARD_TOKEN, shard, None),
                                      scanned, consumed)
                result = self.nodes[shard].scan(
                    table, filter_condition=filter_condition,
                    projection=projection, limit=remaining,
                    exclusive_start=node_start if shard == start_shard
                    else None,
                    consistency=consistency)
                items.extend(result.items)
                scanned += result.scanned_count
                consumed += result.consumed_bytes
                if result.last_evaluated_key is not None:
                    return ScanResult(
                        items,
                        (_SHARD_TOKEN, shard, result.last_evaluated_key),
                        scanned, consumed)
            return ScanResult(items, None, scanned, consumed)
        finally:
            self._exit_table(guard)

    def query_index(self, table: str, index_name: str, value: Any,
                    projection: Optional[Projection] = None,
                    consistency: Optional[str] = None) -> list[dict]:
        """Index lookup fan-out, merge-sorted to single-node order.

        One node sorts its matches by primary key (see
        :meth:`Table.query_index`); concatenating per-shard results in
        shard order would interleave that global order. The fan-out is
        therefore re-sorted by ``(index value, primary key)`` so the
        result is byte-identical to the same data on one node — callers
        (the IC's pending sweep, the commit path's shadow resolution)
        see deterministic, placement-independent ordering.

        With a ``projection`` the sort keys may be projected away, so
        the per-node fetch transparently widens the projection with the
        key attributes (+ the indexed attribute) and strips them after
        sorting; the widened rows are what each node meters.
        """
        if table not in self._schemas:
            raise TableNotFound(f"no table named {table!r}")
        schema = self._schemas[table]
        index = self.nodes[0].table(table)._indexes.get(index_name)
        index_attr = index.attribute if index is not None else None
        fetch_projection = projection
        if projection is not None:
            extra = [path(schema.hash_key)]
            if schema.range_key is not None:
                extra.append(path(schema.range_key))
            if index_attr is not None:
                extra.append(path(index_attr))
            fetch_projection = Projection(list(projection.paths) + extra)
        guard = self._enter_table(table) if (
            self.heat is not None) else None
        try:
            items: list[dict] = []
            for node in self.nodes:
                items.extend(node.query_index(table, index_name, value,
                                              projection=fetch_projection,
                                              consistency=consistency))
        finally:
            self._exit_table(guard)
        items.sort(key=lambda item: (
            _sort_token(item.get(index_attr) if index_attr else None),
            _sort_token_tuple(schema.extract(item))))
        if projection is not None:
            items = [projection.apply(item) for item in items]
        return items

    # -- cross-shard transactions ------------------------------------------------
    def transact_write(self, ops: Sequence[TransactOp]) -> None:
        """All-or-nothing conditional writes, across shards if need be.

        Single-shard groups delegate to the owning node's native
        ``TransactWriteItems``. A cross-shard group runs the lock-based
        two-phase path: a *prepare* and a *commit* round of
        conditional-write latency on each involved shard (2PC's two
        round trips), then — under every involved table's lock, in
        deterministic (shard, table) order — all conditions are checked
        and all writes applied with no intervening yield point. Nodes
        are durable and never crash (§2.2), so the protocol cannot stall
        between rounds; its observable cost is the doubled per-shard
        latency, its observable guarantee atomicity.
        """
        if not ops:
            return
        guard = None
        if self.heat is not None:
            guard = self._enter_pairs([
                (op.table,
                 op.item if isinstance(op, TransactPut) else op.key)
                for op in ops])
        try:
            self._transact_write_routed(ops)
        finally:
            self._exit_keys(guard)

    def _transact_write_routed(self, ops: Sequence[TransactOp]) -> None:
        groups: dict[int, list[TransactOp]] = {}
        for op in ops:
            key = op.item if isinstance(op, TransactPut) else op.key
            groups.setdefault(self.shard_for(op.table, key), []).append(op)
        if len(groups) == 1:
            shard, shard_ops = next(iter(groups.items()))
            self.nodes[shard].transact_write(shard_ops)
            return
        # Phase 1 latency: one prepare round per involved shard. Under
        # async_io the round's fan-out overlaps (all shards are contacted
        # concurrently; the round completes when the slowest answers) —
        # the two rounds themselves stay strictly sequential, as 2PC
        # requires.
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(groups):
                with scope.branch():
                    self.nodes[shard]._pay("db.txn",
                                           units=len(groups[shard]))
        if self.obs is not None:
            self.obs.tracer.event("2pc:prepared", cat="txn",
                                  shards=sorted(groups))
        self._interleave("2pc:prepared")
        # Phase 2 latency: one commit round per involved shard.
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(groups):
                with scope.branch():
                    self.nodes[shard]._pay("db.txn",
                                           units=len(groups[shard]))
        if self.obs is not None:
            self.obs.tracer.event("2pc:committed", cat="txn",
                                  shards=sorted(groups))
        self._interleave("2pc:committed")
        # Decision + apply under every involved table's lock.
        tables: dict[tuple, Table] = {}
        for shard, shard_ops in groups.items():
            for op in shard_ops:
                tables[(shard, op.table)] = (
                    self.nodes[shard]._tables[op.table])
        ordered = [tables[key] for key in sorted(tables)]
        acquired: list[Table] = []
        try:
            for tbl in ordered:
                tbl._lock.acquire()
                acquired.append(tbl)
            self._transact_locked(groups)
        finally:
            for tbl in reversed(acquired):
                tbl._lock.release()

    def _transact_locked(self, groups: dict) -> None:
        # Same check-then-apply semantics as one node's transaction,
        # reusing its phases so the two paths cannot drift — just spread
        # over every involved shard (each meters its own portion).
        for shard in sorted(groups):
            self.nodes[shard]._transact_check(groups[shard])
        for shard in sorted(groups):
            self.nodes[shard]._transact_apply(groups[shard])

    # -- stats ---------------------------------------------------------------------
    def time_sources(self) -> list:
        """Every node's time source (overlap scopes must cover them all)."""
        sources = []
        for node in self.nodes:
            sources.extend(node.time_sources())
        return sources

    @property
    def metering(self) -> Metering:
        """Fleet-wide counters, merged fresh from every node.

        Per-node books stay on ``nodes[i].metering``; this merged view
        satisfies the single-store reporting idiom
        (``copy()``/``diff()``/``dollar_cost()``).
        """
        merged = Metering()
        for node in self.nodes:
            merged.merge_from(node.metering)
        return merged

    def storage_bytes(self, table: Optional[str] = None) -> int:
        return sum(node.storage_bytes(table) for node in self.nodes)

    def item_count(self, table: str) -> int:
        return sum(node.item_count(table) for node in self.nodes)

    def items_per_shard(self, table: str) -> list[int]:
        """Row counts by shard (balance observability)."""
        return [node.item_count(table) for node in self.nodes]


__all__ = ["HashRing", "ShardedStore", "ShardedTableView"]
