"""A sharded store: N ``KVStore`` nodes behind one facade.

The linked DAAL keys every chain by ``(table, key)`` with all of an
item's rows sharing the item's hash key — exactly the unit a partitioned
store needs. :class:`ShardedStore` exploits that: it routes each
``(table, partition key)`` to one of N :class:`~repro.kvstore.KVStore`
nodes via consistent hashing, so

- every row of one item's chain (and therefore every row-scoped atomic
  conditional write, which is Beldi's whole atomicity story) lives on a
  single node;
- ``query`` — the skeleton traversal — is a single-node operation;
- each node keeps its **own** latency model, fault domain
  (:class:`~repro.kvstore.faults.FaultPolicy` with ``only_shards``),
  service capacity, and metering, so per-shard throttling, latency
  spikes, and saturation are all expressible;
- the DAAL, transaction, GC, and collector layers go through the facade
  unchanged — it implements the full ``KVStore`` surface.

Fan-out operations:

``scan``
    Walks the nodes in shard order; ``last_evaluated_key`` is a tagged
    ``(_SHARD_TOKEN, shard index, node key)`` tuple so paged scans (the
    GC's Appendix-A refinement) resume where they stopped.
``query_index``
    Queries every node and merge-sorts by ``(index value, primary key)``
    so the global order matches single-node semantics exactly,
    independent of placement.
``batch_get``
    Splits the batch by owning shard, one round trip per involved node,
    and re-merges aligned with the request. A node's partial throttle
    (or full ``ThrottledError``) surfaces as unprocessed positions; the
    call only raises when **no** key anywhere was served.
``transact_write``
    Ops on a single shard delegate to that node's native transaction.
    Ops spanning shards fall back to a lock-based two-phase path: pay a
    prepare and a commit round of conditional-write latency on every
    involved shard, then check all conditions and apply all writes under
    the involved tables' locks in deterministic order. The store
    substrate is durable and non-crashing by assumption (§2.2), so the
    coordinator window collapses to latency — what remains observable is
    the two-round cost and all-or-nothing atomicity.

``batch_write``
    The write-side twin: puts route by item, deletes by key, one
    ``BatchWriteItem`` round trip per involved node; unprocessed items
    merge back and the call raises only when no item anywhere applied.

With ``async_io=True`` the fan-outs (``batch_get``/``batch_write``) and
the cross-shard transaction's per-shard rounds run under an
:func:`~repro.kvstore.asyncio.overlap` scope: the involved nodes' round
trips pay ``max(latencies)`` plus per-node capacity queueing instead of
the sum. Off (the default for hand-built stores) keeps the sequential
virtual-latency model bit-for-bit.

Routing is stable: an MD5-based hash ring with virtual nodes, keyed by
``"<table>|<partition key repr>"`` — independent of process hash seeds,
so a given key lands on the same shard in every run and every test.

Invariants this layer must uphold (see ``docs/architecture.md``):

- **Chain co-location.** Every row of one item's chain routes by the
  item's partition key alone, so the row-scoped atomic conditional
  write — Beldi's entire atomicity story — never spans nodes, and
  ``query`` (the skeleton traversal) is single-node.
- **Placement-independent results.** Fan-out reads re-merge to exactly
  the single-node order (``query_index`` merge-sorts, ``batch_get``/
  ``batch_write`` align with the request), so no layer above can
  observe how many shards exist.
- **All-or-nothing cross-shard writes.** The two-phase path checks
  every condition and applies every write under all involved table
  locks with no yield point in between; the store substrate is durable
  and non-crashing (§2.2), so the coordinator window collapses to
  latency.
- **Per-shard fault/latency/metering domains stay independent** — one
  node's throttle or saturation never alters a sibling's draws.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Optional, Sequence

from repro.kvstore.asyncio import overlap
from repro.kvstore.errors import (
    TableExists,
    TableNotFound,
    ThrottledError,
)
from repro.kvstore.expressions import Condition, Projection, path
from repro.kvstore.metering import Metering
from repro.kvstore.store import (
    BatchGetResult,
    BatchWriteResult,
    KVStore,
    MAX_BATCH_WRITE_ITEMS,
    TransactPut,
    TransactOp,
)
from repro.kvstore.table import (
    KeySchema,
    QueryResult,
    ScanResult,
    Table,
    _sort_token,
    _sort_token_tuple,
)

_SHARD_TOKEN = "__shard__"


class HashRing:
    """Consistent hashing over shard indexes with virtual nodes.

    ``replicas`` virtual points per shard smooth the key distribution;
    MD5 keeps placement stable across processes and Python versions
    (``hash()`` is salted per process and would reshard every run).
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.replicas = replicas
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((self._digest(f"shard-{shard}#{replica}"),
                               shard))
        points.sort()
        self._points = [p[0] for p in points]
        self._owners = [p[1] for p in points]

    @staticmethod
    def _digest(token: str) -> int:
        return int.from_bytes(
            hashlib.md5(token.encode("utf-8")).digest()[:8], "big")

    def shard_of(self, token: str) -> int:
        """The shard owning ``token`` (first point clockwise)."""
        position = bisect_right(self._points, self._digest(token))
        if position == len(self._points):
            position = 0
        return self._owners[position]


class ShardedTableView:
    """The facade's answer to ``store.table(name)``.

    Presents one logical table backed by N physical ones. Index
    management fans out (indexes exist on every node); direct row
    operations route to the owning node's :class:`Table` — zero-latency,
    unmetered access, same as touching a ``Table`` directly (benchmark
    seeding and tests use this).
    """

    def __init__(self, store: "ShardedStore", name: str) -> None:
        self._store = store
        self.name = name

    @property
    def schema(self) -> KeySchema:
        return self._node_tables()[0].schema

    @property
    def max_item_bytes(self) -> int:
        return self._node_tables()[0].max_item_bytes

    @property
    def _indexes(self) -> dict:
        # All nodes carry identical index definitions; node 0 speaks for
        # the logical table.
        return self._node_tables()[0]._indexes

    def _node_tables(self) -> list:
        # ``node.table(name)`` rather than raw ``_tables`` access: a
        # replicated node answers with a view that also ships direct
        # mutations to its followers.
        return [node.table(self.name) for node in self._store.nodes]

    def _owner(self, key: Any):
        node = self._store.node_for(self.name, key)
        return node.table(self.name)

    def add_index(self, name: str, attribute: str) -> None:
        for table in self._node_tables():
            table.add_index(name, attribute)

    # -- direct (latency-free) row access ------------------------------------
    def get(self, key: Any,
            projection: Optional[Projection] = None) -> Optional[dict]:
        return self._owner(key).get(key, projection=projection)

    def put(self, item: dict,
            condition: Optional[Condition] = None) -> None:
        key = self.schema.extract(item)
        self._owner(key).put(item, condition=condition)

    def update(self, key: Any, updates, condition=None) -> dict:
        return self._owner(key).update(key, updates, condition=condition)

    def delete(self, key: Any, condition=None) -> Optional[dict]:
        return self._owner(key).delete(key, condition=condition)

    # -- stats ----------------------------------------------------------------
    def item_count(self) -> int:
        return sum(t.item_count() for t in self._node_tables())

    def storage_bytes(self) -> int:
        return sum(t.storage_bytes() for t in self._node_tables())


class ShardedStore:
    """N store nodes behind the single-store facade.

    Drop-in for :class:`KVStore` everywhere above the storage layer: the
    DAAL, ops, txn, GC, and env code paths run unchanged. Construct with
    pre-built nodes (each carrying its own time source, latency model,
    fault policy, and capacity), or let
    :meth:`~repro.core.runtime.BeldiRuntime` build a fleet via its
    ``shards=`` parameter.
    """

    def __init__(self, nodes: Sequence[KVStore],
                 ring: Optional[HashRing] = None,
                 async_io: bool = False) -> None:
        if not nodes:
            raise ValueError("a sharded store needs at least one node")
        self.nodes = list(nodes)
        self.ring = ring or HashRing(len(self.nodes))
        if self.ring.n_shards != len(self.nodes):
            raise ValueError(
                f"ring covers {self.ring.n_shards} shards but "
                f"{len(self.nodes)} nodes were given")
        #: Overlap independent per-shard round trips (fan-outs, the
        #: cross-shard transaction rounds) instead of serializing their
        #: virtual latency. Off = the sequential model, bit-for-bit.
        self.async_io = async_io
        self._schemas: dict[str, KeySchema] = {}
        self._views: dict[str, ShardedTableView] = {}

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    # -- routing ---------------------------------------------------------------
    def _route_token(self, table: str, partition_value: Any) -> str:
        return f"{table}|{partition_value!r}"

    def shard_for(self, table: str, key: Any) -> int:
        """The shard index owning ``(table, key)``; key may be a scalar
        partition value (even for a ranged table), a (hash, range)
        tuple, or an item dict — only the partition component routes, so
        one item's whole chain co-locates."""
        schema = self._schemas.get(table)
        if schema is None:
            raise TableNotFound(f"no table named {table!r}")
        if isinstance(key, dict):
            partition_value = key[schema.hash_key]
        elif isinstance(key, tuple):
            partition_value = key[0]
        else:
            partition_value = key
        return self.ring.shard_of(self._route_token(table, partition_value))

    def node_for(self, table: str, key: Any) -> KVStore:
        return self.nodes[self.shard_for(table, key)]

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ShardedTableView:
        if name in self._schemas:
            raise TableExists(f"table {name!r} already exists")
        for node in self.nodes:
            node.create_table(name, hash_key, range_key, max_item_bytes)
        self._schemas[name] = KeySchema(hash_key, range_key)
        view = ShardedTableView(self, name)
        self._views[name] = view
        return view

    def ensure_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None
                     ) -> ShardedTableView:
        if name in self._schemas:
            return self._views[name]
        return self.create_table(name, hash_key, range_key, max_item_bytes)

    def table(self, name: str) -> ShardedTableView:
        view = self._views.get(name)
        if view is None:
            raise TableNotFound(f"no table named {name!r}")
        return view

    def drop_table(self, name: str) -> None:
        for node in self.nodes:
            node.drop_table(name)
        self._schemas.pop(name, None)
        self._views.pop(name, None)

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    # -- point ops (route to the owner) ----------------------------------------
    def get(self, table: str, key: Any,
            projection: Optional[Projection] = None,
            consistency: Optional[str] = None) -> Optional[dict]:
        return self.node_for(table, key).get(table, key,
                                             projection=projection,
                                             consistency=consistency)

    def put(self, table: str, item: dict,
            condition: Optional[Condition] = None) -> None:
        self.node_for(table, item).put(table, item, condition=condition)

    def update(self, table: str, key: Any, updates,
               condition: Optional[Condition] = None) -> dict:
        return self.node_for(table, key).update(table, key, updates,
                                                condition=condition)

    def delete(self, table: str, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        return self.node_for(table, key).delete(table, key,
                                                condition=condition)

    def query(self, table: str, hash_value: Any, **kwargs) -> QueryResult:
        # One partition lives on exactly one shard — no fan-out.
        return self.node_for(table, hash_value).query(table, hash_value,
                                                      **kwargs)

    # -- fan-out reads ----------------------------------------------------------
    def batch_get(self, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None,
                  consistency: Optional[str] = None
                  ) -> BatchGetResult:
        """Per-shard fan-out of one logical batch, re-merged in order.

        One ``batch_get`` round trip per involved node. Partial
        throttles (and whole-node ``ThrottledError``\\ s) become
        unprocessed positions in the merged result; the call raises only
        when not a single key on any shard was served.
        """
        if not keys:
            return BatchGetResult()
        by_shard: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            by_shard.setdefault(self.shard_for(table, key), []).append(index)
        results: list[Optional[dict]] = [None] * len(keys)
        unprocessed: list[int] = []
        served_any = False
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(by_shard):
                indexes = by_shard[shard]
                try:
                    with scope.branch():
                        got = self.nodes[shard].batch_get(
                            table, [keys[i] for i in indexes],
                            projection=projection,
                            consistency=consistency)
                except ThrottledError:
                    unprocessed.extend(indexes)
                    continue
                unserved = set(got.unprocessed_indexes)
                for position, index in enumerate(indexes):
                    if position in unserved:
                        unprocessed.append(index)
                    else:
                        served_any = True
                        results[index] = got[position]
        if not served_any:
            raise ThrottledError("db.batch_read throttled on every shard")
        return BatchGetResult(results,
                              unprocessed_indexes=sorted(unprocessed),
                              keys=keys)

    def batch_write(self, table: str, puts: Sequence[dict] = (),
                    deletes: Sequence[Any] = ()) -> BatchWriteResult:
        """Per-shard fan-out of one logical write batch.

        Puts route by item, deletes by key; each involved node pays one
        ``batch_write`` round trip (overlapped under ``async_io``).
        Partial throttles and whole-node ``ThrottledError``\\ s merge into
        the unprocessed lists; the call raises only when not a single
        item on any shard was applied.
        """
        puts = list(puts)
        deletes = list(deletes)
        total = len(puts) + len(deletes)
        if total == 0:
            return BatchWriteResult()
        if total > MAX_BATCH_WRITE_ITEMS:
            raise ValueError(
                f"batch_write accepts at most {MAX_BATCH_WRITE_ITEMS} "
                f"items per request, got {total}")
        puts_by_shard: dict[int, list[dict]] = {}
        deletes_by_shard: dict[int, list[Any]] = {}
        for item in puts:
            puts_by_shard.setdefault(
                self.shard_for(table, item), []).append(item)
        for key in deletes:
            deletes_by_shard.setdefault(
                self.shard_for(table, key), []).append(key)
        merged = BatchWriteResult()
        applied_any = False
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(set(puts_by_shard) | set(deletes_by_shard)):
                shard_puts = puts_by_shard.get(shard, [])
                shard_deletes = deletes_by_shard.get(shard, [])
                try:
                    with scope.branch():
                        result = self.nodes[shard].batch_write(
                            table, shard_puts, shard_deletes)
                except ThrottledError:
                    merged.merge_from(BatchWriteResult(shard_puts,
                                                       shard_deletes))
                    continue
                if (len(result.unprocessed_puts)
                        + len(result.unprocessed_deletes)
                        < len(shard_puts) + len(shard_deletes)):
                    applied_any = True
                merged.merge_from(result)
        if not applied_any:
            raise ThrottledError("db.batch_write throttled on every shard")
        return merged

    def scan(self, table: str,
             filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None,
             consistency: Optional[str] = None) -> ScanResult:
        """Shard-ordered scan with cross-shard paging.

        ``last_evaluated_key`` from a truncated sharded scan is a tagged
        tuple ``(_SHARD_TOKEN, shard, node_key)``; pass it back as
        ``exclusive_start`` to resume. Plain (untagged) start keys are
        not meaningful across shards and are rejected.
        """
        if table not in self._schemas:
            raise TableNotFound(f"no table named {table!r}")
        start_shard, node_start = 0, None
        if exclusive_start is not None:
            if not (isinstance(exclusive_start, tuple)
                    and len(exclusive_start) == 3
                    and exclusive_start[0] == _SHARD_TOKEN):
                raise ValueError(
                    "sharded scan resumes only from a last_evaluated_key "
                    "it produced")
            _, start_shard, node_start = exclusive_start
        items: list[dict] = []
        scanned = 0
        consumed = 0
        for shard in range(start_shard, self.n_shards):
            remaining = None if limit is None else limit - scanned
            if remaining is not None and remaining <= 0:
                return ScanResult(items,
                                  (_SHARD_TOKEN, shard, None),
                                  scanned, consumed)
            result = self.nodes[shard].scan(
                table, filter_condition=filter_condition,
                projection=projection, limit=remaining,
                exclusive_start=node_start if shard == start_shard
                else None,
                consistency=consistency)
            items.extend(result.items)
            scanned += result.scanned_count
            consumed += result.consumed_bytes
            if result.last_evaluated_key is not None:
                return ScanResult(
                    items,
                    (_SHARD_TOKEN, shard, result.last_evaluated_key),
                    scanned, consumed)
        return ScanResult(items, None, scanned, consumed)

    def query_index(self, table: str, index_name: str, value: Any,
                    projection: Optional[Projection] = None,
                    consistency: Optional[str] = None) -> list[dict]:
        """Index lookup fan-out, merge-sorted to single-node order.

        One node sorts its matches by primary key (see
        :meth:`Table.query_index`); concatenating per-shard results in
        shard order would interleave that global order. The fan-out is
        therefore re-sorted by ``(index value, primary key)`` so the
        result is byte-identical to the same data on one node — callers
        (the IC's pending sweep, the commit path's shadow resolution)
        see deterministic, placement-independent ordering.

        With a ``projection`` the sort keys may be projected away, so
        the per-node fetch transparently widens the projection with the
        key attributes (+ the indexed attribute) and strips them after
        sorting; the widened rows are what each node meters.
        """
        if table not in self._schemas:
            raise TableNotFound(f"no table named {table!r}")
        schema = self._schemas[table]
        index = self.nodes[0].table(table)._indexes.get(index_name)
        index_attr = index.attribute if index is not None else None
        fetch_projection = projection
        if projection is not None:
            extra = [path(schema.hash_key)]
            if schema.range_key is not None:
                extra.append(path(schema.range_key))
            if index_attr is not None:
                extra.append(path(index_attr))
            fetch_projection = Projection(list(projection.paths) + extra)
        items: list[dict] = []
        for node in self.nodes:
            items.extend(node.query_index(table, index_name, value,
                                          projection=fetch_projection,
                                          consistency=consistency))
        items.sort(key=lambda item: (
            _sort_token(item.get(index_attr) if index_attr else None),
            _sort_token_tuple(schema.extract(item))))
        if projection is not None:
            items = [projection.apply(item) for item in items]
        return items

    # -- cross-shard transactions ------------------------------------------------
    def transact_write(self, ops: Sequence[TransactOp]) -> None:
        """All-or-nothing conditional writes, across shards if need be.

        Single-shard groups delegate to the owning node's native
        ``TransactWriteItems``. A cross-shard group runs the lock-based
        two-phase path: a *prepare* and a *commit* round of
        conditional-write latency on each involved shard (2PC's two
        round trips), then — under every involved table's lock, in
        deterministic (shard, table) order — all conditions are checked
        and all writes applied with no intervening yield point. Nodes
        are durable and never crash (§2.2), so the protocol cannot stall
        between rounds; its observable cost is the doubled per-shard
        latency, its observable guarantee atomicity.
        """
        if not ops:
            return
        groups: dict[int, list[TransactOp]] = {}
        for op in ops:
            key = op.item if isinstance(op, TransactPut) else op.key
            groups.setdefault(self.shard_for(op.table, key), []).append(op)
        if len(groups) == 1:
            shard, shard_ops = next(iter(groups.items()))
            self.nodes[shard].transact_write(shard_ops)
            return
        # Phase 1 latency: one prepare round per involved shard. Under
        # async_io the round's fan-out overlaps (all shards are contacted
        # concurrently; the round completes when the slowest answers) —
        # the two rounds themselves stay strictly sequential, as 2PC
        # requires.
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(groups):
                with scope.branch():
                    self.nodes[shard]._pay("db.txn",
                                           units=len(groups[shard]))
        # Phase 2 latency: one commit round per involved shard.
        with overlap(self, enabled=self.async_io) as scope:
            for shard in sorted(groups):
                with scope.branch():
                    self.nodes[shard]._pay("db.txn",
                                           units=len(groups[shard]))
        # Decision + apply under every involved table's lock.
        tables: dict[tuple, Table] = {}
        for shard, shard_ops in groups.items():
            for op in shard_ops:
                tables[(shard, op.table)] = (
                    self.nodes[shard]._tables[op.table])
        ordered = [tables[key] for key in sorted(tables)]
        acquired: list[Table] = []
        try:
            for tbl in ordered:
                tbl._lock.acquire()
                acquired.append(tbl)
            self._transact_locked(groups)
        finally:
            for tbl in reversed(acquired):
                tbl._lock.release()

    def _transact_locked(self, groups: dict) -> None:
        # Same check-then-apply semantics as one node's transaction,
        # reusing its phases so the two paths cannot drift — just spread
        # over every involved shard (each meters its own portion).
        for shard in sorted(groups):
            self.nodes[shard]._transact_check(groups[shard])
        for shard in sorted(groups):
            self.nodes[shard]._transact_apply(groups[shard])

    # -- stats ---------------------------------------------------------------------
    def time_sources(self) -> list:
        """Every node's time source (overlap scopes must cover them all)."""
        sources = []
        for node in self.nodes:
            sources.extend(node.time_sources())
        return sources

    @property
    def metering(self) -> Metering:
        """Fleet-wide counters, merged fresh from every node.

        Per-node books stay on ``nodes[i].metering``; this merged view
        satisfies the single-store reporting idiom
        (``copy()``/``diff()``/``dollar_cost()``).
        """
        merged = Metering()
        for node in self.nodes:
            merged.merge_from(node.metering)
        return merged

    def storage_bytes(self, table: Optional[str] = None) -> int:
        return sum(node.storage_bytes(table) for node in self.nodes)

    def item_count(self, table: str) -> int:
        return sum(node.item_count(table) for node in self.nodes)

    def items_per_shard(self, table: str) -> list[int]:
        """Row counts by shard (balance observability)."""
        return [node.item_count(table) for node in self.nodes]


__all__ = ["HashRing", "ShardedStore", "ShardedTableView"]
