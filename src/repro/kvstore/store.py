"""The store facade: tables + virtual latency + metering + faults.

``KVStore`` is what every other layer talks to. Each public operation:

1. optionally consults the fault policy (throttling, latency spikes),
2. sleeps a calibrated virtual latency through the time source,
3. performs the atomic table operation,
4. meters the bytes and request units consumed.

With a :class:`NullTimeSource` (the default) the store runs synchronously
with zero latency — unit tests use it directly without a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.kvstore.errors import (
    TableExists,
    TableNotFound,
    ThrottledError,
    TransactionCanceled,
    ConditionFailed,
    UnavailableError,
)
from repro.kvstore.expressions import Condition, Projection, UpdateAction
from repro.kvstore.faults import FaultPolicy, FaultTimeline
from repro.kvstore.item import item_size
from repro.kvstore.metering import Metering
from repro.kvstore.table import KeySchema, QueryResult, ScanResult, Table
from repro.sim.kernel import SimKernel
from repro.sim.latency import LatencyModel, ServiceCapacity
from repro.sim.randsrc import RandomSource


class TimeSource:
    """Protocol: provides virtual time passage for store operations.

    ``pay`` is the store-facing entry point: identical to ``sleep``
    unless an :func:`~repro.kvstore.asyncio.overlap` scope is attached,
    in which case the duration is deferred into the scope's completion
    frontier instead of sleeping inline. ``pending_offset`` exposes the
    scope cursor so capacity queues see overlapped arrivals at their
    true issue offsets; ``clock_id`` identifies the underlying clock so
    scope settlement never double-sleeps sources sharing one kernel.
    """

    #: Active overlap scope, attached by :func:`repro.kvstore.asyncio.overlap`.
    _ov_scope = None

    def sleep(self, duration: float) -> None:
        raise NotImplementedError

    def now(self) -> float:
        raise NotImplementedError

    def pay(self, duration: float) -> None:
        """Sleep ``duration``, or defer it into the active overlap scope."""
        scope = self._ov_scope
        if scope is not None:
            scope.add(duration)
        else:
            self.sleep(duration)

    def pending_offset(self) -> float:
        """Virtual time already accumulated by the active scope's strand."""
        scope = self._ov_scope
        return scope.cursor if scope is not None else 0.0

    def clock_id(self):
        """Identity of the clock this source advances (for deduping)."""
        return id(self)


class NullTimeSource(TimeSource):
    """Zero-latency time source for direct (non-simulated) use.

    Zero- and negative-duration sleeps are no-ops, exactly as in
    :class:`KernelTimeSource` — the two sources must agree so that a
    zero-latency store meters and times identically under both.
    """

    def __init__(self) -> None:
        self._ticks = 0.0

    def sleep(self, duration: float) -> None:
        if duration > 0:
            self._ticks += duration

    def now(self) -> float:
        return self._ticks


class KernelTimeSource(TimeSource):
    """Time source backed by the simulation kernel (virtual ms)."""

    def __init__(self, kernel: SimKernel) -> None:
        self.kernel = kernel

    def sleep(self, duration: float) -> None:
        if duration > 0 and self.kernel.current_process is not None:
            self.kernel.sleep(duration)

    def now(self) -> float:
        return self.kernel.now

    def clock_id(self):
        # All sources over one kernel share a clock: an overlap scope
        # spanning several store nodes must settle its frontier once.
        return ("kernel", id(self.kernel))


@dataclass(frozen=True)
class TransactPut:
    table: str
    item: dict
    condition: Optional[Condition] = None


@dataclass(frozen=True)
class TransactUpdate:
    table: str
    key: Any
    updates: Sequence[UpdateAction]
    condition: Optional[Condition] = None


@dataclass(frozen=True)
class TransactDelete:
    table: str
    key: Any
    condition: Optional[Condition] = None


TransactOp = Union[TransactPut, TransactUpdate, TransactDelete]


#: DynamoDB ``BatchWriteItem`` caps one request at 25 put/delete items.
MAX_BATCH_WRITE_ITEMS = 25


class BatchWriteResult:
    """``batch_write``'s return value: what the round trip left unserved.

    Mirrors DynamoDB ``BatchWriteItem``'s ``UnprocessedItems``: under a
    throttle the store may apply only a prefix of the batch and hand the
    rest back for the caller to retry (:func:`batch_write_all` is the
    retrying wrapper). ``unprocessed_puts`` holds the unapplied item
    dicts, ``unprocessed_deletes`` the unapplied keys, both in request
    order.
    """

    def __init__(self, unprocessed_puts: Sequence[dict] = (),
                 unprocessed_deletes: Sequence[Any] = ()) -> None:
        self.unprocessed_puts: list[dict] = list(unprocessed_puts)
        self.unprocessed_deletes: list[Any] = list(unprocessed_deletes)

    @property
    def complete(self) -> bool:
        return not self.unprocessed_puts and not self.unprocessed_deletes

    def merge_from(self, other: "BatchWriteResult") -> None:
        self.unprocessed_puts.extend(other.unprocessed_puts)
        self.unprocessed_deletes.extend(other.unprocessed_deletes)


class BatchGetResult(list):
    """``batch_get``'s return value: aligned rows plus the unserved rest.

    Behaves as a plain list of ``Optional[dict]`` aligned with the
    requested keys (missing rows are ``None``), so callers that predate
    partial results keep working unchanged. Under throttling the store
    may serve only part of the batch — DynamoDB's ``UnprocessedKeys`` —
    in which case the unserved positions are ``None`` *and* listed in
    :attr:`unprocessed_indexes`/:attr:`unprocessed_keys` for the caller
    to retry. Use :func:`batch_get_all` for a retrying wrapper.
    """

    def __init__(self, items: Sequence[Optional[dict]] = (),
                 unprocessed_indexes: Sequence[int] = (),
                 keys: Sequence[Any] = ()) -> None:
        super().__init__(items)
        self.unprocessed_indexes: list[int] = list(unprocessed_indexes)
        self.unprocessed_keys: list[Any] = [
            keys[i] for i in self.unprocessed_indexes] if keys else []

    @property
    def complete(self) -> bool:
        return not self.unprocessed_indexes


class KVStore:
    """A collection of tables behind one latency/metering boundary.

    ``shard_id`` names this node inside a
    :class:`~repro.kvstore.sharding.ShardedStore` (``None`` for a
    standalone store) and scopes shard-targeted fault policies.
    ``capacity`` bounds the node's parallelism: when set, operations
    queue through a :class:`~repro.sim.latency.ServiceCapacity` with that
    many servers, so a saturated node exhibits queueing delay instead of
    unbounded concurrency.
    """

    def __init__(self, time_source: Optional[TimeSource] = None,
                 latency: Optional[LatencyModel] = None,
                 rand: Optional[RandomSource] = None,
                 faults: Optional[FaultPolicy] = None,
                 shard_id: Optional[int] = None,
                 capacity: Optional[int] = None) -> None:
        self.time = time_source or NullTimeSource()
        self.latency = latency or LatencyModel.zero()
        self.rand = rand or RandomSource(0, "kvstore")
        self.faults = faults
        self.shard_id = shard_id
        #: Scheduled fault windows (:class:`FaultTimeline`), installed by
        #: the runtime or a test; ``None`` (the default) skips the hook
        #: with one attribute check.
        self.timeline: Optional[FaultTimeline] = None
        #: ``"leader"`` / ``"follower"`` when this node serves inside a
        #: :class:`~repro.kvstore.replication.ReplicaGroup` (set by the
        #: group; endpoint-static across failovers). Scopes role-targeted
        #: fault windows.
        self.replica_role: Optional[str] = None
        # capacity=0 must reach ServiceCapacity's ValueError, not
        # silently mean "unbounded" — only None disables queueing.
        self.queue = (ServiceCapacity(capacity)
                      if capacity is not None else None)
        self.metering = Metering()
        #: Observability hub (``repro.obs``), attached by an
        #: observability-enabled runtime; ``None`` (the default) skips
        #: every recording hook with one attribute check.
        self.obs = None
        self._tables: dict[str, Table] = {}

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None) -> Table:
        if name in self._tables:
            raise TableExists(f"table {name!r} already exists")
        kwargs = {}
        if max_item_bytes is not None:
            kwargs["max_item_bytes"] = max_item_bytes
        table = Table(name, KeySchema(hash_key, range_key), **kwargs)
        self._tables[name] = table
        return table

    def ensure_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None) -> Table:
        if name in self._tables:
            return self._tables[name]
        return self.create_table(name, hash_key, range_key, max_item_bytes)

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise TableNotFound(f"no table named {name!r}")
        return table

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- latency/fault boundary --------------------------------------------------
    def _throttled(self, op: str) -> bool:
        return (self.faults is not None
                and self.faults.should_throttle(self.rand, op,
                                                shard=self.shard_id))

    def _timeline_check(self, op: str) -> None:
        """Apply scheduled fault windows before the operation runs.

        Raises before any table effect, so every error here is safe to
        retry verbatim. An empty timeline returns after one check.
        """
        timeline = self.timeline
        if timeline is None or not timeline.windows:
            return
        now = self.time.now()
        timeline.observe(self, now)
        if timeline.outage_active(now, op, self.shard_id,
                                  self.replica_role):
            raise UnavailableError(
                f"{op} unavailable (scheduled outage on "
                f"shard {self.shard_id})")
        rate = timeline.burst_rate(now, op, self.shard_id,
                                   self.replica_role)
        if rate > 0 and self.rand.random() < rate:
            raise ThrottledError(f"{op} throttled (error burst)")

    def _charge(self, op: str, units: float = 0.0) -> None:
        """Pay the virtual-time cost of one (admitted) operation.

        Under an :func:`~repro.kvstore.asyncio.overlap` scope the cost is
        deferred into the scope's frontier (``pay``) rather than slept
        inline; the capacity queue still sees the true arrival offset, so
        overlapped operations queue exactly as concurrent arrivals would.
        """
        multiplier = 1.0
        if self.faults is not None:
            multiplier = self.faults.latency_multiplier(
                self.rand, op, shard=self.shard_id)
        if self.timeline is not None and self.timeline.windows:
            multiplier *= self.timeline.latency_multiplier(
                self.time.now(), op, self.shard_id, self.replica_role)
        service = self.latency.sample(op, units=units) * multiplier
        if self.queue is not None and service > 0:
            service = self.queue.delay(
                self.time.now() + self.time.pending_offset(), service)
        self.time.pay(service)

    def _span(self, op: str, table: str, start: float, **args) -> None:
        """Record one store round-trip span (no-op without a tracer).

        Span names mirror the metering op keys exactly, so every
        metered request has exactly one ``store.<op>`` span — the
        parity the observability tests pin.
        """
        obs = self.obs
        if obs is not None:
            obs.tracer.record_span(
                f"store.{op}", cat="store", start=start,
                end=self.time.now(), shard=self.shard_id, table=table,
                **args)

    def _pay(self, op: str, units: float = 0.0) -> None:
        self._timeline_check(op)
        if self._throttled(op):
            raise ThrottledError(f"{op} throttled")
        self._charge(op, units=units)

    # -- point ops ---------------------------------------------------------------
    def get(self, table: str, key: Any,
            projection: Optional[Projection] = None,
            consistency: Optional[str] = None) -> Optional[dict]:
        """Point read.

        ``consistency`` is the DynamoDB knob: ``None``/``"strong"`` is a
        strongly consistent read (full price); ``"eventual"`` meters at
        half a read unit. On a plain :class:`KVStore` both serve the same
        (single, current) state — a
        :class:`~repro.kvstore.replication.ReplicaGroup` additionally
        routes eventual reads to a possibly-lagging follower.
        """
        tbl = self.table(table)
        start = self.time.now()
        self._pay("db.read")
        item = tbl.get(key, projection=projection)
        nbytes = item_size(item) if item else 0
        self.metering.record_read("read", table, nbytes,
                                  consistency=consistency)
        self._span("read", table, start)
        return item

    def batch_get(self, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None,
                  consistency: Optional[str] = None
                  ) -> BatchGetResult:
        """Read many rows of one table in a single round trip.

        Models DynamoDB ``BatchGetItem`` restricted to one table: the
        whole batch pays one latency/fault draw and meters as a single
        request whose read units cover every served row. Results align
        with ``keys``; missing rows come back as ``None``. An empty
        batch is free.

        Throttling is DynamoDB-style **partial**: a throttle draw serves
        only a prefix of the batch and reports the remainder through
        :attr:`BatchGetResult.unprocessed_indexes` — callers retry the
        rest (see :func:`batch_get_all`). Only when *nothing* could be
        served (always the case for a single-key batch) does the call
        raise :class:`ThrottledError`, matching the point-read contract.
        """
        if not keys:
            return BatchGetResult()
        tbl = self.table(table)
        start = self.time.now()
        self._timeline_check("db.batch_read")
        served = len(keys)
        if self._throttled("db.batch_read"):
            served = self.rand.randint(0, len(keys) - 1)
            if served == 0:
                raise ThrottledError("db.batch_read throttled")
        self._charge("db.batch_read", units=served)
        items: list[Optional[dict]] = []
        total_bytes = 0
        for key in keys[:served]:
            item = tbl.get(key, projection=projection)
            items.append(item)
            total_bytes += item_size(item) if item else 0
        items.extend(None for _ in range(len(keys) - served))
        self.metering.record_read("batch_get", table, total_bytes,
                                  items=served, consistency=consistency)
        self._span("batch_get", table, start, items=served)
        return BatchGetResult(items,
                              unprocessed_indexes=range(served, len(keys)),
                              keys=keys)

    def batch_write(self, table: str, puts: Sequence[dict] = (),
                    deletes: Sequence[Any] = ()) -> BatchWriteResult:
        """Write/delete many rows of one table in a single round trip.

        Models DynamoDB ``BatchWriteItem`` restricted to one table: up to
        :data:`MAX_BATCH_WRITE_ITEMS` **unconditional** puts and deletes
        (DynamoDB supports no conditions in a batch) paying one
        latency/fault draw, metered as a single request whose write units
        cover every applied item — identical units to the sequential
        path, fewer round trips. An empty batch is free. A batch may not
        put and delete the same key (DynamoDB rejects such requests).

        Throttling is DynamoDB-style **partial**: a throttle draw applies
        only a prefix (puts first, then deletes, in request order) and
        reports the rest through :class:`BatchWriteResult` — callers
        retry via :func:`batch_write_all`. Only when *nothing* could be
        applied does the call raise :class:`ThrottledError`, matching the
        point-write contract.
        """
        puts = list(puts)
        deletes = list(deletes)
        total = len(puts) + len(deletes)
        if total == 0:
            return BatchWriteResult()
        if total > MAX_BATCH_WRITE_ITEMS:
            raise ValueError(
                f"batch_write accepts at most {MAX_BATCH_WRITE_ITEMS} "
                f"items per request, got {total}")
        tbl = self.table(table)
        # DynamoDB rejects any repeated key in one BatchWriteItem —
        # duplicate puts, duplicate deletes, or a put+delete pair.
        touched = set()
        for token in ([repr(tbl.schema.extract(item)) for item in puts]
                      + [repr(tbl.schema.normalize(key))
                         for key in deletes]):
            if token in touched:
                raise ValueError(
                    "batch_write may not touch the same key twice in "
                    "one request")
            touched.add(token)
        start = self.time.now()
        self._timeline_check("db.batch_write")
        served = total
        if self._throttled("db.batch_write"):
            served = self.rand.randint(0, total - 1)
            if served == 0:
                raise ThrottledError("db.batch_write throttled")
        self._charge("db.batch_write", units=served)
        sizes: list[int] = []
        served_puts = min(served, len(puts))
        for item in puts[:served_puts]:
            tbl.put(item)
            sizes.append(item_size(item))
        served_deletes = served - served_puts
        for key in deletes[:served_deletes]:
            removed = tbl.delete(key)
            sizes.append(item_size(removed) if removed else 0)
        self.metering.record_batch_write("batch_write", table, sizes)
        self._span("batch_write", table, start, items=served)
        return BatchWriteResult(
            unprocessed_puts=puts[served_puts:],
            unprocessed_deletes=deletes[served_deletes:])

    def put(self, table: str, item: dict,
            condition: Optional[Condition] = None) -> None:
        tbl = self.table(table)
        op = "db.cond_write" if condition is not None else "db.write"
        start = self.time.now()
        self._pay(op)
        tbl.put(item, condition=condition)
        kind = "cond_write" if condition is not None else "write"
        self.metering.record_write(kind, table, item_size(item))
        self._span(kind, table, start)

    def update(self, table: str, key: Any,
               updates: Sequence[UpdateAction],
               condition: Optional[Condition] = None) -> dict:
        tbl = self.table(table)
        op = "db.cond_write" if condition is not None else "db.write"
        start = self.time.now()
        self._pay(op)
        new_item = tbl.update(key, updates, condition=condition)
        kind = "cond_write" if condition is not None else "write"
        self.metering.record_write(kind, table, item_size(new_item))
        self._span(kind, table, start)
        return new_item

    def delete(self, table: str, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        tbl = self.table(table)
        start = self.time.now()
        self._pay("db.delete")
        removed = tbl.delete(key, condition=condition)
        self.metering.record_write("delete", table,
                                   item_size(removed) if removed else 0)
        self._span("delete", table, start)
        return removed

    # -- queries/scans --------------------------------------------------------------
    def query(self, table: str, hash_value: Any,
              range_condition: Optional[Condition] = None,
              filter_condition: Optional[Condition] = None,
              projection: Optional[Projection] = None,
              limit: Optional[int] = None,
              exclusive_start: Optional[Any] = None,
              reverse: bool = False,
              consistency: Optional[str] = None) -> QueryResult:
        tbl = self.table(table)
        start = self.time.now()
        result = tbl.query(hash_value, range_condition=range_condition,
                           filter_condition=filter_condition,
                           projection=projection, limit=limit,
                           exclusive_start=exclusive_start, reverse=reverse)
        self._pay("db.query", units=result.scanned_count)
        self.metering.record_read("query", table, result.consumed_bytes,
                                  items=max(1, result.scanned_count),
                                  consistency=consistency)
        self._span("query", table, start)
        return result

    def scan(self, table: str,
             filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None,
             consistency: Optional[str] = None) -> ScanResult:
        tbl = self.table(table)
        start = self.time.now()
        result = tbl.scan(filter_condition=filter_condition,
                          projection=projection, limit=limit,
                          exclusive_start=exclusive_start)
        self._pay("db.scan", units=result.scanned_count)
        self.metering.record_read("scan", table, result.consumed_bytes,
                                  items=max(1, result.scanned_count),
                                  consistency=consistency)
        self._span("scan", table, start)
        return result

    def query_index(self, table: str, index_name: str, value: Any,
                    projection: Optional[Projection] = None,
                    consistency: Optional[str] = None) -> list[dict]:
        tbl = self.table(table)
        start = self.time.now()
        items = tbl.query_index(index_name, value, projection=projection)
        self._pay("db.query", units=len(items))
        nbytes = sum(item_size(it) for it in items)
        self.metering.record_read("query_index", table, nbytes,
                                  items=max(1, len(items)),
                                  consistency=consistency)
        self._span("query_index", table, start)
        return items

    # -- cross-table transactions ------------------------------------------------------
    def transact_write(self, ops: Sequence[TransactOp]) -> None:
        """All-or-nothing conditional writes across tables.

        Models DynamoDB ``TransactWriteItems``; used only by the paper's
        cross-table-transaction baseline variant (Figs. 13 and 16), never by
        Beldi's linked-DAAL path.
        """
        if not ops:
            return
        self._pay("db.txn", units=len(ops))
        tables = [self.table(op.table) for op in ops]
        # Acquire in deterministic order to avoid lock-order inversion.
        unique = {id(t): t for t in tables}
        ordered = sorted(unique.values(), key=lambda t: t.name)
        acquired = []
        try:
            for tbl in ordered:
                tbl._lock.acquire()
                acquired.append(tbl)
            self._transact_locked(ops)
        finally:
            for tbl in reversed(acquired):
                tbl._lock.release()

    def _transact_locked(self, ops: Sequence[TransactOp]) -> None:
        self._transact_check(ops)
        self._transact_apply(ops)

    def _transact_check(self, ops: Sequence[TransactOp]) -> None:
        """Phase 1: check all conditions against current state.

        Callers must hold every involved table's lock (this store's
        ``transact_write`` does; a ``ShardedStore`` holds the locks
        across all involved nodes before checking any of them)."""
        for op in ops:
            tbl = self.table(op.table)
            if isinstance(op, TransactPut):
                existing = tbl.get(tbl.schema.extract(op.item))
            else:
                existing = tbl.get(op.key)
            if op.condition is not None and not op.condition.evaluate(
                    existing):
                raise TransactionCanceled(
                    f"condition failed on {op.table}")

    def _transact_apply(self, ops: Sequence[TransactOp]) -> None:
        """Phase 2: apply (conditions re-checked by the table; they
        cannot fail because every table lock is held)."""
        start = self.time.now()
        total_bytes = 0
        for op in ops:
            tbl = self.table(op.table)
            if isinstance(op, TransactPut):
                tbl.put(op.item, condition=op.condition)
                total_bytes += item_size(op.item)
            elif isinstance(op, TransactUpdate):
                new_item = tbl.update(op.key, op.updates,
                                      condition=op.condition)
                total_bytes += item_size(new_item)
            else:
                tbl.delete(op.key, condition=op.condition)
        self.metering.record_write("transact_write", ops[0].table,
                                   total_bytes)
        self._span("transact_write", ops[0].table, start, items=len(ops))

    # -- stats ---------------------------------------------------------------------------
    def time_sources(self) -> list[TimeSource]:
        """The time sources an overlap scope must cover (just ours)."""
        return [self.time]

    def storage_bytes(self, table: Optional[str] = None) -> int:
        if table is not None:
            return self.table(table).storage_bytes()
        return sum(t.storage_bytes() for t in self._tables.values())

    def item_count(self, table: str) -> int:
        return self.table(table).item_count()


def batch_get_all(store, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None,
                  attempts: int = 4) -> list[Optional[dict]]:
    """``batch_get`` that retries the unprocessed remainder to completion.

    Issues up to ``attempts`` batched round trips, each covering only the
    keys the previous one left unprocessed; whatever still remains after
    that falls back to point ``get``\\ s (the pre-batching behavior, with
    its usual throttling semantics). The returned plain list aligns with
    ``keys``. This is the retry loop DynamoDB's SDKs run for
    ``UnprocessedKeys``, and what the transaction-commit and GC callers
    use so a partial throttle never fails a whole batch.
    """
    results: list[Optional[dict]] = [None] * len(keys)
    pending = list(range(len(keys)))
    for _ in range(attempts):
        if not pending:
            return results
        try:
            got = store.batch_get(table, [keys[i] for i in pending],
                                  projection=projection)
        except ThrottledError:
            continue  # nothing served this round; retry the same set
        unprocessed = set(got.unprocessed_indexes)
        still_pending = []
        for position, index in enumerate(pending):
            if position in unprocessed:
                still_pending.append(index)
            else:
                results[index] = got[position]
        pending = still_pending
    for index in pending:
        results[index] = store.get(table, keys[index],
                                   projection=projection)
    return results


def batch_write_all(store, table: str, puts: Sequence[dict] = (),
                    deletes: Sequence[Any] = (),
                    attempts: int = 4) -> None:
    """``batch_write`` that chunks, then retries the remainder to done.

    Splits arbitrarily large put/delete sets into
    :data:`MAX_BATCH_WRITE_ITEMS`-item requests, re-issues whatever each
    round left unprocessed (throttled whole batches included), and after
    ``attempts`` rounds falls back to point ``put``/``delete`` calls —
    the pre-batching behavior, with its usual throttling semantics. This
    is the retry loop DynamoDB's SDKs run for ``UnprocessedItems``; the
    GC and the parallel-invoke claim path use it so a partial throttle
    never fails a whole batch.
    """
    pending_puts = list(puts)
    pending_deletes = list(deletes)
    for _ in range(attempts):
        if not pending_puts and not pending_deletes:
            return
        retry_puts: list[dict] = []
        retry_deletes: list[Any] = []
        queue_puts, queue_deletes = pending_puts, pending_deletes
        while queue_puts or queue_deletes:
            chunk_puts = queue_puts[:MAX_BATCH_WRITE_ITEMS]
            queue_puts = queue_puts[len(chunk_puts):]
            room = MAX_BATCH_WRITE_ITEMS - len(chunk_puts)
            chunk_deletes = queue_deletes[:room]
            queue_deletes = queue_deletes[len(chunk_deletes):]
            try:
                result = store.batch_write(table, chunk_puts,
                                           chunk_deletes)
            except ThrottledError:
                retry_puts.extend(chunk_puts)
                retry_deletes.extend(chunk_deletes)
                continue
            retry_puts.extend(result.unprocessed_puts)
            retry_deletes.extend(result.unprocessed_deletes)
        pending_puts, pending_deletes = retry_puts, retry_deletes
    for item in pending_puts:
        store.put(table, item)
    for key in pending_deletes:
        store.delete(table, key)


__all__ = [
    "BatchGetResult",
    "BatchWriteResult",
    "ConditionFailed",
    "KVStore",
    "KernelTimeSource",
    "MAX_BATCH_WRITE_ITEMS",
    "NullTimeSource",
    "TimeSource",
    "TransactDelete",
    "TransactPut",
    "TransactUpdate",
    "batch_get_all",
    "batch_write_all",
]
