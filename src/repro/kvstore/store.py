"""The store facade: tables + virtual latency + metering + faults.

``KVStore`` is what every other layer talks to. Each public operation:

1. optionally consults the fault policy (throttling, latency spikes),
2. sleeps a calibrated virtual latency through the time source,
3. performs the atomic table operation,
4. meters the bytes and request units consumed.

With a :class:`NullTimeSource` (the default) the store runs synchronously
with zero latency — unit tests use it directly without a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.kvstore.errors import (
    TableExists,
    TableNotFound,
    ThrottledError,
    TransactionCanceled,
    ConditionFailed,
)
from repro.kvstore.expressions import Condition, Projection, UpdateAction
from repro.kvstore.faults import FaultPolicy
from repro.kvstore.item import item_size
from repro.kvstore.metering import Metering
from repro.kvstore.table import KeySchema, QueryResult, ScanResult, Table
from repro.sim.kernel import SimKernel
from repro.sim.latency import LatencyModel
from repro.sim.randsrc import RandomSource


class TimeSource:
    """Protocol: provides virtual time passage for store operations."""

    def sleep(self, duration: float) -> None:
        raise NotImplementedError

    def now(self) -> float:
        raise NotImplementedError


class NullTimeSource(TimeSource):
    """Zero-latency time source for direct (non-simulated) use."""

    def __init__(self) -> None:
        self._ticks = 0.0

    def sleep(self, duration: float) -> None:
        self._ticks += duration

    def now(self) -> float:
        return self._ticks


class KernelTimeSource(TimeSource):
    """Time source backed by the simulation kernel (virtual ms)."""

    def __init__(self, kernel: SimKernel) -> None:
        self.kernel = kernel

    def sleep(self, duration: float) -> None:
        if duration > 0 and self.kernel.current_process is not None:
            self.kernel.sleep(duration)

    def now(self) -> float:
        return self.kernel.now


@dataclass(frozen=True)
class TransactPut:
    table: str
    item: dict
    condition: Optional[Condition] = None


@dataclass(frozen=True)
class TransactUpdate:
    table: str
    key: Any
    updates: Sequence[UpdateAction]
    condition: Optional[Condition] = None


@dataclass(frozen=True)
class TransactDelete:
    table: str
    key: Any
    condition: Optional[Condition] = None


TransactOp = Union[TransactPut, TransactUpdate, TransactDelete]


class KVStore:
    """A collection of tables behind one latency/metering boundary."""

    def __init__(self, time_source: Optional[TimeSource] = None,
                 latency: Optional[LatencyModel] = None,
                 rand: Optional[RandomSource] = None,
                 faults: Optional[FaultPolicy] = None) -> None:
        self.time = time_source or NullTimeSource()
        self.latency = latency or LatencyModel.zero()
        self.rand = rand or RandomSource(0, "kvstore")
        self.faults = faults
        self.metering = Metering()
        self._tables: dict[str, Table] = {}

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None) -> Table:
        if name in self._tables:
            raise TableExists(f"table {name!r} already exists")
        kwargs = {}
        if max_item_bytes is not None:
            kwargs["max_item_bytes"] = max_item_bytes
        table = Table(name, KeySchema(hash_key, range_key), **kwargs)
        self._tables[name] = table
        return table

    def ensure_table(self, name: str, hash_key: str,
                     range_key: Optional[str] = None,
                     max_item_bytes: Optional[int] = None) -> Table:
        if name in self._tables:
            return self._tables[name]
        return self.create_table(name, hash_key, range_key, max_item_bytes)

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise TableNotFound(f"no table named {name!r}")
        return table

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- latency/fault boundary --------------------------------------------------
    def _pay(self, op: str, units: float = 0.0) -> None:
        multiplier = 1.0
        if self.faults is not None:
            if self.faults.should_throttle(self.rand, op):
                raise ThrottledError(f"{op} throttled")
            multiplier = self.faults.latency_multiplier(self.rand, op)
        self.time.sleep(self.latency.sample(op, units=units) * multiplier)

    # -- point ops ---------------------------------------------------------------
    def get(self, table: str, key: Any,
            projection: Optional[Projection] = None) -> Optional[dict]:
        tbl = self.table(table)
        self._pay("db.read")
        item = tbl.get(key, projection=projection)
        nbytes = item_size(item) if item else 0
        self.metering.record_read("read", table, nbytes)
        return item

    def batch_get(self, table: str, keys: Sequence[Any],
                  projection: Optional[Projection] = None
                  ) -> list[Optional[dict]]:
        """Read many rows of one table in a single round trip.

        Models DynamoDB ``BatchGetItem`` restricted to one table: the
        whole batch pays one latency/fault draw (a throttle rejects the
        entire batch) and meters as a single request whose read units
        cover every row. Results align with ``keys``; missing rows come
        back as ``None``. An empty batch is free.
        """
        if not keys:
            return []
        tbl = self.table(table)
        self._pay("db.batch_read", units=len(keys))
        items: list[Optional[dict]] = []
        total_bytes = 0
        for key in keys:
            item = tbl.get(key, projection=projection)
            items.append(item)
            total_bytes += item_size(item) if item else 0
        self.metering.record_read("batch_get", table, total_bytes,
                                  items=len(keys))
        return items

    def put(self, table: str, item: dict,
            condition: Optional[Condition] = None) -> None:
        tbl = self.table(table)
        op = "db.cond_write" if condition is not None else "db.write"
        self._pay(op)
        tbl.put(item, condition=condition)
        self.metering.record_write(
            "cond_write" if condition is not None else "write",
            table, item_size(item))

    def update(self, table: str, key: Any,
               updates: Sequence[UpdateAction],
               condition: Optional[Condition] = None) -> dict:
        tbl = self.table(table)
        op = "db.cond_write" if condition is not None else "db.write"
        self._pay(op)
        new_item = tbl.update(key, updates, condition=condition)
        self.metering.record_write(
            "cond_write" if condition is not None else "write",
            table, item_size(new_item))
        return new_item

    def delete(self, table: str, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        tbl = self.table(table)
        self._pay("db.delete")
        removed = tbl.delete(key, condition=condition)
        self.metering.record_write("delete", table,
                                   item_size(removed) if removed else 0)
        return removed

    # -- queries/scans --------------------------------------------------------------
    def query(self, table: str, hash_value: Any,
              range_condition: Optional[Condition] = None,
              filter_condition: Optional[Condition] = None,
              projection: Optional[Projection] = None,
              limit: Optional[int] = None,
              exclusive_start: Optional[Any] = None,
              reverse: bool = False) -> QueryResult:
        tbl = self.table(table)
        result = tbl.query(hash_value, range_condition=range_condition,
                           filter_condition=filter_condition,
                           projection=projection, limit=limit,
                           exclusive_start=exclusive_start, reverse=reverse)
        self._pay("db.query", units=result.scanned_count)
        self.metering.record_read("query", table, result.consumed_bytes,
                                  items=max(1, result.scanned_count))
        return result

    def scan(self, table: str,
             filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None) -> ScanResult:
        tbl = self.table(table)
        result = tbl.scan(filter_condition=filter_condition,
                          projection=projection, limit=limit,
                          exclusive_start=exclusive_start)
        self._pay("db.scan", units=result.scanned_count)
        self.metering.record_read("scan", table, result.consumed_bytes,
                                  items=max(1, result.scanned_count))
        return result

    def query_index(self, table: str, index_name: str, value: Any,
                    projection: Optional[Projection] = None) -> list[dict]:
        tbl = self.table(table)
        items = tbl.query_index(index_name, value, projection=projection)
        self._pay("db.query", units=len(items))
        nbytes = sum(item_size(it) for it in items)
        self.metering.record_read("query_index", table, nbytes,
                                  items=max(1, len(items)))
        return items

    # -- cross-table transactions ------------------------------------------------------
    def transact_write(self, ops: Sequence[TransactOp]) -> None:
        """All-or-nothing conditional writes across tables.

        Models DynamoDB ``TransactWriteItems``; used only by the paper's
        cross-table-transaction baseline variant (Figs. 13 and 16), never by
        Beldi's linked-DAAL path.
        """
        if not ops:
            return
        self._pay("db.txn", units=len(ops))
        tables = [self.table(op.table) for op in ops]
        # Acquire in deterministic order to avoid lock-order inversion.
        unique = {id(t): t for t in tables}
        ordered = sorted(unique.values(), key=lambda t: t.name)
        acquired = []
        try:
            for tbl in ordered:
                tbl._lock.acquire()
                acquired.append(tbl)
            self._transact_locked(ops)
        finally:
            for tbl in reversed(acquired):
                tbl._lock.release()

    def _transact_locked(self, ops: Sequence[TransactOp]) -> None:
        # Phase 1: check all conditions against current state.
        for op in ops:
            tbl = self.table(op.table)
            if isinstance(op, TransactPut):
                existing = tbl.get(tbl.schema.extract(op.item))
            else:
                existing = tbl.get(op.key)
            if op.condition is not None and not op.condition.evaluate(
                    existing):
                raise TransactionCanceled(
                    f"condition failed on {op.table}")
        # Phase 2: apply (conditions re-checked by the table; they cannot
        # fail because we hold every table lock).
        total_bytes = 0
        for op in ops:
            tbl = self.table(op.table)
            if isinstance(op, TransactPut):
                tbl.put(op.item, condition=op.condition)
                total_bytes += item_size(op.item)
            elif isinstance(op, TransactUpdate):
                new_item = tbl.update(op.key, op.updates,
                                      condition=op.condition)
                total_bytes += item_size(new_item)
            else:
                tbl.delete(op.key, condition=op.condition)
        self.metering.record_write("transact_write", ops[0].table,
                                   total_bytes)

    # -- stats ---------------------------------------------------------------------------
    def storage_bytes(self, table: Optional[str] = None) -> int:
        if table is not None:
            return self.table(table).storage_bytes()
        return sum(t.storage_bytes() for t in self._tables.values())

    def item_count(self, table: str) -> int:
        return self.table(table).item_count()


__all__ = [
    "ConditionFailed",
    "KVStore",
    "KernelTimeSource",
    "NullTimeSource",
    "TimeSource",
    "TransactDelete",
    "TransactPut",
    "TransactUpdate",
]
