"""Tables: key schemas, atomic row operations, queries, scans, indexes.

A table partitions items by a **hash key** and orders them within a
partition by an optional **range key**. Every mutation is atomic at item
granularity — this is the "atomicity scope" Beldi's linked DAAL is built
around. Conditions are checked and updates applied inside one critical
section, so concurrent simulated writers observe linearizable rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.kvstore.errors import (
    ConditionFailed,
    ItemTooLarge,
    ValidationError,
)
from repro.kvstore.expressions import (
    Condition,
    Projection,
    UpdateAction,
    apply_updates,
)
from repro.kvstore.item import (
    compare_values,
    copy_item,
    item_size,
    validate_value,
)

DEFAULT_MAX_ITEM_BYTES = 400 * 1024  # DynamoDB's row cap


@dataclass(frozen=True)
class KeySchema:
    """Hash key plus optional range key, by attribute name."""

    hash_key: str
    range_key: Optional[str] = None

    def extract(self, item: dict) -> tuple:
        if self.hash_key not in item:
            raise ValidationError(f"item missing hash key {self.hash_key!r}")
        hash_value = item[self.hash_key]
        if self.range_key is None:
            return (hash_value,)
        if self.range_key not in item:
            raise ValidationError(
                f"item missing range key {self.range_key!r}")
        return (hash_value, item[self.range_key])

    def key_dict(self, key: tuple) -> dict:
        if self.range_key is None:
            return {self.hash_key: key[0]}
        return {self.hash_key: key[0], self.range_key: key[1]}

    def normalize(self, key: Any) -> tuple:
        """Accept a scalar, tuple, or dict and return the canonical tuple."""
        if isinstance(key, dict):
            return self.extract(key)
        if isinstance(key, tuple):
            expected = 1 if self.range_key is None else 2
            if len(key) != expected:
                raise ValidationError(
                    f"key tuple must have {expected} parts, got {len(key)}")
            return key
        if self.range_key is not None:
            raise ValidationError(
                "table has a range key; pass a (hash, range) tuple")
        return (key,)


@dataclass
class QueryResult:
    items: list[dict]
    last_evaluated_key: Optional[tuple] = None
    scanned_count: int = 0
    consumed_bytes: int = 0


# Scans and queries share a result shape.
ScanResult = QueryResult


@dataclass
class _SecondaryIndex:
    """A sparse global secondary index on one top-level attribute.

    Items that lack the attribute simply do not appear — the trick Beldi's
    intent collector uses to find pending intents cheaply (index on a
    ``Pending`` marker that is removed once the intent is done).
    """

    name: str
    attribute: str
    entries: dict[Any, set] = field(default_factory=dict)

    def remove(self, key: tuple, old_value: Any) -> None:
        bucket = self.entries.get(old_value)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self.entries[old_value]

    def insert(self, key: tuple, new_value: Any) -> None:
        self.entries.setdefault(new_value, set()).add(key)

    def lookup(self, value: Any) -> set:
        return self.entries.get(value, set())


def _hashable_index_value(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        raise ValidationError("index attributes must be scalar")
    return value


class Table:
    """One table: storage, indexes, atomic ops.

    All public methods are thread-safe; the simulation kernel already
    serializes processes, but unit tests exercise tables directly from
    multiple OS threads.
    """

    def __init__(self, name: str, schema: KeySchema,
                 max_item_bytes: int = DEFAULT_MAX_ITEM_BYTES) -> None:
        self.name = name
        self.schema = schema
        self.max_item_bytes = max_item_bytes
        self._partitions: dict[Any, dict[Any, dict]] = {}
        self._indexes: dict[str, _SecondaryIndex] = {}
        self._lock = threading.RLock()
        # Range-key order per partition, maintained incrementally so hot
        # partitions (long DAAL chains) do not pay a sort per query.
        self._sorted_cache: dict[Any, list] = {}

    # -- index management ----------------------------------------------------
    def add_index(self, name: str, attribute: str) -> None:
        with self._lock:
            if name in self._indexes:
                raise ValidationError(f"index {name!r} already exists")
            index = _SecondaryIndex(name, attribute)
            for key, item in self._iter_raw():
                if attribute in item:
                    index.insert(key, _hashable_index_value(item[attribute]))
            self._indexes[name] = index

    def _index_remove(self, key: tuple, item: Optional[dict]) -> None:
        if item is None:
            return
        for index in self._indexes.values():
            if index.attribute in item:
                index.remove(key, _hashable_index_value(
                    item[index.attribute]))

    def _index_insert(self, key: tuple, item: Optional[dict]) -> None:
        if item is None:
            return
        for index in self._indexes.values():
            if index.attribute in item:
                index.insert(key, _hashable_index_value(
                    item[index.attribute]))

    # -- raw storage helpers --------------------------------------------------
    def _iter_raw(self) -> Iterable[tuple[tuple, dict]]:
        for hash_value, partition in self._partitions.items():
            for range_value, item in partition.items():
                if self.schema.range_key is None:
                    yield (hash_value,), item
                else:
                    yield (hash_value, range_value), item

    def _get_raw(self, key: tuple) -> Optional[dict]:
        partition = self._partitions.get(key[0])
        if partition is None:
            return None
        range_value = key[1] if self.schema.range_key is not None else None
        return partition.get(range_value)

    def _put_raw(self, key: tuple, item: dict) -> None:
        partition = self._partitions.setdefault(key[0], {})
        range_value = key[1] if self.schema.range_key is not None else None
        if range_value not in partition:
            self._sorted_cache.pop(key[0], None)
        partition[range_value] = item

    def _delete_raw(self, key: tuple) -> None:
        partition = self._partitions.get(key[0])
        if partition is None:
            return
        range_value = key[1] if self.schema.range_key is not None else None
        if range_value in partition:
            self._sorted_cache.pop(key[0], None)
        partition.pop(range_value, None)
        if not partition:
            del self._partitions[key[0]]

    def _sorted_range_keys(self, hash_value: Any) -> list:
        cached = self._sorted_cache.get(hash_value)
        if cached is None:
            partition = self._partitions.get(hash_value, {})
            cached = sorted(partition.keys(), key=_sort_token)
            self._sorted_cache[hash_value] = cached
        return cached

    def _check_size(self, item: dict) -> None:
        size = item_size(item)
        if size > self.max_item_bytes:
            raise ItemTooLarge(
                f"item of {size} bytes exceeds {self.max_item_bytes} "
                f"byte cap in table {self.name!r}")

    # -- point operations ------------------------------------------------------
    def get(self, key: Any,
            projection: Optional[Projection] = None) -> Optional[dict]:
        key = self.schema.normalize(key)
        with self._lock:
            item = self._get_raw(key)
            if item is None:
                return None
            if projection is not None:
                return projection.apply(item)
            return copy_item(item)

    def put(self, item: dict, condition: Optional[Condition] = None) -> None:
        for value in item.values():
            validate_value(value)
        key = self.schema.extract(item)
        with self._lock:
            existing = self._get_raw(key)
            if condition is not None and not condition.evaluate(existing):
                raise ConditionFailed(
                    f"put condition failed on {self.name}:{key}")
            new_item = copy_item(item)
            self._check_size(new_item)
            self._index_remove(key, existing)
            self._put_raw(key, new_item)
            self._index_insert(key, new_item)

    def update(self, key: Any, updates: Sequence[UpdateAction],
               condition: Optional[Condition] = None) -> dict:
        """Atomically check ``condition`` and apply ``updates``.

        Creates the item (with just its key attributes) when absent,
        matching DynamoDB ``UpdateItem`` semantics. Returns the new item.
        """
        key = self.schema.normalize(key)
        with self._lock:
            existing = self._get_raw(key)
            if condition is not None and not condition.evaluate(existing):
                raise ConditionFailed(
                    f"update condition failed on {self.name}:{key}")
            if existing is None:
                draft = self.schema.key_dict(key)
            else:
                draft = copy_item(existing)
            apply_updates(draft, updates)
            for name in (self.schema.hash_key, self.schema.range_key):
                if name is not None and draft.get(name) != dict(
                        self.schema.key_dict(key)).get(name):
                    raise ValidationError(
                        f"update may not modify key attribute {name!r}")
            self._check_size(draft)
            self._index_remove(key, existing)
            self._put_raw(key, draft)
            self._index_insert(key, draft)
            return copy_item(draft)

    def delete(self, key: Any,
               condition: Optional[Condition] = None) -> Optional[dict]:
        key = self.schema.normalize(key)
        with self._lock:
            existing = self._get_raw(key)
            if condition is not None and not condition.evaluate(existing):
                raise ConditionFailed(
                    f"delete condition failed on {self.name}:{key}")
            if existing is None:
                return None
            self._index_remove(key, existing)
            self._delete_raw(key)
            return copy_item(existing)

    # -- queries and scans -------------------------------------------------------
    def query(self, hash_value: Any,
              range_condition: Optional[Condition] = None,
              filter_condition: Optional[Condition] = None,
              projection: Optional[Projection] = None,
              limit: Optional[int] = None,
              exclusive_start: Optional[Any] = None,
              reverse: bool = False) -> QueryResult:
        """All items in one partition, ordered by range key."""
        with self._lock:
            partition = self._partitions.get(hash_value, {})
            if self.schema.range_key is None:
                ordered = list(partition.values())
            else:
                range_keys = self._sorted_range_keys(hash_value)
                if reverse:
                    range_keys = list(reversed(range_keys))
                ordered = [partition[rk] for rk in range_keys]
            return self._page(ordered, range_condition, filter_condition,
                              projection, limit, exclusive_start,
                              key_of=lambda it: self.schema.extract(it))

    def scan(self, filter_condition: Optional[Condition] = None,
             projection: Optional[Projection] = None,
             limit: Optional[int] = None,
             exclusive_start: Optional[Any] = None) -> ScanResult:
        """Full-table scan in deterministic key order with paging.

        DynamoDB applies ``limit`` *before* the filter; the GC's paging
        (Appendix A, ``LastEvaluatedKey``) depends on that, so we mimic it.
        """
        with self._lock:
            ordered = [item for _key, item in
                       sorted(self._iter_raw(),
                              key=lambda kv: _sort_token_tuple(kv[0]))]
            return self._page(ordered, None, filter_condition, projection,
                              limit, exclusive_start,
                              key_of=lambda it: self.schema.extract(it))

    def _page(self, ordered: list, range_condition: Optional[Condition],
              filter_condition: Optional[Condition],
              projection: Optional[Projection], limit: Optional[int],
              exclusive_start: Optional[Any],
              key_of: Callable[[dict], tuple]) -> QueryResult:
        start_index = 0
        if exclusive_start is not None:
            for i, item in enumerate(ordered):
                if key_of(item) == tuple(exclusive_start):
                    start_index = i + 1
                    break
            else:
                start_index = len(ordered)
        items: list[dict] = []
        scanned = 0
        consumed = 0
        last_key: Optional[tuple] = None
        for item in ordered[start_index:]:
            if limit is not None and scanned >= limit:
                break
            scanned += 1
            last_key = key_of(item)
            if range_condition is not None and not range_condition.evaluate(
                    item):
                continue
            if filter_condition is not None and not filter_condition.evaluate(
                    item):
                continue
            if projection is not None:
                out = projection.apply(item)
                consumed += item_size(out)
                items.append(out)
            else:
                consumed += item_size(item)
                items.append(copy_item(item))
        exhausted = (limit is None or scanned < limit
                     or start_index + scanned >= len(ordered))
        return QueryResult(
            items=items,
            last_evaluated_key=None if exhausted else last_key,
            scanned_count=scanned,
            consumed_bytes=consumed)

    def query_index(self, index_name: str, value: Any,
                    projection: Optional[Projection] = None) -> list[dict]:
        """All items whose indexed attribute equals ``value``."""
        with self._lock:
            index = self._indexes.get(index_name)
            if index is None:
                raise ValidationError(f"no index named {index_name!r}")
            keys = sorted(index.lookup(value), key=_sort_token_tuple)
            results = []
            for key in keys:
                item = self._get_raw(key)
                if item is None:
                    continue
                if projection is not None:
                    results.append(projection.apply(item))
                else:
                    results.append(copy_item(item))
            return results

    # -- stats -----------------------------------------------------------------
    def item_count(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._partitions.values())

    def storage_bytes(self) -> int:
        with self._lock:
            return sum(item_size(item) for _k, item in self._iter_raw())


def _sort_token(value: Any) -> tuple:
    """Total order over heterogeneous key values (type rank, then value)."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    return (5, str(value))


def _sort_token_tuple(key: tuple) -> tuple:
    return tuple(_sort_token(part) for part in key)
