"""Deterministic virtual-time observability (tracing + metrics).

One :class:`Observability` instance serves a whole simulation — runtimes
sharing a kernel (and possibly a store) share it, so the exported trace
interleaves every participant on the one virtual clock.  Everything is
gated on ``BeldiConfig.observability``: with the flag off no instance is
built and every hook site stays on its pre-observability code path,
bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracer import Tracer, validate_chrome_trace

__all__ = ["Observability", "MetricsRegistry", "Tracer",
           "DEFAULT_BUCKETS", "validate_chrome_trace"]


class Observability:
    """Tracer + metrics registry bound to one kernel clock."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.tracer = Tracer(lambda: kernel.now)
        self.metrics = MetricsRegistry()

    # -- wiring ----------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Point every store layer (facades, groups, leaves) at us."""
        if store is None:
            return
        store.obs = self
        for node in getattr(store, "nodes", ()):
            self.attach_store(node)

    def export(self, runtime=None) -> dict:
        """Chrome trace + metrics snapshot in one JSON-ready dict —
        the payload DST failure artifacts embed."""
        return {
            "chrome_trace": self.tracer.to_chrome(),
            "metrics": self.snapshot(runtime),
        }

    # -- unified snapshot ------------------------------------------------------
    def snapshot(self, runtime=None) -> dict:
        """One dict unifying the registry with the stack's native stats.

        ``runtime`` contributes its store metering, capacity queues,
        tail cache, replication, and elasticity signals; without it the
        snapshot is just the registry.
        """
        snap = self.metrics.snapshot()
        if runtime is None:
            return snap
        store = runtime.store
        metering = store.metering
        snap["metering"] = {
            "ops": metering.snapshot(),
            "totals": metering.totals(),
        }
        shards = getattr(store, "nodes", None)
        if shards:
            snap["metering"]["per_shard"] = {
                str(node.shard_id): round(node.metering.dollar_cost(), 9)
                for node in shards}
        queues = {}
        for index, node in enumerate(_leaf_nodes(store)):
            queue = getattr(node, "queue", None)
            if queue is not None:
                queues[f"node{index}"] = {
                    "served": queue.stats_served,
                    "shard": node.shard_id,
                    "waited_ms": round(queue.stats_waited, 6),
                }
        if queues:
            snap["capacity"] = queues
        snap["tail_cache"] = runtime.tail_cache.stats.snapshot()
        repl = getattr(store, "replication_stats", None)
        if repl is not None:
            snap["replication"] = dict(
                sorted(dataclasses.asdict(repl).items()))
            snap["replication"]["lag"] = {
                str(shard): {str(f): lag for f, lag in sorted(lags.items())}
                for shard, lags in sorted(store.replication_lag().items())}
        resilience = getattr(runtime, "resilience", None)
        if resilience is not None:
            snap["resilience"] = resilience.snapshot()
        elasticity = getattr(runtime, "elasticity", None)
        if elasticity is not None:
            stats = elasticity.migrator.stats
            snap["elasticity"] = {
                "checks": elasticity.checks,
                "migrations": stats.migrations,
                "migration_dollars": round(stats.dollars(), 9),
                "rebalances": elasticity.rebalances,
                "rolled_back": stats.rolled_back,
                "rolled_forward": stats.rolled_forward,
                "rows_moved": stats.rows_moved,
                "skipped": stats.skipped,
            }
        return snap


def _leaf_nodes(store) -> list:
    """Every leaf ``KVStore`` under a (possibly nested) facade."""
    nodes = getattr(store, "nodes", None)
    if nodes is None:
        return [store]
    leaves: list = []
    for node in nodes:
        leaves.extend(_leaf_nodes(node))
    return leaves
