"""Unified metrics: counters, gauges, fixed-bucket histograms.

Snapshots are plain dicts with name-sorted keys so exports are stable
across runs and Python versions.  Histogram buckets are fixed at
construction (virtual-millisecond bounds by default), never derived
from the data — the same samples always land in the same buckets.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Default latency bucket upper bounds, in virtual milliseconds.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                   200.0, 500.0, 1000.0, 2000.0, 5000.0)


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound histogram with count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "overflow", "count",
                 "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.overflow += 1

    def snapshot(self) -> dict:
        buckets = [[bound, count] for bound, count
                   in zip(self.bounds, self.bucket_counts)]
        buckets.append([None, self.overflow])
        return {
            "buckets": buckets,
            "count": self.count,
            "max": self.max,
            "min": self.min,
            "sum": round(self.total, 6),
        }


class MetricsRegistry:
    """Name-addressed counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # -- convenience recording forms ------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> dict:
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }
