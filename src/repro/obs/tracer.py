"""Virtual-time tracer: deterministic nested spans + instant events.

The tracer timestamps everything with the sim kernel's virtual clock, so
two runs with the same seed and schedule produce byte-identical exports.
Records are sorted by ``(virtual time, phase, seq)`` where the seq is a
process-global monotone counter — no wall-clock and no ``id()`` values
ever reach the output.

Span nesting is tracked per OS thread.  Every sim process body runs
entirely on one pooled worker thread (see ``sim/kernel.py``), so a
``threading.local`` stack gives exactly the per-process nesting the
Chrome trace-event viewer expects.  Cross-process edges (a sync invoke
whose callee executes on another worker) are expressed with explicit
``parent_id`` references instead of stack containment.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Callable, Optional

#: Record phases for the deterministic sort order: spans sort before
#: instant events at the same virtual instant.
_PHASE_SPAN = 0
_PHASE_EVENT = 1

_SAFE_TYPES = (str, int, float, bool, type(None))


def _sanitize(value: Any) -> Any:
    """Clamp span/event args to JSON-safe primitives.

    Anything exotic is rendered with ``str`` so no object identity (the
    default ``repr`` embeds ``id()``) can leak into the export.
    """
    if isinstance(value, _SAFE_TYPES):
        if isinstance(value, float) and value != value:  # NaN
            return None
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in sorted(value.items())}
    text = str(value)
    return text if "0x" not in text else type(value).__name__


class _SpanHandle:
    """Context manager closing one span.

    A plain class (not ``@contextmanager``) so the close runs even when
    the body unwinds with a ``BaseException`` — a killed sim process
    raises ``ProcessKilled`` through every active span, and each one
    must still record its end at the kill instant.
    """

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: dict) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._record, failed=exc_type is not None)
        return False


class Tracer:
    """Collects spans and instant events in virtual time."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.records: list[dict] = []
        self._seq = itertools.count()
        self._local = threading.local()

    # -- span stack (per worker thread == per sim process) ---------------------
    def _stack(self) -> list[dict]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _detach_stack(self) -> Optional[list]:
        """Detach this thread's span stack (kernel callback isolation).

        The sim kernel's baton-passing dispatch runs ``call_later``
        callbacks on whichever worker thread blocked last; detaching the
        stack around the callback keeps those events parentless — exactly
        what they were when the driver thread (with its empty stack) ran
        them. Returns the previous stack for :meth:`_restore_stack`.
        """
        stack = getattr(self._local, "stack", None)
        self._local.stack = []
        return stack

    def _restore_stack(self, stack: Optional[list]) -> None:
        self._local.stack = [] if stack is None else stack

    # -- recording -------------------------------------------------------------
    def span(self, name: str, cat: str = "op",
             span_id: Optional[str] = None,
             parent_id: Optional[str] = None, **args: Any) -> _SpanHandle:
        """Open a nested span; close it by exiting the handle."""
        stack = self._stack()
        seq = next(self._seq)
        sid = span_id if span_id is not None else f"s{seq}"
        if parent_id is None and stack:
            parent_id = stack[-1]["span_id"]
        track = stack[-1]["track"] if stack else sid
        record = {
            "phase": _PHASE_SPAN,
            "seq": seq,
            "name": name,
            "cat": cat,
            "span_id": sid,
            "parent_id": parent_id,
            "track": track,
            "ts": self.clock(),
            "dur": None,
            "args": {str(k): _sanitize(v) for k, v in sorted(args.items())},
        }
        self.records.append(record)
        stack.append(record)
        return _SpanHandle(self, record)

    def _close(self, record: dict, failed: bool = False) -> None:
        stack = self._stack()
        # Pop through anything the body left open (it can only happen if
        # a nested span leaked; closing parents closes children too).
        while stack and stack[-1] is not record:
            leaked = stack.pop()
            if leaked["dur"] is None:
                leaked["dur"] = max(0.0, self.clock() - leaked["ts"])
        if stack and stack[-1] is record:
            stack.pop()
        if record["dur"] is None:
            record["dur"] = max(0.0, self.clock() - record["ts"])
        if failed:
            record["args"]["failed"] = True

    def record_span(self, name: str, cat: str, start: float, end: float,
                    **args: Any) -> None:
        """Record an already-finished span with explicit bounds.

        Used by the store layer, whose time source may defer latency
        under async-I/O overlap scopes — the caller passes the interval
        it actually observed.
        """
        stack = self._stack()
        seq = next(self._seq)
        sid = f"s{seq}"
        parent_id = stack[-1]["span_id"] if stack else None
        track = stack[-1]["track"] if stack else sid
        self.records.append({
            "phase": _PHASE_SPAN,
            "seq": seq,
            "name": name,
            "cat": cat,
            "span_id": sid,
            "parent_id": parent_id,
            "track": track,
            "ts": start,
            "dur": max(0.0, end - start),
            "args": {str(k): _sanitize(v) for k, v in sorted(args.items())},
        })

    def event(self, name: str, cat: str = "event", **args: Any) -> None:
        """Record an instant event at the current virtual time."""
        stack = self._stack()
        seq = next(self._seq)
        self.records.append({
            "phase": _PHASE_EVENT,
            "seq": seq,
            "name": name,
            "cat": cat,
            "span_id": f"s{seq}",
            "parent_id": stack[-1]["span_id"] if stack else None,
            "track": stack[-1]["track"] if stack else "events",
            "ts": self.clock(),
            "dur": None,
            "args": {str(k): _sanitize(v) for k, v in sorted(args.items())},
        })

    # -- export ----------------------------------------------------------------
    def sorted_records(self) -> list[dict]:
        """Records in the deterministic ``(ts, phase, seq)`` order."""
        return sorted(self.records,
                      key=lambda r: (r["ts"], r["phase"], r["seq"]))

    def to_jsonl(self) -> str:
        """One JSON object per line, deterministic order and key order."""
        lines = []
        for record in self.sorted_records():
            row = {k: v for k, v in record.items() if k != "phase"}
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (load in Perfetto / chrome://tracing).

        Virtual milliseconds map to trace microseconds.  Tracks (one per
        root span, i.e. per request/timer/process) become ``tid`` rows,
        numbered by first appearance in the sorted record order so the
        numbering is deterministic.
        """
        ordered = self.sorted_records()
        tids: dict[str, int] = {}
        events: list[dict] = []
        for record in ordered:
            track = record["track"]
            if track not in tids:
                tids[track] = len(tids)
                events.append({
                    "ph": "M", "pid": 0, "tid": tids[track],
                    "name": "thread_name", "ts": 0,
                    "args": {"name": track},
                })
        for record in ordered:
            args = dict(record["args"])
            args["span_id"] = record["span_id"]
            if record["parent_id"] is not None:
                args["parent_id"] = record["parent_id"]
            event = {
                "name": record["name"],
                "cat": record["cat"],
                "pid": 0,
                "tid": tids[record["track"]],
                "ts": round(record["ts"] * 1000.0, 3),
                "args": args,
            }
            if record["phase"] == _PHASE_SPAN:
                event["ph"] = "X"
                event["dur"] = round((record["dur"] or 0.0) * 1000.0, 3)
            else:
                event["ph"] = "i"
                event["s"] = "t"
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True)


def validate_chrome_trace(data: dict) -> list[str]:
    """Structural checks on an exported Chrome trace; returns problems.

    Checks: the event list exists, phases are known, timestamps and
    durations are non-negative finite numbers, and every span that names
    a parent fits inside some recorded interval of that parent (ids may
    repeat across intent-collapse re-executions, so any matching
    interval satisfies the nesting requirement).
    """
    problems: list[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans_by_id: dict[str, list[tuple[float, float]]] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"unknown phase {ph!r} on {event.get('name')}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"bad ts {ts!r} on {event.get('name')}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                problems.append(
                    f"bad dur {dur!r} on {event.get('name')}")
                continue
            sid = event.get("args", {}).get("span_id")
            if sid is not None:
                spans_by_id.setdefault(sid, []).append((ts, ts + dur))
    # ts and dur are quantized to 0.001 µs independently, so a child's
    # computed end may exceed its parent's by up to two rounding steps.
    tolerance = 0.002
    for event in events:
        if event.get("ph") != "X":
            continue
        parent = event.get("args", {}).get("parent_id")
        if parent is None:
            continue
        intervals = spans_by_id.get(parent)
        if not intervals:
            problems.append(
                f"span {event.get('name')} references unknown parent "
                f"{parent}")
            continue
        start = event["ts"]
        end = start + event["dur"]
        if not any(lo - tolerance <= start and end <= hi + tolerance
                   for lo, hi in intervals):
            problems.append(
                f"span {event.get('name')} [{start}, {end}] escapes "
                f"parent {parent}")
    return problems
