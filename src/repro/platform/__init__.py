"""Serverless platform emulator (substrate).

Models the slice of AWS Lambda behaviour that Beldi's design depends on
(§2.1 of the paper):

- functions registered by identifier and invoked on demand,
- stateless request routing — every invocation may land on a fresh worker,
- warm-container reuse with cold-start latency otherwise,
- an account-wide concurrency cap; the gateway rejects client requests in
  excess of it (the saturation bottleneck in the paper's Figures 14-15/26),
- per-invocation execution timeouts after which the worker is killed (the
  basis of Beldi's garbage-collection synchrony assumption, §5),
- synchronous and asynchronous invocation,
- periodic timer triggers (how the intent and garbage collectors run), and
- crash injection at named points inside a handler, which is how every
  exactly-once test drives the system through its failure space.

Nothing here knows about Beldi: this is the provider, and per the paper's
"deployable today" requirement, Beldi runs on it without modification.
"""

from repro.platform.context import InvocationContext
from repro.platform.crashes import (
    CrashAtOccurrence,
    CrashOnce,
    CrashPolicy,
    CrashScript,
    NeverCrash,
    PrefixedPolicy,
    RecordingPolicy,
    ProbabilisticCrash,
)
from repro.platform.errors import (
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    PlatformError,
    TooManyRequests,
)
from repro.platform.platform import PlatformConfig, PlatformStats, \
    ServerlessPlatform

__all__ = [
    "CrashAtOccurrence",
    "CrashOnce",
    "CrashPolicy",
    "CrashScript",
    "FunctionCrashed",
    "FunctionNotFound",
    "FunctionTimeout",
    "InvocationContext",
    "NeverCrash",
    "PrefixedPolicy",
    "RecordingPolicy",
    "PlatformConfig",
    "PlatformError",
    "PlatformStats",
    "ProbabilisticCrash",
    "ServerlessPlatform",
    "TooManyRequests",
]
