"""Per-invocation context handed to function handlers.

The context is the handler's only window onto the platform: its identity
(request id — what Beldi uses as the first instance id in a workflow), its
deadline, nested invocation of other functions, and the crash points the
fault-injection machinery hooks into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.sim.kernel import ProcessCrashed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.platform import ServerlessPlatform


class InvocationContext:
    """Identity and services for one running function instance."""

    def __init__(self, platform: "ServerlessPlatform", function: str,
                 request_id: str, invocation_index: int,
                 deadline: float, cold_start: bool) -> None:
        self.platform = platform
        self.function = function
        self.request_id = request_id
        self.invocation_index = invocation_index
        self.deadline = deadline
        self.cold_start = cold_start

    # -- time ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.platform.kernel.now

    def remaining_time(self) -> float:
        """Virtual ms until the platform kills this invocation."""
        return max(0.0, self.deadline - self.now)

    def sleep(self, duration: float) -> None:
        self.platform.kernel.sleep(duration)

    # -- nested invocation -------------------------------------------------------
    def sync_invoke(self, function: str, payload: Any) -> Any:
        """Call another function and wait for its result."""
        return self.platform.sync_invoke(function, payload)

    def async_invoke(self, function: str, payload: Any) -> None:
        """Fire-and-forget invocation of another function."""
        self.platform.async_invoke(function, payload)

    # -- fault injection -----------------------------------------------------------
    def crash_point(self, tag: str) -> None:
        """Die here if the active crash policy says so.

        Instrumentation is cooperative: the Beldi library brackets every
        externally visible operation with crash points, giving tests a
        complete, nameable crash space.
        """
        policy = self.platform.crash_policy
        if policy.should_crash(self.function, self.invocation_index, tag):
            self.platform.stats.injected_crashes += 1
            tracer = getattr(self.platform.kernel, "tracer", None)
            if tracer is not None:
                tracer.event(f"crash:{tag}", cat="fault",
                             function=self.function,
                             invocation=self.invocation_index)
            raise ProcessCrashed()
        # Crash points double as interleave points: under an exploring
        # schedule the kernel may run another ready process here. A no-op
        # (no yield) otherwise.
        self.platform.kernel.interleave_point(tag)

    def interleave(self, tag: str) -> None:
        """Named scheduling point with no crash semantics (conflict sites
        such as lock handoffs that the crash sweep does not enumerate)."""
        self.platform.kernel.interleave_point(tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<InvocationContext {self.function} "
                f"req={self.request_id} #{self.invocation_index}>")
