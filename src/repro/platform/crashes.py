"""Crash-fault injection policies.

A crash policy is consulted at *crash points*: named locations that the
code under test (the Beldi library, the apps) passes through via
``ctx.crash_point(tag)``. When the policy fires, the worker dies on the
spot — modelling an SSF instance crashing between, or in the middle of,
externally visible operations.

Exactly-once tests enumerate crash points deterministically
(:class:`CrashOnce`, :class:`CrashScript`) or explore them statistically
(:class:`ProbabilisticCrash` under hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.randsrc import RandomSource


class CrashPolicy:
    """Decides whether an invocation should crash at a crash point."""

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        raise NotImplementedError


class NeverCrash(CrashPolicy):
    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        return False


@dataclass
class RecordingPolicy(CrashPolicy):
    """Never crashes; records every crash point reached, in order.

    One recording run enumerates a workflow's full crash space — each
    ``(function, invocation ordinal, tag)`` triple is a spot where an
    instance could die. Sweep harnesses replay the workflow once per
    recorded point with :class:`CrashOnce` to prove exactly-once
    semantics hold at *every* reachable crash site, not just a sampled
    few.
    """

    points: list = field(default_factory=list)

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        self.points.append((function, invocation_index, tag))
        return False

    def unique_points(self) -> list:
        """The recorded crash sites, deduplicated, original order."""
        seen = set()
        out = []
        for point in self.points:
            if point not in seen:
                seen.add(point)
                out.append(point)
        return out


@dataclass
class CrashOnce(CrashPolicy):
    """Crash one specific (function, invocation ordinal, tag) and no more.

    ``invocation_index`` counts invocations of ``function`` from 0 in
    platform order, so "crash the first execution right after it logs its
    intent" is ``CrashOnce("hello", tag="intent-logged")``.
    """

    function: str
    tag: str
    invocation_index: int = 0
    fired: bool = field(default=False, init=False)

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        if self.fired:
            return False
        if (function == self.function and tag == self.tag
                and invocation_index == self.invocation_index):
            self.fired = True
            return True
        return False


@dataclass
class CrashScript(CrashPolicy):
    """Crash at an explicit set of (function, invocation ordinal, tag).

    Each entry fires at most once; ``remaining`` exposes what has not fired
    (useful for asserting a scenario actually exercised its crashes).
    """

    entries: set = field(default_factory=set)

    @classmethod
    def of(cls, *entries: tuple) -> "CrashScript":
        return cls(set(entries))

    @property
    def remaining(self) -> set:
        return set(self.entries)

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        key = (function, invocation_index, tag)
        if key in self.entries:
            self.entries.discard(key)
            return True
        return False


@dataclass
class CrashAtOccurrence(CrashPolicy):
    """Crash at the n-th global occurrence of a tag (any function).

    Unlike :class:`CrashOnce`, this does not pin a (function,
    invocation ordinal) — which shifts when an exploring schedule
    reorders requests — so it composes with schedule exploration: "the
    third time *anyone* reaches ``txn:*:resolving:commit``, die there"
    is stable across interleavings that preserve the occurrence count.
    """

    tag: str
    occurrence: int = 0
    seen: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        if self.fired or tag != self.tag:
            return False
        hit = self.seen == self.occurrence
        self.seen += 1
        if hit:
            self.fired = True
        return hit


@dataclass
class PrefixedPolicy(CrashPolicy):
    """Adapter namespacing one platform's crash points under a prefix.

    The concurrent harness hosts several :class:`ServerlessPlatform`
    instances (apps with colliding SSF names) over one shared policy;
    prefixing the function name (``"movie:frontend"``) keeps recorded
    points and crash scripts unambiguous across platforms.
    """

    inner: CrashPolicy
    prefix: str

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        return self.inner.should_crash(self.prefix + function,
                                       invocation_index, tag)


@dataclass
class ProbabilisticCrash(CrashPolicy):
    """Crash with probability ``p`` at each matching crash point."""

    p: float
    rand: RandomSource
    functions: Optional[frozenset] = None
    tags: Optional[frozenset] = None
    max_crashes: Optional[int] = None
    crash_count: int = field(default=0, init=False)

    @classmethod
    def build(cls, p: float, rand: RandomSource,
              functions: Optional[Iterable[str]] = None,
              tags: Optional[Iterable[str]] = None,
              max_crashes: Optional[int] = None) -> "ProbabilisticCrash":
        return cls(p=p, rand=rand,
                   functions=frozenset(functions) if functions else None,
                   tags=frozenset(tags) if tags else None,
                   max_crashes=max_crashes)

    def should_crash(self, function: str, invocation_index: int,
                     tag: str) -> bool:
        if self.max_crashes is not None and (
                self.crash_count >= self.max_crashes):
            return False
        if self.functions is not None and function not in self.functions:
            return False
        if self.tags is not None and tag not in self.tags:
            return False
        if self.rand.random() < self.p:
            self.crash_count += 1
            return True
        return False
