"""Error types surfaced by the platform emulator."""

from __future__ import annotations


class PlatformError(Exception):
    """Base class for platform errors."""


class FunctionNotFound(PlatformError):
    """Invocation of an unregistered function identifier."""


class TooManyRequests(PlatformError):
    """The account concurrency cap rejected this request (HTTP 429).

    The paper observes AWS's 1,000-concurrent-Lambda account limit as the
    saturation bottleneck for both Beldi and the baseline.
    """


class FunctionTimeout(PlatformError):
    """The invocation exceeded its configured execution timeout.

    The platform kills the worker; Beldi's intent collector is what brings
    the work back.
    """


class FunctionCrashed(PlatformError):
    """The invoked function's worker crashed (fault injection or a bug).

    For synchronous invocations the caller sees this error; the paper's
    model is that the provider does nothing further (automatic restarts are
    disabled in the evaluation, §7.2) and recovery is entirely Beldi's job.
    """


class InvalidTrigger(PlatformError):
    """Malformed timer/trigger configuration."""
