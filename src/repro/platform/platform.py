"""The serverless platform: registry, dispatch, concurrency, timeouts.

One :class:`ServerlessPlatform` models one provider account. Functions are
registered under string identifiers; invocations spawn kernel processes
that pay calibrated dispatch/cold-start latency, run the handler, and are
killed when they exceed their execution timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.platform.context import InvocationContext
from repro.platform.crashes import CrashPolicy, NeverCrash
from repro.platform.errors import (
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    TooManyRequests,
)
from repro.sim.kernel import Process, ProcessCrashed, ProcessKilled, \
    SimKernel
from repro.sim.latency import LatencyModel
from repro.sim.randsrc import RandomSource

Handler = Callable[[InvocationContext, Any], Any]


@dataclass
class PlatformConfig:
    """Account-level knobs.

    concurrency_limit:
        Max simultaneously running function instances; the gateway rejects
        client requests beyond it (AWS: 1,000/account — scaled down for
        bench runs, see EXPERIMENTS.md).
    default_timeout:
        Execution timeout in virtual ms; the "T" from which Beldi derives
        its GC synchrony bound.
    warm_keepalive:
        How long an idle container stays warm.
    internal_retry_limit / internal_retry_backoff:
        SSF-to-SSF invocations over the cap retry with backoff instead of
        failing outright (the SDK behaviour).
    entry_admission_fraction:
        The gateway admits a new *client* request only while active
        instances are below this fraction of the cap, reserving headroom
        for the workflow-internal invocations of already-admitted
        requests (AWS's reserved-concurrency pattern). Without this, an
        overloaded account livelocks: admitted entry functions hold every
        slot while their children starve.
    """

    concurrency_limit: int = 100
    default_timeout: float = 60_000.0
    warm_keepalive: float = 600_000.0
    internal_retry_limit: int = 40
    internal_retry_backoff: float = 25.0
    entry_admission_fraction: float = 0.5


@dataclass
class PlatformStats:
    invocations: int = 0
    completions: int = 0
    crashes: int = 0
    timeouts: int = 0
    rejected: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    injected_crashes: int = 0
    peak_concurrency: int = 0


class _FunctionEntry:
    def __init__(self, name: str, handler: Handler, timeout: float) -> None:
        self.name = name
        self.handler = handler
        self.timeout = timeout
        self.warm_expiries: list[float] = []
        self.invocation_counter = 0


class ServerlessPlatform:
    """A provider account: functions, workers, gateway, timers."""

    def __init__(self, kernel: SimKernel,
                 rand: Optional[RandomSource] = None,
                 latency: Optional[LatencyModel] = None,
                 config: Optional[PlatformConfig] = None,
                 crash_policy: Optional[CrashPolicy] = None) -> None:
        self.kernel = kernel
        self.rand = rand or RandomSource(0, "platform")
        self.latency = latency or LatencyModel.zero()
        self.config = config or PlatformConfig()
        self.crash_policy = crash_policy or NeverCrash()
        self.stats = PlatformStats()
        self._functions: dict[str, _FunctionEntry] = {}
        self._active = 0
        self._timers: list[dict] = []

    # -- registration -----------------------------------------------------------
    def register(self, name: str, handler: Handler,
                 timeout: Optional[float] = None) -> None:
        self._functions[name] = _FunctionEntry(
            name, handler, timeout or self.config.default_timeout)

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    def _entry(self, name: str) -> _FunctionEntry:
        entry = self._functions.get(name)
        if entry is None:
            raise FunctionNotFound(f"no function named {name!r}")
        return entry

    # -- concurrency accounting ----------------------------------------------------
    @property
    def active_instances(self) -> int:
        return self._active

    def _acquire_slot_or_reject(self) -> None:
        admission_limit = max(
            1, int(self.config.concurrency_limit
                   * self.config.entry_admission_fraction))
        if self._active >= admission_limit:
            self.stats.rejected += 1
            raise TooManyRequests(
                f"gateway admission limit {admission_limit} reached")
        self._grab_slot()

    def _acquire_slot_with_retry(self) -> None:
        attempts = 0
        while self._active >= self.config.concurrency_limit:
            attempts += 1
            if attempts > self.config.internal_retry_limit:
                self.stats.rejected += 1
                raise TooManyRequests(
                    "concurrency limit reached after retries")
            self.kernel.sleep(self.config.internal_retry_backoff * attempts)
        self._grab_slot()

    def _grab_slot(self) -> None:
        self._active += 1
        if self._active > self.stats.peak_concurrency:
            self.stats.peak_concurrency = self._active

    def _release_slot(self) -> None:
        self._active -= 1

    # -- dispatch ---------------------------------------------------------------------
    def _start_instance(self, entry: _FunctionEntry, payload: Any) -> Process:
        """Spawn the worker process for one invocation (slot already held)."""
        now = self.kernel.now
        entry.warm_expiries = [t for t in entry.warm_expiries if t > now]
        if entry.warm_expiries:
            entry.warm_expiries.pop()
            cold = False
            self.stats.warm_starts += 1
        else:
            cold = True
            self.stats.cold_starts += 1
        request_id = self.rand.uuid()
        index = entry.invocation_counter
        entry.invocation_counter += 1
        self.stats.invocations += 1
        deadline = now + entry.timeout  # dispatch latency included, like AWS

        def worker() -> Any:
            try:
                self.kernel.sleep(self.latency.sample("lambda.dispatch"))
                if cold:
                    self.kernel.sleep(
                        self.latency.sample("lambda.cold_start"))
                # Handler CPU time (marshalling, app logic) — the Python
                # body itself runs in zero virtual time.
                self.kernel.sleep(self.latency.sample("lambda.compute"))
                ctx = InvocationContext(self, entry.name, request_id, index,
                                        deadline, cold)
                ctx.crash_point("enter")
                result = entry.handler(ctx, payload)
                ctx.crash_point("exit")
                entry.warm_expiries.append(
                    self.kernel.now + self.config.warm_keepalive)
                self.stats.completions += 1
                return result
            finally:
                self._release_slot()

        proc = self.kernel.spawn(worker, name=f"fn:{entry.name}")
        self._arm_timeout(proc, entry.timeout)
        return proc

    def _arm_timeout(self, proc: Process, timeout: float) -> None:
        def enforce() -> None:
            if not proc.finished:
                self.stats.timeouts += 1
                proc.kill(crash=False)

        self.kernel.call_later(timeout, enforce)

    def _await_result(self, proc: Process) -> Any:
        self.kernel.wait(proc.done_event)
        if proc.error is not None:
            if isinstance(proc.error, ProcessCrashed):
                self.stats.crashes += 1
                raise FunctionCrashed(f"{proc.name} crashed") from None
            if isinstance(proc.error, ProcessKilled):
                raise FunctionTimeout(f"{proc.name} timed out") from None
            raise proc.error
        return proc.result

    # -- public invocation API ----------------------------------------------------------
    def sync_invoke(self, name: str, payload: Any) -> Any:
        """SSF-to-SSF synchronous invocation (waits for the result)."""
        entry = self._entry(name)
        self._acquire_slot_with_retry()
        proc = self._start_instance(entry, payload)
        return self._await_result(proc)

    def async_invoke(self, name: str, payload: Any) -> None:
        """Fire-and-forget. No automatic retry on failure (§7.2: automatic
        Lambda restarts are disabled; Beldi's IC owns recovery)."""
        entry = self._entry(name)
        self.kernel.sleep(self.latency.sample("lambda.async_ack"))
        self._acquire_slot_with_retry()
        self._start_instance(entry, payload)

    def client_request(self, name: str, payload: Any) -> Any:
        """External request through the gateway; rejected at the cap."""
        entry = self._entry(name)
        self._acquire_slot_or_reject()
        proc = self._start_instance(entry, payload)
        return self._await_result(proc)

    # -- timers -----------------------------------------------------------------------------
    def add_timer(self, name: str, period: float,
                  payload_factory: Optional[Callable[[], Any]] = None,
                  suppress_overlap: bool = True) -> dict:
        """Invoke ``name`` every ``period`` virtual ms (IC/GC triggers).

        With ``suppress_overlap`` a tick is skipped while the previous
        invocation of this timer is still running, which is how the paper's
        1-minute IC/GC timers behave in practice.
        """
        handle = {"stopped": False, "running": False, "ticks": 0,
                  "errors": 0}

        def tick_body() -> None:
            handle["running"] = True
            try:
                payload = payload_factory() if payload_factory else {}
                self.sync_invoke(name, payload)
            except Exception:  # noqa: BLE001 - timer survives failures
                handle["errors"] += 1
            finally:
                handle["running"] = False

        def loop() -> None:
            while not handle["stopped"]:
                self.kernel.sleep(period)
                if handle["stopped"]:
                    return
                if suppress_overlap and handle["running"]:
                    continue
                handle["ticks"] += 1
                self.kernel.spawn(tick_body, name=f"timer:{name}")

        self.kernel.spawn(loop, name=f"timer-loop:{name}")
        self._timers.append(handle)
        return handle

    def stop_timers(self) -> None:
        for handle in self._timers:
            handle["stopped"] = True
