"""Client-side resilience: retry, backoff, deadlines, circuit breaking.

The layer between Beldi's protocols and the store substrate that turns
*injected-environment* failures (throttles, scheduled outages — see
:mod:`repro.kvstore.faults`) into bounded retries, fast-fails, and
degraded reads instead of dead requests. Everything is behind
``BeldiConfig.resilience`` (default on) and deterministic: jitter draws
from a dedicated seeded child stream only when a retry actually fires,
so the fault-free path is bit-for-bit identical with the flag off
(golden-pinned). See ``docs/resilience.md``.
"""

from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.resilience.state import ResilienceState, ResilienceStats
from repro.resilience.wrapper import ResilientStore

__all__ = [
    "CircuitBreaker",
    "ResilienceState",
    "ResilienceStats",
    "ResilientStore",
    "RetryPolicy",
]
