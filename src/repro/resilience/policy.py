"""Retry and circuit-breaker policies (pure state machines).

Deterministic by construction: backoff jitter draws from a seeded
:class:`~repro.sim.randsrc.RandomSource` child stream that is only
consulted when a retry actually happens, and the breaker is a pure
function of the virtual-time failure history — so a fault-free run
makes zero draws and is bit-for-bit identical with the layer off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.randsrc import RandomSource


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with multiplicative jitter.

    Attempt ``n`` (1-based) sleeps ``base_backoff * 2**(n-1)`` capped at
    ``max_backoff``, then scaled by ``1 - jitter * U[0, 1)`` so
    concurrent retries decorrelate instead of thundering back in
    lockstep. ``max_attempts`` bounds the total tries (first attempt
    included); the last failure re-raises unchanged.
    """

    max_attempts: int = 6
    base_backoff: float = 10.0
    max_backoff: float = 2_000.0
    jitter: float = 0.5

    def backoff(self, attempt: int, rand: RandomSource) -> float:
        delay = min(self.base_backoff * (2.0 ** (attempt - 1)),
                    self.max_backoff)
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * rand.random()
        return delay


#: Breaker states, also exported as the gauge values observability
#: records: closed=0 (normal), half_open=1 (probing), open=2 (dark).
CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"

BREAKER_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Trip → fast-fail → half-open probe, per store endpoint.

    ``threshold`` consecutive :class:`UnavailableError`\\ s open the
    breaker; while open, callers fast-fail without paying a store round
    trip. After ``cooldown`` virtual ms the next caller is let through
    as a half-open probe: success closes the breaker, failure re-opens
    it for another cooldown. Throttles never trip it — they are
    transient per-request rejections, not endpoint death.
    """

    __slots__ = ("threshold", "cooldown", "state", "consecutive_failures",
                 "opened_at")

    def __init__(self, threshold: int = 5,
                 cooldown: float = 500.0) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None

    def allow(self, now: float) -> bool:
        """May a caller attempt the endpoint right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= (self.opened_at or 0.0) + self.cooldown:
                self.state = HALF_OPEN
                return True
            return False
        return True  # half-open: probes pass

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.threshold):
            self.state = OPEN
            self.opened_at = now

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
