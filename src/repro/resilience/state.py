"""Per-runtime resilience bookkeeping: breakers, deadlines, stats.

One :class:`ResilienceState` lives on each ``BeldiRuntime``; the
:class:`~repro.resilience.wrapper.ResilientStore` handed to every env
consults it. Its random stream is a dedicated ``child("resilience")``
derivation — creating it consumes no parent draws, and it is only drawn
from when a retry actually fires, so the fault-free path stays
bit-for-bit identical to the layer being off.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.resilience.policy import (
    BREAKER_GAUGE,
    CLOSED,
    CircuitBreaker,
    RetryPolicy,
)
from repro.sim.randsrc import RandomSource


@dataclass
class ResilienceStats:
    """Counters the observability snapshot exports under ``resilience``."""

    retries: int = 0
    backoff_ms: float = 0.0
    throttled_errors: int = 0
    unavailable_errors: int = 0
    fast_fails: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    degraded_reads: int = 0
    deadline_aborts: int = 0


class ResilienceState:
    """Breaker registry + per-request deadline table + stats."""

    def __init__(self, kernel, rand: RandomSource,
                 policy: RetryPolicy,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 500.0,
                 obs=None) -> None:
        self.kernel = kernel
        self.rand = rand
        self.policy = policy
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.obs = obs
        self.stats = ResilienceStats()
        self.breakers: Dict[object, CircuitBreaker] = {}
        self._deadlines: Dict[object, float] = {}

    # -- breakers --------------------------------------------------------

    def breaker_for(self, key) -> CircuitBreaker:
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = self.breakers[key] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown)
        return breaker

    def _gauge_breaker(self, key, breaker: CircuitBreaker) -> None:
        if self.obs is not None:
            self.obs.metrics.set_gauge(f"resilience.breaker.{key}",
                                       BREAKER_GAUGE[breaker.state])

    def note_breaker_failure(self, key, breaker: CircuitBreaker,
                             now: float) -> None:
        before = breaker.state
        breaker.record_failure(now)
        if breaker.state != before:
            self.stats.breaker_opens += 1
            if self.obs is not None:
                self.obs.metrics.inc("resilience.breaker_opens")
                self.obs.tracer.event(f"breaker:open:{key}",
                                      cat="resilience", endpoint=str(key))
            self._gauge_breaker(key, breaker)

    def note_breaker_success(self, key, breaker: CircuitBreaker) -> None:
        before = breaker.state
        breaker.record_success()
        if before != CLOSED:
            self.stats.breaker_closes += 1
            if self.obs is not None:
                self.obs.metrics.inc("resilience.breaker_closes")
                self.obs.tracer.event(f"breaker:close:{key}",
                                      cat="resilience", endpoint=str(key))
            self._gauge_breaker(key, breaker)

    def note_fast_fail(self, op: str, key) -> None:
        self.stats.fast_fails += 1
        if self.obs is not None:
            self.obs.metrics.inc("resilience.fast_fails")

    # -- retries ---------------------------------------------------------

    def note_error(self, err: Exception) -> None:
        from repro.kvstore.errors import UnavailableError

        if isinstance(err, UnavailableError):
            self.stats.unavailable_errors += 1
        else:
            self.stats.throttled_errors += 1

    def note_retry(self, op: str, backoff: float) -> None:
        self.stats.retries += 1
        self.stats.backoff_ms += backoff
        if self.obs is not None:
            self.obs.metrics.inc("resilience.retries")
            self.obs.metrics.observe("resilience.backoff_ms", backoff)

    def note_degraded_read(self, table: str) -> None:
        self.stats.degraded_reads += 1
        if self.obs is not None:
            self.obs.metrics.inc("resilience.degraded_reads")

    def note_deadline_abort(self, op: str) -> None:
        self.stats.deadline_aborts += 1
        if self.obs is not None:
            self.obs.metrics.inc("resilience.deadline_aborts")

    # -- per-request deadlines ------------------------------------------

    def push_deadline(self, absolute: float):
        """Register the running process's deadline; returns a pop token.

        Keyed by the kernel process so concurrent requests (and nested
        sync invokes, which run in their own processes) keep independent
        budgets. Measured from the *current* invocation's start, not the
        intent's StartTime, so an IC re-run gets a fresh budget and
        recovery always completes — exactly-once is never sacrificed to
        the deadline.
        """
        process = self.kernel.current_process
        previous = self._deadlines.get(process)
        self._deadlines[process] = absolute
        return (process, previous)

    def pop_deadline(self, token) -> None:
        process, previous = token
        if previous is None:
            self._deadlines.pop(process, None)
        else:
            self._deadlines[process] = previous

    def current_deadline(self) -> Optional[float]:
        if not self._deadlines:
            return None
        return self._deadlines.get(self.kernel.current_process)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> dict:
        snap = asdict(self.stats)
        snap["backoff_ms"] = round(snap["backoff_ms"], 6)
        snap["breakers"] = {
            str(key): breaker.state
            for key, breaker in sorted(self.breakers.items(),
                                       key=lambda kv: str(kv[0]))}
        return snap
