"""The retrying store facade every Beldi env sees.

``ResilientStore`` wraps the runtime's store (plain, sharded, or
replicated) and gives every facade operation bounded-retry treatment
for the two *injected-environment* errors — ``ThrottledError`` and
``UnavailableError`` — both of which are raised **before** any table
effect, so retrying the same call verbatim is always safe. Semantic
errors (``ConditionFailed``, ``TransactionCanceled``, ...) pass through
untouched: Beldi's protocols branch on those.

On top of the retry loop sit the three recovery behaviors the nemesis
tests exercise:

- a per-endpoint circuit breaker (consecutive unavailability trips it;
  while open, calls fast-fail without paying a store round trip; a
  half-open probe closes it after the cooldown),
- per-request deadlines (a retry never sleeps past the deadline — it
  raises ``DeadlineExceeded`` instead, leaving the intent for the IC),
- degraded reads (a strong ``get`` of a *data* table that finds the
  leader dark may fall back to an eventual read of a live follower
  when ``BeldiConfig.degraded_reads`` allows).

Inside an async-I/O overlap scope the wrapper is inert (scope bodies
may not yield, so no retry sleeps): the operation runs directly and
errors propagate to the fan-out's own partial-batch handling.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.errors import DeadlineExceeded
from repro.kvstore.errors import ThrottledError, UnavailableError
from repro.resilience.state import ResilienceState

#: Table-name suffixes of Beldi's protocol tables. Degraded (stale)
#: reads are only ever served for plain data tables: the DAAL's
#: serialization points are conditional *writes*, so a stale data read
#: is pinned by the read log, but protocol state must stay strong.
_PROTOCOL_SUFFIXES = (".intent", ".readlog", ".invokelog", ".locksets",
                      ".shadow")

_NO_BREAKER = object()


class ResilientStore:
    """Store facade with retry/backoff/deadline/breaker semantics."""

    def __init__(self, inner, state: ResilienceState,
                 degraded_reads: bool = True) -> None:
        self._inner = inner
        self._state = state
        self._degraded_reads = degraded_reads
        self._time = inner.time_sources()[0]
        self._sharded = hasattr(inner, "shard_for")

    # Everything not intercepted (table management, metering, seeding,
    # elasticity hooks, ...) is the inner store's business.
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    @property
    def inner(self):
        return self._inner

    # -- plumbing --------------------------------------------------------

    def _endpoint(self, table: str, key: Any):
        if self._sharded:
            try:
                return self._inner.shard_for(table, key)
            except Exception:
                return "store"
        return "store"

    def _in_scope(self) -> bool:
        return getattr(self._time, "_ov_scope", None) is not None

    def _call(self, op: str, fn: Callable[[], Any],
              breaker_key=_NO_BREAKER,
              degraded: Optional[Callable[[], Any]] = None):
        state = self._state
        if self._in_scope():
            # Overlap-scope bodies may not yield; the fan-out above the
            # scope handles partial failures itself.
            return fn()
        deadline = state.current_deadline()
        if deadline is not None and self._time.now() > deadline:
            state.note_deadline_abort(op)
            raise DeadlineExceeded(f"{op}: deadline already expired")
        policy = state.policy
        use_breaker = breaker_key is not _NO_BREAKER
        attempt = 0
        while True:
            breaker = (state.breaker_for(breaker_key)
                       if use_breaker else None)
            err: Optional[Exception] = None
            if breaker is not None and not breaker.allow(self._time.now()):
                state.note_fast_fail(op, breaker_key)
                err = UnavailableError(
                    f"{op}: circuit open for endpoint {breaker_key}")
            else:
                try:
                    result = fn()
                except UnavailableError as exc:
                    if breaker is not None:
                        state.note_breaker_failure(breaker_key, breaker,
                                                   self._time.now())
                    state.note_error(exc)
                    err = exc
                except ThrottledError as exc:
                    state.note_error(exc)
                    err = exc
                else:
                    if breaker is not None:
                        state.note_breaker_success(breaker_key, breaker)
                    return result
            if degraded is not None and isinstance(err, UnavailableError):
                try:
                    result = degraded()
                except (ThrottledError, UnavailableError):
                    pass
                else:
                    state.note_degraded_read(op)
                    return result
            attempt += 1
            if attempt >= policy.max_attempts:
                raise err
            backoff = policy.backoff(attempt, state.rand)
            now = self._time.now()
            if deadline is not None and now + backoff > deadline:
                state.note_deadline_abort(op)
                raise DeadlineExceeded(
                    f"{op}: deadline exceeded after {attempt} attempts"
                ) from err
            state.note_retry(op, backoff)
            self._time.sleep(backoff)
            if state.obs is not None:
                state.obs.tracer.record_span(
                    "resilience.backoff", cat="resilience", start=now,
                    end=self._time.now(), op=op, attempt=attempt)

    # -- point ops -------------------------------------------------------

    def get(self, table: str, key: Any, projection=None,
            consistency: Optional[str] = None):
        degraded = None
        if (self._degraded_reads and consistency in (None, "strong")
                and not table.endswith(_PROTOCOL_SUFFIXES)):
            degraded = lambda: self._inner.get(  # noqa: E731
                table, key, projection=projection, consistency="eventual")
        return self._call(
            "db.read",
            lambda: self._inner.get(table, key, projection=projection,
                                    consistency=consistency),
            breaker_key=self._endpoint(table, key), degraded=degraded)

    def put(self, table: str, item: dict, condition=None) -> None:
        return self._call(
            "db.write",
            lambda: self._inner.put(table, item, condition=condition),
            breaker_key=self._endpoint(table, item))

    def update(self, table: str, key: Any, updates, condition=None):
        return self._call(
            "db.cond_write",
            lambda: self._inner.update(table, key, updates,
                                       condition=condition),
            breaker_key=self._endpoint(table, key))

    def delete(self, table: str, key: Any, condition=None):
        return self._call(
            "db.delete",
            lambda: self._inner.delete(table, key, condition=condition),
            breaker_key=self._endpoint(table, key))

    # -- reads over many rows -------------------------------------------

    def query(self, table: str, hash_value: Any, **kwargs):
        return self._call(
            "db.query",
            lambda: self._inner.query(table, hash_value, **kwargs),
            breaker_key=self._endpoint(table, hash_value))

    def scan(self, table: str, **kwargs):
        return self._call("db.scan",
                          lambda: self._inner.scan(table, **kwargs))

    def query_index(self, table: str, index_name: str, value: Any,
                    **kwargs):
        return self._call(
            "db.query_index",
            lambda: self._inner.query_index(table, index_name, value,
                                            **kwargs))

    # -- batches and transactions ---------------------------------------
    # Both raise Throttled/Unavailable only when *nothing* was served or
    # applied (partial results surface as unprocessed remainders), so a
    # whole-call retry never double-applies anything.

    def batch_get(self, table: str, keys, **kwargs):
        return self._call(
            "db.batch_read",
            lambda: self._inner.batch_get(table, keys, **kwargs))

    def batch_write(self, table: str, puts=(), deletes=()):
        return self._call(
            "db.batch_write",
            lambda: self._inner.batch_write(table, puts, deletes))

    def transact_write(self, ops) -> None:
        # Injected errors fire in the pay/prepare phase, strictly before
        # any mutation, so the transaction is all-or-nothing under retry.
        return self._call("db.txn",
                          lambda: self._inner.transact_write(ops))
