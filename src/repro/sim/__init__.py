"""Deterministic discrete-event simulation kernel.

This package is the time substrate for the whole reproduction: the NoSQL
store, the serverless platform emulator, the Beldi runtime, and the load
generators all advance a shared virtual clock through :class:`SimKernel`.

Processes are ordinary Python callables executed on pooled OS threads, but
the kernel guarantees that **at most one process runs at any instant** and
that wakeups are delivered in deterministic ``(time, sequence)`` order, so a
given seed always produces the same execution.
"""

from repro.sim.kernel import (
    ProcessCrashed,
    ProcessKilled,
    Process,
    SimEvent,
    SimKernel,
    SimulationError,
)
from repro.sim.latency import LatencyModel, LatencySpec, lognormal_from_median
from repro.sim.randsrc import RandomSource
from repro.sim.schedule import (
    FifoSchedule,
    RandomSchedule,
    ReplaySchedule,
    Schedule,
    TargetedSchedule,
    format_failure,
    parse_failure,
)

__all__ = [
    "FifoSchedule",
    "LatencyModel",
    "LatencySpec",
    "Process",
    "ProcessCrashed",
    "ProcessKilled",
    "RandomSchedule",
    "RandomSource",
    "ReplaySchedule",
    "Schedule",
    "SimEvent",
    "SimKernel",
    "SimulationError",
    "TargetedSchedule",
    "format_failure",
    "parse_failure",
    "lognormal_from_median",
]
