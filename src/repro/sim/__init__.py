"""Deterministic discrete-event simulation kernel.

This package is the time substrate for the whole reproduction: the NoSQL
store, the serverless platform emulator, the Beldi runtime, and the load
generators all advance a shared virtual clock through :class:`SimKernel`.

Processes are ordinary Python callables executed on pooled OS threads, but
the kernel guarantees that **at most one process runs at any instant** and
that wakeups are delivered in deterministic ``(time, sequence)`` order, so a
given seed always produces the same execution.
"""

from repro.sim.kernel import (
    ProcessCrashed,
    ProcessKilled,
    Process,
    SimEvent,
    SimKernel,
)
from repro.sim.latency import LatencyModel, LatencySpec, lognormal_from_median
from repro.sim.randsrc import RandomSource

__all__ = [
    "LatencyModel",
    "LatencySpec",
    "Process",
    "ProcessCrashed",
    "ProcessKilled",
    "RandomSource",
    "SimEvent",
    "SimKernel",
    "lognormal_from_median",
]
