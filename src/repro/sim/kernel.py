"""Thread-backed discrete-event simulation kernel.

Design
------
The kernel owns a priority queue of timestamped entries and a virtual
clock. Simulated processes are plain Python callables that run on pooled
OS threads, but only one process executes at a time: whenever a process
blocks (``sleep``, ``wait``), its own thread runs the dispatch step — pop
the next scheduled entry and resume exactly one process — and then parks
until its own wakeup fires. The driver thread (``run``) only starts the
chain and collects it when the queue drains; it is not woken per event.

This *baton-passing* dispatch halves the OS context switches of the
classic driver-loop design (resume + yield-back per event becomes a
single handoff), and a process waking *itself* (the ``sleep`` fast path,
by far the most common event) costs no thread switch at all: the
dispatching thread releases its own semaphore and keeps running. The
event ordering is identical by construction — the same pops happen in
the same order, just on whichever thread blocked last.

Because every blocking point goes through the kernel, arbitrary user code
(Beldi SSF handlers, garbage collectors, load generators) runs unmodified
in virtual time, and the execution is fully deterministic for a given
seed and spawn order.

Queue entries
-------------
Every entry is a tuple ``(time, phase, seq, label, proc, token, reason)``:

- a **wakeup** carries its target ``proc`` and the wake ``token`` captured
  when it was scheduled; a stale token (the process was resumed by
  something else first) makes the entry a no-op;
- a **start** is a wakeup whose token is the ``_START`` sentinel — it
  assigns the process a pooled worker thread and releases it;
- an **inline callback** has ``proc=None`` and its callable in the token
  slot (``call_later``); it runs on the dispatching thread with
  ``current_process`` masked to ``None`` and the tracer's span stack
  detached, so callbacks observe exactly what they observed when the
  driver thread ran them.

Labels are either strings or tuples of strings joined with ``":"`` only
when something actually reads them (trace capture, schedule choice) —
the common case never pays the formatting.

Schedules
---------
When a pluggable schedule (see :mod:`repro.sim.schedule`) is installed,
the kernel gathers all entries that share the earliest ``(time, phase)``
and lets the schedule pick which fires next; each multi-candidate
decision is appended to :attr:`SimKernel.schedule_trace`, so any
execution can be replayed bit-for-bit from ``(seed, trace)``. Without a
schedule the kernel pops the heap directly — byte-identical to the
historical FIFO behaviour.

Tie-breaking: ``wait(timeout=...)`` deadlines are queued at phase 1 while
all normal wakeups use phase 0, so an event ``set()`` landing at exactly
the timeout instant always wins the tie (the waiter observes ``True``).

Killing
-------
Processes cannot be preempted mid-Python-statement; instead, a killed
process receives :class:`ProcessKilled` at its *next* kernel interaction.
This mirrors how a serverless platform can only observe a function at its
system-call boundaries, and is exactly the granularity Beldi's crash model
needs (crashes happen between externally visible operations).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Iterable, Optional


class SimulationError(Exception):
    """Base class for kernel-level failures."""


class ProcessKilled(BaseException):
    """Raised inside a process that has been killed.

    Derives from ``BaseException`` so ordinary ``except Exception`` blocks in
    user code cannot accidentally swallow a platform-initiated kill (timeout
    or crash injection), matching how a real worker is torn down.
    """


class ProcessCrashed(ProcessKilled):
    """A kill that models a crash-fault (injected by a crash policy)."""


#: Token sentinel marking a start entry (never equals a live wake token).
_START = -1

#: Shared wake-reason for sleeps — the reason is only ever read, so every
#: sleep can hand out the same tuple instead of allocating one per call.
_SLEEP_REASON = ("sleep", None)
_KILL_REASON = ("killed", None)


def _label_text(label: Any) -> str:
    """Render a queue-entry label (str, or tuple of parts joined lazily)."""
    return label if label.__class__ is str else ":".join(label)


class SimEvent:
    """A one-shot signalling primitive in virtual time.

    Processes block on :meth:`SimKernel.wait`; ``set`` wakes every waiter at
    the current virtual time. A value may be attached to the event.
    """

    __slots__ = ("_kernel", "name", "is_set", "value", "_waiters")

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        self.is_set = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def set(self, value: Any = None) -> None:
        """Mark the event set and schedule all waiters to resume now."""
        if self.is_set:
            return
        self.is_set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        if not waiters:
            return
        event_name = self.name or "anon"
        reason = ("event", self)
        for proc in waiters:
            if proc.finished:
                continue
            self._kernel._schedule_wakeup(
                0.0, proc, reason, (proc.name, "event", event_name))

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.is_set else "unset"
        return f"<SimEvent {self.name or id(self)} {state}>"


class Process:
    """Handle to a simulated process.

    Attributes
    ----------
    name:
        Diagnostic label.
    result:
        Return value of the body once finished.
    error:
        Exception raised by the body, if any (not re-raised by the kernel;
        callers inspect it or use :meth:`SimKernel.join`).
    """

    __slots__ = ("_kernel", "name", "_body", "result", "error", "finished",
                 "killed", "_kill_exc", "done_event", "_resume",
                 "_wake_token", "_wake_reason", "_started", "_waiting_on",
                 "_label_sleep", "_label_kill")

    def __init__(self, kernel: "SimKernel", name: str,
                 body: Callable[[], Any]) -> None:
        self._kernel = kernel
        self.name = name
        self._body = body
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = False
        self.killed = False
        self._kill_exc: Optional[ProcessKilled] = None
        self.done_event = SimEvent(kernel, name=f"{name}.done")
        # Handoff primitive: released exactly once per scheduled resume.
        self._resume = threading.Semaphore(0)
        # Token distinguishing the *current* pending wakeup; stale wakeups
        # (e.g. a timed-out sleep racing an event set) are ignored.
        self._wake_token = 0
        self._wake_reason: Any = None
        self._started = False
        # Event this process is currently blocked on in wait(), if any.
        # Cleared on resume so kill/exit paths can discard the waiter
        # registration instead of leaking it (and ghosting in repr).
        self._waiting_on: Optional[SimEvent] = None
        # Hot labels, prebuilt once (joined lazily, and only if captured).
        self._label_sleep = (name, "sleep")
        self._label_kill = (name, "kill")

    def _block(self) -> Any:
        """Hand the baton to the kernel; return the reason we were woken."""
        self._kernel._dispatch()
        self._resume.acquire()
        if self.killed and self._kill_exc is not None:
            exc, self._kill_exc = self._kill_exc, None
            raise exc
        return self._wake_reason

    def kill(self, crash: bool = False) -> None:
        """Request termination; takes effect at the next kernel interaction."""
        if self.finished or self.killed:
            return
        self.killed = True
        self._kill_exc = ProcessCrashed() if crash else ProcessKilled()
        tracer = getattr(self._kernel, "tracer", None)
        if tracer is not None:
            tracer.event("kill", cat="fault", crash=crash,
                         process=self.name)
        # A process blocked in wait() must stop being a waiter right away:
        # a later set() would otherwise schedule a dead wakeup for it.
        waiting = self._waiting_on
        if waiting is not None:
            waiting._discard_waiter(self)
        # If the process is blocked, schedule an immediate wakeup so the
        # kill is delivered promptly; a stale token means it is currently
        # running and will observe the flag at its next block.
        self._kernel._schedule_wakeup(0.0, self, _KILL_REASON,
                                      self._label_kill)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "live"
        return f"<Process {self.name} {state}>"


class _WorkerThread:
    """A pooled OS thread that runs process bodies one after another."""

    def __init__(self, kernel: "SimKernel", index: int) -> None:
        self._kernel = kernel
        self._task = threading.Semaphore(0)
        self._proc: Optional[Process] = None
        self._stop = False
        self.thread = threading.Thread(
            target=self._loop, name=f"sim-worker-{index}", daemon=True)
        self.thread.start()

    def submit(self, proc: Process) -> None:
        self._proc = proc
        self._task.release()

    def shutdown(self) -> None:
        self._stop = True
        self._task.release()

    def _loop(self) -> None:
        while True:
            self._task.acquire()
            if self._stop:
                return
            proc = self._proc
            self._proc = None
            assert proc is not None
            self._run_one(proc)
            self._kernel._recycle_worker(self)

    def _run_one(self, proc: Process) -> None:
        kernel = self._kernel
        kernel._thread_local.process = proc
        try:
            # First resume: wait for the kernel to schedule our start.
            proc._resume.acquire()
            if proc.killed and proc._kill_exc is not None:
                raise proc._kill_exc
            proc.result = proc._body()
        except ProcessKilled as exc:
            proc.error = exc
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            proc.error = exc
        finally:
            kernel._thread_local.process = None
            proc.finished = True
            proc._wake_token += 1  # invalidate any pending wakeups
            waiting = proc._waiting_on
            if waiting is not None:
                waiting._discard_waiter(proc)
                proc._waiting_on = None
            kernel._on_process_exit(proc)
            # The exiting process passes the baton on instead of waking
            # the driver — the dispatch chain continues on this thread.
            kernel._dispatch()


class SimKernel:
    """Deterministic virtual-time scheduler.

    Typical use::

        kernel = SimKernel(seed=7)
        kernel.spawn(my_process)
        kernel.run()
    """

    def __init__(self, seed: int = 0, schedule: Optional[Any] = None) -> None:
        self.now = 0.0
        self.seed = seed
        #: Pluggable scheduling policy (duck-typed; see repro.sim.schedule).
        #: None keeps the historical pure-FIFO heap order.
        self.schedule = schedule
        #: Indices chosen at each multi-candidate decision; together with
        #: the seed this replays the execution bit-for-bit.
        self.schedule_trace: list[int] = []
        #: When True, every resumed wakeup is appended to fired_trace as
        #: (virtual time, label) — the kernel-level event trace used by
        #: determinism and replay assertions.
        self.capture_trace = False
        self.fired_trace: list[tuple[float, str]] = []
        #: Optional :class:`repro.obs.Tracer` recording schedule/fault
        #: events (interleave yields, kills) in virtual time. Installed
        #: by an observability-enabled runtime; ``None`` costs one
        #: attribute check per event.
        self.tracer = None
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        # Released exactly once per dispatch chain: when the queue drains
        # (or ``until`` is reached), the last dispatching thread wakes the
        # driver blocked in run().
        self._driver = threading.Semaphore(0)
        #: Exception raised inside a dispatch step on a worker thread,
        #: transported to (and re-raised on) the driver thread.
        self._dispatch_error: Optional[BaseException] = None
        self._until: Optional[float] = None
        self._idle_workers: list[_WorkerThread] = []
        self._worker_count = 0
        self._thread_local = threading.local()
        self._live_processes = 0
        self._running = False
        self._proc_seq = itertools.count()
        # Non-zero while an overlap scope is open; interleave points must
        # not yield there (scope bodies are atomic in virtual time).
        self._no_yield = 0

    # -- introspection -----------------------------------------------------
    @property
    def current_process(self) -> Optional[Process]:
        return getattr(self._thread_local, "process", None)

    def _require_process(self) -> Process:
        proc = self.current_process
        if proc is None:
            raise SimulationError(
                "this operation must be called from inside a simulated "
                "process (use SimKernel.spawn)")
        return proc

    # -- scheduling core ----------------------------------------------------
    def _schedule(self, delay: float, fire: Callable[[], bool],
                  label: Any = "", phase: int = 0) -> None:
        """Queue an inline callback entry (``fire`` runs on the dispatcher)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + delay, phase, next(self._seq), label,
                        None, fire, None))

    def _schedule_wakeup(self, delay: float, proc: Process, reason: Any,
                         label: Any, phase: int = 0) -> None:
        """Queue a wakeup for ``proc`` bound to its current wake token."""
        heapq.heappush(self._queue,
                       (self.now + delay, phase, next(self._seq), label,
                        proc, proc._wake_token, reason))

    def _pop_next(self) -> tuple:
        """Pop the next queue entry, letting the schedule break ties.

        Without a schedule this is a plain heappop (FIFO at equal times).
        With one, all entries sharing the earliest ``(time, phase)`` are
        offered to ``schedule.choose`` by label; the chosen index is
        recorded in :attr:`schedule_trace`.
        """
        head = heapq.heappop(self._queue)
        if self.schedule is None or not self._queue:
            return head
        group = [head]
        key = (head[0], head[1])
        while self._queue and (self._queue[0][0], self._queue[0][1]) == key:
            group.append(heapq.heappop(self._queue))
        if len(group) == 1:
            return head
        idx = self.schedule.choose([_label_text(entry[3])
                                    for entry in group])
        if not isinstance(idx, int) or not 0 <= idx < len(group):
            raise SimulationError(
                f"schedule chose invalid index {idx!r} among "
                f"{len(group)} candidates")
        self.schedule_trace.append(idx)
        chosen = group.pop(idx)
        for entry in group:
            heapq.heappush(self._queue, entry)
        return chosen

    # -- dispatch (the baton) ------------------------------------------------
    def _dispatch(self) -> None:
        """Run queue entries until exactly one process is resumed.

        Called by whichever thread just blocked (or exited, or by the
        driver to start the chain). Resuming a process hands the baton to
        that process's thread — it will dispatch next when *it* blocks.
        When the queue drains or virtual time reaches the run's ``until``
        bound, the driver semaphore is released instead. Errors raised by
        schedule policies or inline callbacks are stashed for the driver.
        """
        queue = self._queue
        until = self._until
        try:
            if self.schedule is None:
                # Hot path: plain heap order, entries fired inline.
                pop = heapq.heappop
                while queue:
                    entry = queue[0]
                    when = entry[0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    pop(queue)
                    self.now = when
                    if self._fire_entry(entry):
                        return
                else:
                    if until is not None and until > self.now:
                        self.now = until
            else:
                # Exploration path: tie groups offered to the schedule.
                while queue:
                    if until is not None and queue[0][0] > until:
                        self.now = until
                        break
                    entry = self._pop_next()
                    self.now = entry[0]
                    if self._fire_entry(entry):
                        return
                else:
                    if until is not None and until > self.now:
                        self.now = until
        except BaseException as exc:  # noqa: BLE001 - re-raised by run()
            self._dispatch_error = exc
        self._driver.release()

    def _fire_entry(self, entry: tuple) -> bool:
        """Fire one popped entry; True iff the baton was handed off.

        Trace capture happens *before* the resumed process is released:
        once its semaphore is up, that thread may reach its own dispatch
        step (and its own capture) at any moment.
        """
        proc = entry[4]
        if proc is not None:
            token = entry[5]
            if token == _START:
                if proc.finished:
                    return False
                proc._started = True
                if self.capture_trace:
                    self.fired_trace.append((entry[0], _label_text(entry[3])))
                if self._idle_workers:
                    worker = self._idle_workers.pop()
                else:
                    worker = _WorkerThread(self, self._worker_count)
                    self._worker_count += 1
                worker.submit(proc)
                proc._resume.release()
                return True
            if (proc.finished or not proc._started
                    or token != proc._wake_token):
                # Stale wakeup: resumed by something else, already done,
                # or killed before start (flag observed at start instead).
                return False
            proc._wake_token += 1
            proc._wake_reason = entry[6]
            if self.capture_trace:
                self.fired_trace.append((entry[0], _label_text(entry[3])))
            proc._resume.release()
            return True
        # Inline callback (call_later): runs on this thread, but must see
        # what the driver thread historically saw — no current process, no
        # open tracer spans.
        fired = self._run_callback(entry[5])
        if fired and self.capture_trace:
            self.fired_trace.append((entry[0], _label_text(entry[3])))
        return fired

    def _run_callback(self, fire: Callable[[], bool]) -> bool:
        tl = self._thread_local
        prev = getattr(tl, "process", None)
        tl.process = None
        tracer = self.tracer
        stash = tracer._detach_stack() if tracer is not None else None
        try:
            return fire()
        finally:
            tl.process = prev
            if tracer is not None:
                tracer._restore_stack(stash)

    def _recycle_worker(self, worker: _WorkerThread) -> None:
        self._idle_workers.append(worker)

    def _on_process_exit(self, proc: Process) -> None:
        self._live_processes -= 1
        proc.done_event.set(proc.result)

    # -- process management --------------------------------------------------
    def spawn(self, body: Callable[..., Any], *args: Any,
              name: Optional[str] = None, delay: float = 0.0,
              **kwargs: Any) -> Process:
        """Create a process that starts after ``delay`` virtual time units."""
        label = name or getattr(body, "__name__", "process")
        label = f"{label}#{next(self._proc_seq)}"

        if args or kwargs:
            def run() -> Any:
                return body(*args, **kwargs)
        else:
            run = body

        proc = Process(self, label, run)
        self._live_processes += 1
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + delay, 0, next(self._seq),
                        (label, "start"), proc, _START, None))
        return proc

    # -- blocking primitives (called from inside processes) ------------------
    def sleep(self, duration: float) -> None:
        """Advance this process's local time by ``duration``."""
        proc = self._require_process()
        if duration < 0:
            raise ValueError(f"negative sleep: {duration}")
        heapq.heappush(self._queue,
                       (self.now + duration, 0, next(self._seq),
                        proc._label_sleep, proc, proc._wake_token,
                        _SLEEP_REASON))
        proc._block()

    def wait(self, event: SimEvent, timeout: Optional[float] = None) -> bool:
        """Block until ``event`` is set; returns False on timeout.

        When a ``set()`` and the timeout land at the same virtual instant,
        the event wins the tie: timeout wakeups are queued at phase 1, so
        every same-instant normal wakeup (including the setter's resume and
        the resulting waiter wakeups) fires first and invalidates the
        pending timeout via the wake token.
        """
        proc = self._require_process()
        if event.is_set:
            return True
        event._add_waiter(proc)
        proc._waiting_on = event
        if timeout is not None:
            self._schedule_wakeup(
                timeout, proc, ("timeout", event),
                (proc.name, "timeout", event.name or "anon"), phase=1)
        try:
            reason = proc._block()
        except BaseException:
            # Killed (or crashed) while blocked: stop being a waiter so a
            # later set() does not schedule a dead wakeup for us.
            event._discard_waiter(proc)
            proc._waiting_on = None
            raise
        proc._waiting_on = None
        kind = reason[0] if isinstance(reason, tuple) else reason
        if kind == "timeout" and not event.is_set:
            event._discard_waiter(proc)
            return False
        return True

    def join(self, proc: Process, timeout: Optional[float] = None) -> Any:
        """Wait for ``proc``; re-raises its error, else returns its result."""
        finished = self.wait(proc.done_event, timeout=timeout)
        if not finished:
            raise TimeoutError(f"join timed out on {proc.name}")
        if proc.error is not None and not isinstance(proc.error,
                                                     ProcessKilled):
            raise proc.error
        return proc.result

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` inline in the kernel loop after ``delay``.

        The callback must not block; it may set events or kill processes
        (used for execution-timeout watchdogs). It runs with
        ``current_process`` masked to ``None``, so a callback that tries
        to block fails loudly regardless of which thread dispatches it.
        """

        def fire() -> bool:
            fn()
            return False

        self._schedule(delay, fire, label="call_later")

    def interleave_point(self, tag: str) -> None:
        """Optional scheduling point for schedule exploration.

        A no-op unless an installed schedule opts in via its
        ``interleave_points`` attribute — so production runs and the
        golden-pinned FIFO executions are byte-identical. When active, the
        calling process yields at this point, letting the schedule run any
        other ready process first. Never yields inside an overlap scope
        (scope bodies are atomic in virtual time).
        """
        sched = self.schedule
        if sched is None or not getattr(sched, "interleave_points", False):
            return
        if self._no_yield:
            return
        proc = self.current_process
        if proc is None:
            return
        if self.tracer is not None:
            self.tracer.event(f"interleave:{tag}", cat="schedule",
                              process=proc.name)
        self._schedule_wakeup(0.0, proc, ("interleave", tag),
                              (proc.name, "interleave", tag))
        proc._block()

    # -- driving the simulation ----------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time reaches ``until``.

        Returns the final virtual time. Must be called from a non-simulated
        (driver) thread.
        """
        if self.current_process is not None:
            raise SimulationError("run() called from inside a process")
        if self._running:
            raise SimulationError("kernel is already running")
        self._running = True
        self._until = until
        try:
            # Start the dispatch chain; it hops from blocking thread to
            # blocking thread and releases the driver semaphore exactly
            # once, when the queue drains or ``until`` is reached.
            self._dispatch()
            self._driver.acquire()
            error = self._dispatch_error
            if error is not None:
                self._dispatch_error = None
                raise error
        finally:
            self._until = None
            self._running = False
        return self.now

    def run_until_processes_exit(self, procs: Iterable[Process],
                                 limit: Optional[float] = None) -> float:
        """Convenience driver: run until all ``procs`` finished.

        Raises :class:`SimulationError` if the event queue drains while
        some of ``procs`` are still blocked on events nobody will set —
        a deadlock that previously returned silently. Reaching ``limit``
        returns normally (the caller decides whether that is a failure).
        """
        procs = list(procs)
        while any(not p.finished for p in procs):
            self.run(until=limit)
            if limit is not None and self.now >= limit:
                break
            if not self._queue:
                blocked = [p for p in procs if not p.finished]
                if not blocked:
                    break
                detail = "; ".join(
                    f"{p.name} waiting on {p._waiting_on!r}"
                    for p in blocked)
                raise SimulationError(
                    f"deadlock: event queue drained with {len(blocked)} "
                    f"process(es) still blocked: {detail}")
        return self.now

    def shutdown(self) -> None:
        """Tear down pooled worker threads (test hygiene)."""
        for worker in self._idle_workers:
            worker.shutdown()
        self._idle_workers.clear()
