"""Thread-backed discrete-event simulation kernel.

Design
------
The kernel owns a priority queue of ``(time, seq, wakeup)`` entries and a
virtual clock. Simulated processes are plain Python callables that run on
pooled OS threads, but only one process executes at a time: whenever a
process blocks (``sleep``, ``wait``), it hands control back to the kernel
loop, which pops the next scheduled wakeup and resumes exactly one process.

Because every blocking point goes through the kernel, arbitrary user code
(Beldi SSF handlers, garbage collectors, load generators) runs unmodified in
virtual time, and the execution is fully deterministic for a given seed and
spawn order.

Schedules
---------
Every queue entry carries a human-readable label. When a pluggable
schedule (see :mod:`repro.sim.schedule`) is installed, the kernel gathers
all entries that share the earliest ``(time, phase)`` and lets the
schedule pick which fires next; each multi-candidate decision is appended
to :attr:`SimKernel.schedule_trace`, so any execution can be replayed
bit-for-bit from ``(seed, trace)``. Without a schedule the kernel pops the
heap directly — byte-identical to the historical FIFO behaviour.

Tie-breaking: ``wait(timeout=...)`` deadlines are queued at phase 1 while
all normal wakeups use phase 0, so an event ``set()`` landing at exactly
the timeout instant always wins the tie (the waiter observes ``True``).

Killing
-------
Processes cannot be preempted mid-Python-statement; instead, a killed
process receives :class:`ProcessKilled` at its *next* kernel interaction.
This mirrors how a serverless platform can only observe a function at its
system-call boundaries, and is exactly the granularity Beldi's crash model
needs (crashes happen between externally visible operations).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Iterable, Optional


class SimulationError(Exception):
    """Base class for kernel-level failures."""


class ProcessKilled(BaseException):
    """Raised inside a process that has been killed.

    Derives from ``BaseException`` so ordinary ``except Exception`` blocks in
    user code cannot accidentally swallow a platform-initiated kill (timeout
    or crash injection), matching how a real worker is torn down.
    """


class ProcessCrashed(ProcessKilled):
    """A kill that models a crash-fault (injected by a crash policy)."""


class SimEvent:
    """A one-shot signalling primitive in virtual time.

    Processes block on :meth:`SimKernel.wait`; ``set`` wakes every waiter at
    the current virtual time. A value may be attached to the event.
    """

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        self.is_set = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def set(self, value: Any = None) -> None:
        """Mark the event set and schedule all waiters to resume now."""
        if self.is_set:
            return
        self.is_set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            if proc.finished:
                continue
            self._kernel._schedule(
                0.0, proc._make_wakeup(("event", self)),
                label=f"{proc.name}:event:{self.name or 'anon'}")

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.is_set else "unset"
        return f"<SimEvent {self.name or id(self)} {state}>"


class Process:
    """Handle to a simulated process.

    Attributes
    ----------
    name:
        Diagnostic label.
    result:
        Return value of the body once finished.
    error:
        Exception raised by the body, if any (not re-raised by the kernel;
        callers inspect it or use :meth:`SimKernel.join`).
    """

    _RUNNING_SENTINEL = object()

    def __init__(self, kernel: "SimKernel", name: str,
                 body: Callable[[], Any]) -> None:
        self._kernel = kernel
        self.name = name
        self._body = body
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = False
        self.killed = False
        self._kill_exc: Optional[ProcessKilled] = None
        self.done_event = SimEvent(kernel, name=f"{name}.done")
        # Handoff primitive: released exactly once per scheduled resume.
        self._resume = threading.Semaphore(0)
        # Token distinguishing the *current* pending wakeup; stale wakeups
        # (e.g. a timed-out sleep racing an event set) are ignored.
        self._wake_token = 0
        self._wake_reason: Any = None
        self._started = False
        # Event this process is currently blocked on in wait(), if any.
        # Cleared on resume so kill/exit paths can discard the waiter
        # registration instead of leaking it (and ghosting in repr).
        self._waiting_on: Optional[SimEvent] = None

    # -- wakeup plumbing ---------------------------------------------------
    def _make_wakeup(self, reason: Any) -> Callable[[], bool]:
        """Create a wakeup closure bound to the current wake token.

        Returns a callable the kernel fires; it returns True when the
        process was actually resumed (the token was still live).
        """
        token = self._wake_token

        def fire() -> bool:
            if self.finished or not self._started:
                # A kill may be scheduled before the process starts; the
                # killed flag is already set and will be observed at start.
                return False
            if token != self._wake_token:
                return False
            self._wake_token += 1
            self._wake_reason = reason
            self._resume.release()
            return True

        return fire

    def _block(self) -> Any:
        """Yield to the kernel; return the reason we were woken."""
        self._kernel._yielded.release()
        self._resume.acquire()
        if self.killed and self._kill_exc is not None:
            exc, self._kill_exc = self._kill_exc, None
            raise exc
        return self._wake_reason

    def kill(self, crash: bool = False) -> None:
        """Request termination; takes effect at the next kernel interaction."""
        if self.finished or self.killed:
            return
        self.killed = True
        self._kill_exc = ProcessCrashed() if crash else ProcessKilled()
        tracer = getattr(self._kernel, "tracer", None)
        if tracer is not None:
            tracer.event("kill", cat="fault", crash=crash,
                         process=self.name)
        # A process blocked in wait() must stop being a waiter right away:
        # a later set() would otherwise schedule a dead wakeup for it.
        waiting = self._waiting_on
        if waiting is not None:
            waiting._discard_waiter(self)
        # If the process is blocked, schedule an immediate wakeup so the
        # kill is delivered promptly; a stale token means it is currently
        # running and will observe the flag at its next block.
        self._kernel._schedule(0.0, self._make_wakeup(("killed", None)),
                               label=f"{self.name}:kill")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "live"
        return f"<Process {self.name} {state}>"


class _WorkerThread:
    """A pooled OS thread that runs process bodies one after another."""

    def __init__(self, kernel: "SimKernel", index: int) -> None:
        self._kernel = kernel
        self._task = threading.Semaphore(0)
        self._proc: Optional[Process] = None
        self._stop = False
        self.thread = threading.Thread(
            target=self._loop, name=f"sim-worker-{index}", daemon=True)
        self.thread.start()

    def submit(self, proc: Process) -> None:
        self._proc = proc
        self._task.release()

    def shutdown(self) -> None:
        self._stop = True
        self._task.release()

    def _loop(self) -> None:
        while True:
            self._task.acquire()
            if self._stop:
                return
            proc = self._proc
            self._proc = None
            assert proc is not None
            self._run_one(proc)
            self._kernel._recycle_worker(self)

    def _run_one(self, proc: Process) -> None:
        kernel = self._kernel
        kernel._thread_local.process = proc
        try:
            # First resume: wait for the kernel to schedule our start.
            proc._resume.acquire()
            if proc.killed and proc._kill_exc is not None:
                raise proc._kill_exc
            proc.result = proc._body()
        except ProcessKilled as exc:
            proc.error = exc
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            proc.error = exc
        finally:
            kernel._thread_local.process = None
            proc.finished = True
            proc._wake_token += 1  # invalidate any pending wakeups
            waiting = proc._waiting_on
            if waiting is not None:
                waiting._discard_waiter(proc)
                proc._waiting_on = None
            kernel._on_process_exit(proc)
            kernel._yielded.release()


class SimKernel:
    """Deterministic virtual-time scheduler.

    Typical use::

        kernel = SimKernel(seed=7)
        kernel.spawn(my_process)
        kernel.run()
    """

    def __init__(self, seed: int = 0, schedule: Optional[Any] = None) -> None:
        self.now = 0.0
        self.seed = seed
        #: Pluggable scheduling policy (duck-typed; see repro.sim.schedule).
        #: None keeps the historical pure-FIFO heap order.
        self.schedule = schedule
        #: Indices chosen at each multi-candidate decision; together with
        #: the seed this replays the execution bit-for-bit.
        self.schedule_trace: list[int] = []
        #: When True, every resumed wakeup is appended to fired_trace as
        #: (virtual time, label) — the kernel-level event trace used by
        #: determinism and replay assertions.
        self.capture_trace = False
        self.fired_trace: list[tuple[float, str]] = []
        #: Optional :class:`repro.obs.Tracer` recording schedule/fault
        #: events (interleave yields, kills) in virtual time. Installed
        #: by an observability-enabled runtime; ``None`` costs one
        #: attribute check per event.
        self.tracer = None
        self._queue: list[
            tuple[float, int, int, str, Callable[[], bool]]] = []
        self._seq = itertools.count()
        self._yielded = threading.Semaphore(0)
        self._idle_workers: list[_WorkerThread] = []
        self._worker_count = 0
        self._thread_local = threading.local()
        self._live_processes = 0
        self._running = False
        self._proc_seq = itertools.count()
        # Non-zero while an overlap scope is open; interleave points must
        # not yield there (scope bodies are atomic in virtual time).
        self._no_yield = 0

    # -- introspection -----------------------------------------------------
    @property
    def current_process(self) -> Optional[Process]:
        return getattr(self._thread_local, "process", None)

    def _require_process(self) -> Process:
        proc = self.current_process
        if proc is None:
            raise SimulationError(
                "this operation must be called from inside a simulated "
                "process (use SimKernel.spawn)")
        return proc

    # -- scheduling core ----------------------------------------------------
    def _schedule(self, delay: float, fire: Callable[[], bool],
                  label: str = "", phase: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + delay, phase, next(self._seq), label, fire))

    def _pop_next(self) -> tuple[float, int, int, str, Callable[[], bool]]:
        """Pop the next queue entry, letting the schedule break ties.

        Without a schedule this is a plain heappop (FIFO at equal times).
        With one, all entries sharing the earliest ``(time, phase)`` are
        offered to ``schedule.choose`` by label; the chosen index is
        recorded in :attr:`schedule_trace`.
        """
        head = heapq.heappop(self._queue)
        if self.schedule is None or not self._queue:
            return head
        group = [head]
        key = (head[0], head[1])
        while self._queue and (self._queue[0][0], self._queue[0][1]) == key:
            group.append(heapq.heappop(self._queue))
        if len(group) == 1:
            return head
        idx = self.schedule.choose([entry[3] for entry in group])
        if not isinstance(idx, int) or not 0 <= idx < len(group):
            raise SimulationError(
                f"schedule chose invalid index {idx!r} among "
                f"{len(group)} candidates")
        self.schedule_trace.append(idx)
        chosen = group.pop(idx)
        for entry in group:
            heapq.heappush(self._queue, entry)
        return chosen

    def _recycle_worker(self, worker: _WorkerThread) -> None:
        self._idle_workers.append(worker)

    def _on_process_exit(self, proc: Process) -> None:
        self._live_processes -= 1
        proc.done_event.set(proc.result)

    # -- process management --------------------------------------------------
    def spawn(self, body: Callable[..., Any], *args: Any,
              name: Optional[str] = None, delay: float = 0.0,
              **kwargs: Any) -> Process:
        """Create a process that starts after ``delay`` virtual time units."""
        label = name or getattr(body, "__name__", "process")
        label = f"{label}#{next(self._proc_seq)}"

        def run() -> Any:
            return body(*args, **kwargs)

        proc = Process(self, label, run)
        self._live_processes += 1
        self._schedule(delay, self._make_start(proc),
                       label=f"{label}:start")
        return proc

    def _make_start(self, proc: Process) -> Callable[[], bool]:
        def fire() -> bool:
            if proc.finished:
                return False
            proc._started = True
            if self._idle_workers:
                worker = self._idle_workers.pop()
            else:
                worker = _WorkerThread(self, self._worker_count)
                self._worker_count += 1
            worker.submit(proc)
            proc._resume.release()
            return True

        return fire

    # -- blocking primitives (called from inside processes) ------------------
    def sleep(self, duration: float) -> None:
        """Advance this process's local time by ``duration``."""
        proc = self._require_process()
        if duration < 0:
            raise ValueError(f"negative sleep: {duration}")
        self._schedule(duration, proc._make_wakeup(("sleep", None)),
                       label=f"{proc.name}:sleep")
        proc._block()

    def wait(self, event: SimEvent, timeout: Optional[float] = None) -> bool:
        """Block until ``event`` is set; returns False on timeout.

        When a ``set()`` and the timeout land at the same virtual instant,
        the event wins the tie: timeout wakeups are queued at phase 1, so
        every same-instant normal wakeup (including the setter's resume and
        the resulting waiter wakeups) fires first and invalidates the
        pending timeout via the wake token.
        """
        proc = self._require_process()
        if event.is_set:
            return True
        event._add_waiter(proc)
        proc._waiting_on = event
        if timeout is not None:
            self._schedule(timeout, proc._make_wakeup(("timeout", event)),
                           label=f"{proc.name}:timeout:{event.name or 'anon'}",
                           phase=1)
        try:
            reason = proc._block()
        except BaseException:
            # Killed (or crashed) while blocked: stop being a waiter so a
            # later set() does not schedule a dead wakeup for us.
            event._discard_waiter(proc)
            proc._waiting_on = None
            raise
        proc._waiting_on = None
        kind = reason[0] if isinstance(reason, tuple) else reason
        if kind == "timeout" and not event.is_set:
            event._discard_waiter(proc)
            return False
        return True

    def join(self, proc: Process, timeout: Optional[float] = None) -> Any:
        """Wait for ``proc``; re-raises its error, else returns its result."""
        finished = self.wait(proc.done_event, timeout=timeout)
        if not finished:
            raise TimeoutError(f"join timed out on {proc.name}")
        if proc.error is not None and not isinstance(proc.error,
                                                     ProcessKilled):
            raise proc.error
        return proc.result

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` inline in the kernel loop after ``delay``.

        The callback must not block; it may set events or kill processes
        (used for execution-timeout watchdogs).
        """

        def fire() -> bool:
            fn()
            return False

        self._schedule(delay, fire, label="call_later")

    def interleave_point(self, tag: str) -> None:
        """Optional scheduling point for schedule exploration.

        A no-op unless an installed schedule opts in via its
        ``interleave_points`` attribute — so production runs and the
        golden-pinned FIFO executions are byte-identical. When active, the
        calling process yields at this point, letting the schedule run any
        other ready process first. Never yields inside an overlap scope
        (scope bodies are atomic in virtual time).
        """
        sched = self.schedule
        if sched is None or not getattr(sched, "interleave_points", False):
            return
        if self._no_yield:
            return
        proc = self.current_process
        if proc is None:
            return
        if self.tracer is not None:
            self.tracer.event(f"interleave:{tag}", cat="schedule",
                              process=proc.name)
        self._schedule(0.0, proc._make_wakeup(("interleave", tag)),
                       label=f"{proc.name}:interleave:{tag}")
        proc._block()

    # -- driving the simulation ----------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time reaches ``until``.

        Returns the final virtual time. Must be called from a non-simulated
        (driver) thread.
        """
        if self.current_process is not None:
            raise SimulationError("run() called from inside a process")
        if self._running:
            raise SimulationError("kernel is already running")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                when, _phase, _seq, label, fire = self._pop_next()
                self.now = when
                if fire():
                    if self.capture_trace:
                        self.fired_trace.append((when, label))
                    # Exactly one process resumed; wait for it to yield back.
                    self._yielded.acquire()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_processes_exit(self, procs: Iterable[Process],
                                 limit: Optional[float] = None) -> float:
        """Convenience driver: run until all ``procs`` finished.

        Raises :class:`SimulationError` if the event queue drains while
        some of ``procs`` are still blocked on events nobody will set —
        a deadlock that previously returned silently. Reaching ``limit``
        returns normally (the caller decides whether that is a failure).
        """
        procs = list(procs)
        while any(not p.finished for p in procs):
            self.run(until=limit)
            if limit is not None and self.now >= limit:
                break
            if not self._queue:
                blocked = [p for p in procs if not p.finished]
                if not blocked:
                    break
                detail = "; ".join(
                    f"{p.name} waiting on {p._waiting_on!r}"
                    for p in blocked)
                raise SimulationError(
                    f"deadlock: event queue drained with {len(blocked)} "
                    f"process(es) still blocked: {detail}")
        return self.now

    def shutdown(self) -> None:
        """Tear down pooled worker threads (test hygiene)."""
        for worker in self._idle_workers:
            worker.shutdown()
        self._idle_workers.clear()
