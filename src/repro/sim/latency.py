"""Latency distributions for simulated primitives.

Beldi's evaluation runs over DynamoDB and AWS Lambda; all absolute numbers
in the paper come from those services. We model each primitive (database
read, conditional write, scan, Lambda dispatch, cold start, ...) as a
lognormal distribution calibrated so that the *baseline* medians land near
the paper's Figure 13 baseline bars. Everything Beldi adds on top (extra
scans, log writes, callbacks) is *not* calibrated — it emerges from the
protocol's operation counts.

Times are virtual milliseconds throughout the repository.

Invariants this layer must uphold (see ``docs/architecture.md``):

- **Determinism.** Every sample is drawn from a named
  :class:`~repro.sim.randsrc.RandomSource` stream; for a given seed and
  call order the sequence of draws — and therefore every virtual
  timestamp in a run — is reproducible. Nothing here reads wall-clock
  time or process-global randomness.
- **Latency is additive, never causal.** A sample is how long an
  operation *takes*, not whether it happens: the store applies its table
  mutation regardless of the drawn duration, so correctness (exactly-once,
  atomicity) can never depend on a latency value. This is what makes the
  async overlap machinery (:mod:`repro.kvstore.asyncio`) safe — deferring
  or collapsing sleeps changes *when* virtual time passes, not *what* the
  store contains.
- **Queueing is arrival-ordered.** :class:`ServiceCapacity` reserves a
  server at arrival and never reorders: a given arrival sequence yields
  one deterministic schedule, even when overlapped I/O presents many
  arrivals at the same instant (they are served in issue order).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.randsrc import RandomSource


def lognormal_from_median(median: float, p99: float) -> tuple[float, float]:
    """Return ``(mu, sigma)`` of a lognormal with the given median and p99.

    For a lognormal, ``median = exp(mu)`` and
    ``p99 = exp(mu + 2.326 * sigma)``.
    """
    if median <= 0 or p99 < median:
        raise ValueError(f"need 0 < median <= p99, got {median}, {p99}")
    mu = math.log(median)
    z99 = 2.3263478740408408  # Phi^-1(0.99)
    sigma = (math.log(p99) - mu) / z99 if p99 > median else 0.0
    return mu, sigma


@dataclass(frozen=True)
class LatencySpec:
    """One primitive's latency distribution.

    ``median``/``p99`` parameterize a lognormal body; ``per_unit`` adds a
    deterministic cost per unit of work (e.g. per row returned by a scan,
    per KB transferred) so that structurally bigger operations cost more.
    """

    median: float
    p99: float
    per_unit: float = 0.0

    def params(self) -> tuple[float, float]:
        return lognormal_from_median(self.median, self.p99)


# Calibration targets (virtual ms). Baseline bars in Figure 13 sit around
# 4-8 ms median / 10-25 ms p99 for single-row DynamoDB operations, and the
# baseline invoke (a warm Lambda round trip) around 12-15 ms.
DEFAULT_SPECS: Dict[str, LatencySpec] = {
    "db.read": LatencySpec(median=4.0, p99=12.0),
    "db.write": LatencySpec(median=5.0, p99=16.0),
    "db.cond_write": LatencySpec(median=5.5, p99=17.0),
    "db.delete": LatencySpec(median=5.0, p99=16.0),
    "db.scan": LatencySpec(median=4.5, p99=14.0, per_unit=0.08),
    "db.query": LatencySpec(median=4.2, p99=13.0, per_unit=0.08),
    # BatchGetItem: one round trip amortized over many rows — the base
    # cost of a read plus a small per-row marginal (server-side fan-out).
    "db.batch_read": LatencySpec(median=4.5, p99=14.0, per_unit=0.05),
    # BatchWriteItem: the write-side twin — one round trip whose base
    # cost matches a plain write, plus a per-item marginal slightly above
    # the read batch's (writes are heavier server-side).
    "db.batch_write": LatencySpec(median=5.0, p99=16.0, per_unit=0.06),
    # TransactWriteItems: two-phase accept/commit under the hood — roughly
    # the cost of two sequential conditional writes per item plus
    # coordination (observed well above 2x a plain write in practice).
    "db.txn": LatencySpec(median=20.0, p99=70.0, per_unit=3.0),
    # Replication log shipping: how long one committed write takes to
    # land on an eventually consistent replica (the visible staleness of
    # a follower read). DynamoDB documents eventual reads as "usually"
    # current within a second; cross-AZ shipping sits in the tens of ms.
    "repl.ship": LatencySpec(median=15.0, p99=120.0),
    # Leader failover: detect + promote + replay the unacked log suffix.
    "repl.failover": LatencySpec(median=150.0, p99=600.0, per_unit=0.02),
    "lambda.dispatch": LatencySpec(median=12.0, p99=35.0),
    "lambda.cold_start": LatencySpec(median=120.0, p99=400.0),
    "lambda.compute": LatencySpec(median=5.0, p99=14.0),
    "lambda.async_ack": LatencySpec(median=6.0, p99=18.0),
}


class LatencyModel:
    """Samples virtual-time costs for named primitives.

    A ``scale`` of 0 makes every operation instantaneous, which unit tests
    use to exercise logic without paying simulated time.
    """

    def __init__(self, rand: RandomSource,
                 specs: Optional[Dict[str, LatencySpec]] = None,
                 scale: float = 1.0) -> None:
        self._rand = rand
        self._specs = dict(DEFAULT_SPECS)
        if specs:
            self._specs.update(specs)
        self.scale = scale
        self._params = {name: spec.params()
                        for name, spec in self._specs.items()}
        # Compiled draw table: one dict hit resolves everything sample()
        # needs — (mu, sigma, per_unit, median) — instead of two lookups
        # plus attribute chases per draw (the hottest non-kernel path).
        self._compiled = {
            name: (*self._params[name], spec.per_unit, spec.median)
            for name, spec in self._specs.items()}
        self._lognormvariate = rand.lognormvariate

    def spec(self, name: str) -> LatencySpec:
        return self._specs[name]

    def sample(self, name: str, units: float = 0.0) -> float:
        """Draw a latency for primitive ``name`` plus ``units`` of work."""
        entry = self._compiled.get(name)
        if entry is None:
            raise KeyError(f"unknown latency primitive: {name}")
        scale = self.scale
        if scale == 0.0:
            return 0.0
        mu, sigma, per_unit, median = entry
        if sigma == 0.0:
            body = median
        else:
            body = self._lognormvariate(mu, sigma)
        # ``body + per_unit * 0.0 == body`` exactly (body > 0), so the
        # no-units fast path is bit-identical to the full expression.
        if units:
            return (body + per_unit * units) * scale
        return body * scale

    @classmethod
    def zero(cls) -> "LatencyModel":
        """A model where everything takes no virtual time."""
        return cls(RandomSource(0), scale=0.0)


class ServiceCapacity:
    """A ``c``-server FIFO queue in virtual time.

    Models the bounded parallelism of one store node: at most ``servers``
    operations are in service at once, and excess arrivals wait for the
    earliest server to free up. Latency distributions stay the node's
    *service* times; this class turns them into *sojourn* times (queueing
    delay + service), which is what makes a saturated node visible and
    sharding worthwhile — N nodes bring N x ``servers`` aggregate
    capacity.

    The reservation is made at arrival and never released early, so a
    given arrival order yields a deterministic schedule regardless of how
    the simulated processes interleave afterwards.
    """

    def __init__(self, servers: int) -> None:
        if servers <= 0:
            raise ValueError(f"need at least one server, got {servers}")
        self.servers = servers
        self._free_at = [0.0] * servers
        heapq.heapify(self._free_at)
        self.stats_waited = 0.0
        self.stats_served = 0

    def delay(self, now: float, service_time: float) -> float:
        """Reserve a server at ``now``; return wait + service time."""
        free = self._free_at
        if len(free) == 1:
            # Single-server fast path: no heap churn for the default
            # per-node capacity (identical arithmetic, same result).
            earliest = free[0]
            start = max(now, earliest)
            free[0] = start + service_time
        else:
            earliest = heapq.heappop(free)
            start = max(now, earliest)
            heapq.heappush(free, start + service_time)
        self.stats_waited += start - now
        self.stats_served += 1
        return (start - now) + service_time

    def busy_until(self) -> float:
        """When the most-loaded server frees up (observability)."""
        return max(self._free_at)
