"""Seeded randomness with deterministic child streams.

Every stochastic component (latency sampling, workload arrival jitter,
crash injection, request content) draws from its own named child stream so
that adding a consumer never perturbs the draws seen by the others.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class RandomSource:
    """A ``random.Random`` wrapper with named, reproducible children."""

    def __init__(self, seed: int = 0, path: str = "root") -> None:
        self.seed = seed
        self.path = path
        self._rng = random.Random((seed, path).__repr__())
        self._uuid_counter = 0

    def child(self, name: str) -> "RandomSource":
        """Derive an independent stream; same (seed, path) => same draws."""
        return RandomSource(self.seed, f"{self.path}/{name}")

    # -- draws ---------------------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float],
                k: int = 1) -> list[T]:
        return self._rng.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def normal_index(self, n: int, spread: float = 0.25) -> int:
        """Pick an index in ``[0, n)`` from a truncated normal around n/2.

        Used by the travel workload: "randomly pick a hotel and a flight out
        of 100 choices each following a normal distribution" (paper §7.4).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        while True:
            draw = self._rng.gauss(n / 2.0, n * spread)
            idx = int(draw)
            if 0 <= idx < n:
                return idx

    def uuid(self) -> str:
        """A deterministic UUID-shaped unique string."""
        self._uuid_counter += 1
        body = self._rng.getrandbits(64)
        return f"{body:016x}-{self._uuid_counter:08x}"
