"""Pluggable kernel schedules for deterministic schedule exploration.

The kernel (``repro/sim/kernel.py``) labels every queue entry and, when a
schedule is installed, offers it all entries sharing the earliest
``(time, phase)``; the schedule returns the index to fire next. Each
multi-candidate decision is appended to ``SimKernel.schedule_trace``, so
an execution is fully identified by ``(seed, trace)`` and can be replayed
bit-for-bit with :class:`ReplaySchedule` — the FoundationDB-style DST
loop: explore randomly, shrink nothing, replay exactly.

Schedules also gate *interleave points*: optional yield points the
runtime sprinkles at contention sites (lock acquire/release, 2PC
prepare/commit, ``migrate:*`` phases, failover promotion). They are
no-ops unless a schedule sets ``interleave_points = True``, so default
(FIFO) runs stay byte-identical to the historical kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.kernel import SimulationError
from repro.sim.randsrc import RandomSource


class Schedule:
    """Base policy: FIFO (always fire the earliest-scheduled candidate)."""

    #: When True, ``SimKernel.interleave_point`` yields; when False it is
    #: a no-op and the execution matches a schedule-less kernel.
    interleave_points = False

    def choose(self, labels: Sequence[str]) -> int:
        """Pick which of ``labels`` (>= 2 candidates) fires next."""
        return 0


class FifoSchedule(Schedule):
    """Explicit FIFO — identical to running without a schedule, but the
    kernel still records the (trivial) trace. Useful as a control."""


class RandomSchedule(Schedule):
    """Seeded uniform choice at every multi-candidate instant.

    The seed alone replays the run (the trace is still recorded so
    failures can be replayed without re-deriving the RNG stream).
    """

    interleave_points = True

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rand = RandomSource(seed, "schedule/random")

    def choose(self, labels: Sequence[str]) -> int:
        return self.rand.randint(0, len(labels) - 1)


class ReplaySchedule(Schedule):
    """Replay a recorded ``schedule_trace`` decision-for-decision.

    Raises :class:`~repro.sim.kernel.SimulationError` when a recorded
    index is out of range for the offered candidates (the replayed code
    diverged from the recording). Once the trace is exhausted the policy
    falls back to FIFO — traces captured up to a failure point replay the
    failure and then drain deterministically.
    """

    interleave_points = True

    def __init__(self, trace: Sequence[int]) -> None:
        self.trace = list(trace)
        self.pos = 0

    def choose(self, labels: Sequence[str]) -> int:
        if self.pos >= len(self.trace):
            return 0
        idx = self.trace[self.pos]
        self.pos += 1
        if not 0 <= idx < len(labels):
            raise SimulationError(
                f"replay diverged at decision {self.pos - 1}: recorded "
                f"index {idx} but only {len(labels)} candidates offered "
                f"({list(labels)!r})")
        return idx


#: Label substrings marking decisions near known conflict sites. The
#: interleave tags are chosen by the runtime call sites (lock:*, txn:*,
#: 2pc:*, migrate:*, failover:*) so one substring family covers them all.
DEFAULT_CONFLICT_PATTERNS = (
    ":interleave:lock:",
    ":interleave:txn:",
    ":interleave:2pc:",
    ":interleave:migrate:",
    ":interleave:failover:",
)


class TargetedSchedule(Schedule):
    """FIFO away from conflicts, adversarial near them.

    When any offered candidate label matches a conflict pattern, pick
    uniformly among the *matching* candidates (seeded); otherwise fall
    back to FIFO. This concentrates the exploration budget on orderings
    around lock handoffs, 2PC rounds, migration phases and failover
    promotion instead of diffusing it over background timers.
    """

    interleave_points = True

    def __init__(self, seed: int,
                 patterns: Optional[Sequence[str]] = None) -> None:
        self.seed = seed
        self.rand = RandomSource(seed, "schedule/targeted")
        self.patterns = tuple(patterns or DEFAULT_CONFLICT_PATTERNS)
        #: Number of decisions where a conflict-site candidate was present
        #: (tests assert the explorer actually reached contention).
        self.conflict_hits = 0

    def _is_hot(self, label: str) -> bool:
        return any(pattern in label for pattern in self.patterns)

    def choose(self, labels: Sequence[str]) -> int:
        hot = [i for i, label in enumerate(labels) if self._is_hot(label)]
        if not hot:
            return 0
        self.conflict_hits += 1
        return self.rand.choice(hot)


def format_failure(seed: int, trace: Sequence[int]) -> str:
    """One-line ``(seed, trace)`` form printed on assertion failures.

    The format is stable so a CI log line can be pasted straight into
    :func:`parse_failure` (see docs/testing.md).
    """
    return f"DST-REPLAY seed={seed} trace={','.join(map(str, trace))}"


def parse_failure(line: str) -> tuple[int, list[int]]:
    """Inverse of :func:`format_failure` (accepts the full log line)."""
    marker = "DST-REPLAY "
    at = line.find(marker)
    if at < 0:
        raise ValueError(f"no {marker!r} marker in {line!r}")
    fields = dict(part.split("=", 1)
                  for part in line[at + len(marker):].split())
    trace_text = fields["trace"]
    trace = [int(x) for x in trace_text.split(",")] if trace_text else []
    return int(fields["seed"]), trace


__all__ = [
    "DEFAULT_CONFLICT_PATTERNS",
    "FifoSchedule",
    "RandomSchedule",
    "ReplaySchedule",
    "Schedule",
    "TargetedSchedule",
    "format_failure",
    "parse_failure",
]
