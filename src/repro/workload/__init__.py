"""Load generation and latency measurement (§7.2's methodology).

The paper drives its applications with wrk2 — an *open-loop* constant
throughput generator that avoids coordinated omission: requests are
launched on schedule whether or not earlier ones completed. This package
reproduces that methodology inside the simulation: a generator process
spawns one client process per arrival, a recorder keeps full latency
distributions (and time-bucketed series for the GC experiment), and the
runner assembles rate sweeps like Figures 14/15/26.
"""

from repro.workload.generator import (
    LoadGenerator,
    LoadResult,
    ZipfSampler,
    skewed_keys,
    zipf_weights,
)
from repro.workload.recorder import LatencyRecorder
from repro.workload.runner import (
    ClosedLoopResult,
    SweepPoint,
    run_closed_loop,
    run_constant_load,
    run_sweep,
)

__all__ = [
    "ClosedLoopResult",
    "LatencyRecorder",
    "LoadGenerator",
    "LoadResult",
    "SweepPoint",
    "ZipfSampler",
    "run_closed_loop",
    "run_constant_load",
    "run_sweep",
    "skewed_keys",
    "zipf_weights",
]
