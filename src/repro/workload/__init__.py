"""Load generation and latency measurement (§7.2's methodology).

The paper drives its applications with wrk2 — an *open-loop* constant
throughput generator that avoids coordinated omission: requests are
launched on schedule whether or not earlier ones completed. This package
reproduces that methodology inside the simulation: a generator process
spawns one client process per arrival, a recorder keeps full latency
distributions (and time-bucketed series for the GC experiment), and the
runner assembles rate sweeps like Figures 14/15/26.
"""

from repro.workload.generator import (
    LoadGenerator,
    LoadResult,
    ZipfSampler,
    skewed_keys,
    zipf_weights,
)
from repro.workload.openloop import (
    AdmissionStats,
    AdmissionWindow,
    OpenLoopConfig,
    OpenLoopPoint,
    OpenLoopResult,
    bursty_arrivals,
    find_knee,
    merge_streams,
    poisson_arrivals,
    run_open_loop,
    sweep_open_loop,
)
from repro.workload.recorder import LatencyRecorder
from repro.workload.runner import (
    ClosedLoopResult,
    SweepPoint,
    run_closed_loop,
    run_constant_load,
    run_sweep,
)

__all__ = [
    "AdmissionStats",
    "AdmissionWindow",
    "ClosedLoopResult",
    "LatencyRecorder",
    "LoadGenerator",
    "LoadResult",
    "OpenLoopConfig",
    "OpenLoopPoint",
    "OpenLoopResult",
    "SweepPoint",
    "ZipfSampler",
    "bursty_arrivals",
    "find_knee",
    "merge_streams",
    "poisson_arrivals",
    "run_closed_loop",
    "run_constant_load",
    "run_open_loop",
    "run_sweep",
    "skewed_keys",
    "sweep_open_loop",
    "zipf_weights",
]
