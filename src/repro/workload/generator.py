"""Open-loop constant-rate load generation (wrk2-style, §7.2) and
key-popularity distributions (uniform / Zipf hot-key skew)."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.platform.errors import (
    FunctionCrashed,
    FunctionTimeout,
    TooManyRequests,
)
from repro.sim.kernel import SimKernel
from repro.sim.randsrc import RandomSource
from repro.workload.recorder import LatencyRecorder


def zipf_weights(n_keys: int, s: float) -> list[float]:
    """Normalized Zipf(s) popularity over ranks ``1..n_keys``.

    ``weight[r] ∝ (r+1)^-s``; ``s=0`` degenerates to uniform. The head
    of the returned list is the hottest rank — callers decide which
    actual key each rank names.
    """
    if n_keys <= 0:
        raise ValueError(f"need at least one key, got {n_keys}")
    if s < 0:
        raise ValueError(f"Zipf exponent must be >= 0, got {s}")
    raw = [(rank + 1) ** -s for rank in range(n_keys)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Deterministic Zipf(s) rank sampler over ``n_keys`` ranks.

    Draws through a named :class:`~repro.sim.randsrc.RandomSource`
    stream via inverse-CDF lookup, so for a given seed the rank
    sequence is identical in every run — the property the elasticity
    benchmark (and its determinism test) relies on. ``sample`` returns
    a rank in ``[0, n_keys)``; rank 0 is the hottest.
    """

    def __init__(self, n_keys: int, s: float, rand: RandomSource) -> None:
        self.n_keys = n_keys
        self.s = s
        self.rand = rand
        self.weights = zipf_weights(n_keys, s)
        self._cdf = []
        acc = 0.0
        for weight in self.weights:
            acc += weight
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard the floating-point tail

    def sample(self) -> int:
        return min(bisect_right(self._cdf, self.rand.random()),
                   self.n_keys - 1)

    def sequence(self, count: int) -> list[int]:
        """The next ``count`` ranks (drains the stream deterministically)."""
        return [self.sample() for _ in range(count)]


def skewed_keys(keys: Sequence[Any], count: int, s: float,
                rand: RandomSource) -> list[Any]:
    """``count`` draws from ``keys`` with Zipf(s) popularity by position.

    ``keys[0]`` is the hottest key. ``s=0`` is uniform — the knob a
    workload flips between the balanced and hot-key regimes.
    """
    sampler = ZipfSampler(len(keys), s, rand)
    return [keys[rank] for rank in sampler.sequence(count)]


@dataclass
class LoadResult:
    """Outcome of one constant-rate run."""

    offered_rate: float            # requests per virtual second
    duration: float                # virtual ms
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def completed(self) -> int:
        return self.recorder.count

    @property
    def achieved_rate(self) -> float:
        return self.completed / (self.duration / 1000.0)

    @property
    def rejected(self) -> int:
        return self.recorder.total("rejected")

    @property
    def errors(self) -> int:
        return (self.recorder.total("crashed")
                + self.recorder.total("timeout"))

    def row(self) -> dict:
        return {
            "offered_rps": self.offered_rate,
            "achieved_rps": round(self.achieved_rate, 1),
            "p50_ms": round(self.recorder.p50, 1)
            if self.recorder.samples else None,
            "p95_ms": round(self.recorder.percentile(95.0), 1)
            if self.recorder.samples else None,
            "p99_ms": round(self.recorder.p99, 1)
            if self.recorder.samples else None,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
        }


class LoadGenerator:
    """Spawns one client process per scheduled arrival.

    Open loop: arrival times are fixed up front (uniform spacing plus a
    small deterministic jitter), so a slow system cannot slow the arrival
    process down — the same property wrk2 provides, and the reason the
    paper's saturation knees are visible.
    """

    def __init__(self, kernel: SimKernel,
                 submit: Callable[[Any], Any],
                 sample: Callable[[RandomSource], Any],
                 rand: RandomSource,
                 bucket_width: Optional[float] = None) -> None:
        self.kernel = kernel
        self.submit = submit
        self.sample = sample
        self.rand = rand
        self.bucket_width = bucket_width

    def run(self, rate_rps: float, duration_ms: float,
            warmup_ms: float = 0.0) -> LoadResult:
        """Schedule arrivals and drive the kernel through them.

        Requests arriving during ``warmup_ms`` execute but are not
        recorded. Must be called from the driving (non-process) thread.
        """
        result = LoadResult(offered_rate=rate_rps, duration=duration_ms,
                            recorder=LatencyRecorder(self.bucket_width))
        interval = 1000.0 / rate_rps
        total = int((warmup_ms + duration_ms) / interval)
        jitter = self.rand.child("jitter")
        request_rand = self.rand.child("requests")
        base = self.kernel.now

        def client(payload: Any, recorded: bool) -> None:
            start = self.kernel.now
            try:
                self.submit(payload)
                if recorded:
                    # Bucket by time-since-measurement-start; the latency
                    # itself is wall-to-wall for this request.
                    relative_start = start - base - warmup_ms
                    latency = self.kernel.now - start
                    result.recorder.record(relative_start,
                                           relative_start + latency, "ok")
            except TooManyRequests:
                if recorded:
                    result.recorder.record_failure("rejected")
            except FunctionCrashed:
                if recorded:
                    result.recorder.record_failure("crashed")
            except FunctionTimeout:
                if recorded:
                    result.recorder.record_failure("timeout")

        for i in range(total):
            at = i * interval + jitter.uniform(0.0, interval * 0.1)
            recorded = at >= warmup_ms
            payload = self.sample(request_rand)
            self.kernel.spawn(client, payload, recorded,
                              name="load-client", delay=at)
        self.kernel.run(until=base + warmup_ms + duration_ms)
        # Let in-flight requests finish (bounded drain).
        self.kernel.run(until=base + warmup_ms + duration_ms + 30_000.0)
        return result
