"""Open-loop arrival processes, admission control, and RPS sweeps.

The closed-loop runners (:mod:`repro.workload.runner`) measure *capacity*
— N users, at most N in flight. Scale claims need the opposite: an
**open-loop** arrival process that launches requests on schedule whether
or not earlier ones completed (wrk2's model, and the reason saturation
knees are visible at all). This module provides:

- deterministic **Poisson** and **bursty (on/off)** arrival generators —
  pure functions of ``(seed, rate, horizon)``, so the same seed always
  produces the same arrival sequence;
- :func:`merge_streams` for multi-class mixes (every class keeps its own
  generator stream; the merge is stable and sorted);
- an **admission window** (:class:`AdmissionWindow`) bounding requests
  in flight, with a shed-vs-queue policy and full accounting, applied
  *before* the platform gateway — backpressure for when
  ``ServiceCapacity`` queues saturate;
- the open-loop driver (:func:`run_open_loop`): arrivals are scheduled
  at their intended virtual times regardless of completion, and response
  time is measured **from the intended arrival** — queueing delay in the
  admission window counts against the request, so the numbers cannot
  exhibit coordinated omission;
- a target-RPS sweep (:func:`sweep_open_loop`) and saturation-knee
  detection (:func:`find_knee`) producing the latency-vs-offered-RPS
  curve shape every scale claim is judged by.

Times are virtual milliseconds; rates are requests per virtual second.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.platform.errors import (
    FunctionCrashed,
    FunctionTimeout,
    TooManyRequests,
)
from repro.sim.kernel import SimKernel
from repro.sim.randsrc import RandomSource
from repro.workload.recorder import LatencyRecorder


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------

def poisson_arrivals(rate_rps: float, duration_ms: float,
                     rand: RandomSource) -> list[float]:
    """Arrival times of a Poisson process at ``rate_rps`` over the horizon.

    Inter-arrival gaps are exponential draws from ``rand``, so the
    sequence is a pure function of the random stream: same seed, same
    arrivals. Times are in ``[0, duration_ms)``, strictly increasing.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate must be positive, got {rate_rps}")
    if duration_ms < 0:
        raise ValueError(f"negative horizon: {duration_ms}")
    rate_per_ms = rate_rps / 1000.0
    expovariate = rand.expovariate
    out: list[float] = []
    t = expovariate(rate_per_ms)
    while t < duration_ms:
        out.append(t)
        t += expovariate(rate_per_ms)
    return out


def bursty_arrivals(rate_rps: float, duration_ms: float,
                    rand: RandomSource,
                    on_ms: float, off_ms: float,
                    off_rate_rps: float = 0.0) -> list[float]:
    """On/off modulated Poisson arrivals (bursty traffic).

    Windows alternate ``on_ms`` at ``rate_rps`` and ``off_ms`` at
    ``off_rate_rps`` (default silent), starting with an on-window.
    Within each window the process is Poisson at that window's rate;
    because the exponential is memoryless, restarting the draw at each
    boundary is *exactly* a rate-modulated Poisson process, not an
    approximation.
    """
    if rate_rps <= 0:
        raise ValueError(f"on-rate must be positive, got {rate_rps}")
    if on_ms <= 0 or off_ms < 0:
        raise ValueError(f"bad window lengths: on={on_ms}, off={off_ms}")
    if off_rate_rps < 0:
        raise ValueError(f"negative off-rate: {off_rate_rps}")
    expovariate = rand.expovariate
    out: list[float] = []
    window_start = 0.0
    on = True
    while window_start < duration_ms:
        width = on_ms if on else off_ms
        end = min(window_start + width, duration_ms)
        rate = rate_rps if on else off_rate_rps
        if rate > 0 and end > window_start:
            rate_per_ms = rate / 1000.0
            t = window_start + expovariate(rate_per_ms)
            while t < end:
                out.append(t)
                t += expovariate(rate_per_ms)
        window_start += width
        on = not on
    return out


def merge_streams(
        streams: Sequence[tuple[str, Sequence[float]]]
) -> list[tuple[float, str]]:
    """Merge per-class arrival streams into one sorted ``(time, class)``.

    Stable: at equal times, classes fire in the order given (heapq.merge
    on ``(time, stream index)``), so the merged order is deterministic
    even under ties.
    """
    # Eager lists: a generator here would close over index/name lazily
    # and tag every stream with the last class once merge() consumes it.
    tagged = [[(t, index, name) for t in times]
              for index, (name, times) in enumerate(streams)]
    return [(t, name) for t, _idx, name in heapq.merge(*tagged)]


# ---------------------------------------------------------------------------
# admission control / backpressure
# ---------------------------------------------------------------------------

@dataclass
class AdmissionStats:
    """Accounting for one admission window's lifetime."""

    admitted: int = 0
    shed: int = 0
    queued: int = 0          # admissions that waited before entering
    abandoned: int = 0       # queued waiters killed before admission
    max_in_flight: int = 0
    max_queue_depth: int = 0


class AdmissionWindow:
    """Bounded in-flight window with a shed-vs-queue policy.

    ``policy="shed"`` rejects an arrival immediately when ``max_in_flight``
    requests are already inside. ``policy="queue"`` parks up to
    ``max_queue`` arrivals in FIFO order (still counting their wait
    against *their* response time — the caller measures from intended
    arrival) and sheds beyond that. Slot handoff is FIFO and happens
    through kernel events, so the admission order is deterministic for a
    given schedule.
    """

    def __init__(self, kernel: SimKernel, max_in_flight: int,
                 policy: str = "shed", max_queue: int = 0) -> None:
        if max_in_flight <= 0:
            raise ValueError(
                f"need a positive in-flight bound, got {max_in_flight}")
        if policy not in ("shed", "queue"):
            raise ValueError(f"unknown policy: {policy!r}")
        if max_queue < 0:
            raise ValueError(f"negative queue bound: {max_queue}")
        self.kernel = kernel
        self.max_in_flight = max_in_flight
        self.policy = policy
        self.max_queue = max_queue
        self.in_flight = 0
        self.stats = AdmissionStats()
        self._waiters: deque = deque()

    def try_enter(self) -> bool:
        """Claim a slot; blocks only under ``policy="queue"``.

        Returns False when the request is shed. Must be called from a
        simulated process. A queued waiter killed before admission gives
        its (possibly already handed-over) slot back, so crash sweeps
        cannot leak window capacity.
        """
        stats = self.stats
        if self.in_flight < self.max_in_flight:
            self.in_flight += 1
            stats.admitted += 1
            if self.in_flight > stats.max_in_flight:
                stats.max_in_flight = self.in_flight
            return True
        if self.policy == "shed" or len(self._waiters) >= self.max_queue:
            stats.shed += 1
            return False
        event = self.kernel.event("admit")
        self._waiters.append(event)
        depth = len(self._waiters)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        stats.queued += 1
        try:
            self.kernel.wait(event)
        except BaseException:
            stats.abandoned += 1
            if event.is_set:
                # The slot was already handed to us; pass it on so the
                # window never leaks capacity.
                self._release()
            else:
                try:
                    self._waiters.remove(event)
                except ValueError:  # pragma: no cover - defensive
                    pass
            raise
        # Slot handed over by the leaver: in_flight was never decremented.
        stats.admitted += 1
        return True

    def leave(self) -> None:
        """Release a slot, handing it to the longest-queued waiter."""
        self._release()

    def _release(self) -> None:
        if self._waiters:
            self._waiters.popleft().set()
        else:
            self.in_flight -= 1


# ---------------------------------------------------------------------------
# the open-loop driver
# ---------------------------------------------------------------------------

@dataclass
class OpenLoopConfig:
    """Knobs for one open-loop run."""

    max_in_flight: int = 64
    policy: str = "shed"
    max_queue: int = 0
    warmup_ms: float = 0.0
    drain_ms: float = 30_000.0
    #: Arrivals are materialized into kernel entries in windows of this
    #: width, so a million-request run never holds a million pending
    #: process objects at once.
    spawn_window_ms: float = 2_000.0


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run at a fixed offered rate."""

    offered_rps: float
    duration_ms: float
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    admission: AdmissionStats = field(default_factory=AdmissionStats)
    offered: int = 0           # arrivals inside the measured window

    @property
    def completed(self) -> int:
        return self.recorder.count

    @property
    def goodput_rps(self) -> float:
        """Successful completions per second of offered (measured) time."""
        if self.duration_ms <= 0:
            return 0.0
        return self.completed / (self.duration_ms / 1000.0)

    @property
    def shed(self) -> int:
        return self.recorder.total("shed")

    @property
    def rejected(self) -> int:
        return self.recorder.total("rejected")

    @property
    def errors(self) -> int:
        return (self.recorder.total("crashed")
                + self.recorder.total("timeout")
                + sum(count for outcome, count
                      in self.recorder.outcomes.items()
                      if outcome.startswith("error:")))

    def row(self) -> dict:
        has = bool(self.recorder.samples)
        return {
            "offered_rps": self.offered_rps,
            "goodput_rps": round(self.goodput_rps, 1),
            "p50_ms": round(self.recorder.p50, 1) if has else None,
            "p95_ms": round(self.recorder.percentile(95.0), 1)
            if has else None,
            "p99_ms": round(self.recorder.p99, 1) if has else None,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "errors": self.errors,
        }


def run_open_loop(runtime: Any, entry: str,
                  sample: Callable[..., Any],
                  arrivals: Sequence[Any],
                  config: Optional[OpenLoopConfig] = None,
                  seed: int = 0,
                  offered_rps: float = 0.0,
                  duration_ms: Optional[float] = None) -> OpenLoopResult:
    """Drive ``arrivals`` through a runtime's gateway, open loop.

    ``arrivals`` holds relative virtual times (ms), or ``(time, tag)``
    pairs from :func:`merge_streams` — tagged arrivals call
    ``sample(rand, tag)`` instead of ``sample(rand)``.

    Every request is launched at its scheduled arrival time no matter
    what earlier requests are doing, and its response time runs from
    that *intended* arrival — admission queueing included — so a slow
    system shows up as latency, never as a thinner arrival stream
    (no coordinated omission). Arrivals during ``warmup_ms`` execute
    unrecorded.
    """
    cfg = config or OpenLoopConfig()
    kernel: SimKernel = runtime.kernel
    window = AdmissionWindow(kernel, cfg.max_in_flight,
                             policy=cfg.policy, max_queue=cfg.max_queue)
    normalized: list[tuple[float, Any]] = [
        (item, None) if not isinstance(item, tuple) else item
        for item in arrivals]
    horizon = normalized[-1][0] if normalized else 0.0
    if duration_ms is None:
        duration_ms = max(horizon, cfg.warmup_ms) - cfg.warmup_ms
    result = OpenLoopResult(offered_rps=offered_rps, duration_ms=duration_ms,
                            admission=window.stats)
    recorder = result.recorder
    request_rand = RandomSource(seed, "openloop/requests")
    base = kernel.now
    warmup = cfg.warmup_ms

    def client(at: float, payload: Any, recorded: bool) -> None:
        if not window.try_enter():
            if recorded:
                recorder.record_failure("shed", at=at - warmup)
            return
        try:
            runtime.client_call(entry, payload)
            if recorded:
                # Latency runs from the intended arrival: kernel.now
                # already includes any admission-queue wait.
                recorder.record(at - warmup, kernel.now - base - warmup)
        except TooManyRequests:
            if recorded:
                recorder.record_failure("rejected", at=at - warmup)
        except FunctionCrashed:
            if recorded:
                recorder.record_failure("crashed", at=at - warmup)
        except FunctionTimeout:
            if recorded:
                recorder.record_failure("timeout", at=at - warmup)
        except Exception as exc:
            # Injected-environment errors (outage, throttle burst,
            # deadline abort) surface raw when the resilience budget is
            # exhausted — or immediately with the layer off. An open
            # loop must keep offering load through an incident, so any
            # failure becomes a labeled outcome instead of killing the
            # client process.
            if recorded:
                recorder.record_failure(
                    f"error:{type(exc).__name__}", at=at - warmup)
        finally:
            window.leave()

    spawn = kernel.spawn
    window_ms = cfg.spawn_window_ms
    index, total = 0, len(normalized)
    boundary = window_ms
    while index < total:
        while index < total and normalized[index][0] < boundary:
            at, tag = normalized[index]
            recorded = at >= warmup
            if recorded:
                result.offered += 1
            payload = (sample(request_rand) if tag is None
                       else sample(request_rand, tag))
            spawn(client, at, payload, recorded,
                  name="ol-client", delay=base + at - kernel.now)
            index += 1
        kernel.run(until=min(base + boundary, base + horizon))
        boundary += window_ms
    # Bounded drain for in-flight stragglers (platform watchdogs may hold
    # timers forever, so an unbounded run() is not an option).
    kernel.run(until=base + horizon + cfg.drain_ms)
    return result


# ---------------------------------------------------------------------------
# sweeps and the knee
# ---------------------------------------------------------------------------

@dataclass
class OpenLoopPoint:
    rate: float
    result: OpenLoopResult

    def row(self) -> dict:
        return self.result.row()


def sweep_open_loop(build: Callable[[], tuple[Any, str,
                                              Callable[..., Any]]],
                    rates: Iterable[float], duration_ms: float,
                    config: Optional[OpenLoopConfig] = None,
                    seed: int = 0,
                    arrival_model: str = "poisson",
                    burst_on_ms: float = 1_000.0,
                    burst_off_ms: float = 1_000.0) -> list[OpenLoopPoint]:
    """Latency-vs-offered-RPS sweep over fresh runtimes.

    ``build`` constructs a fresh runtime+app per rate point (the paper's
    methodology: each offered load measured from a clean system).
    ``arrival_model`` is ``"poisson"`` or ``"bursty"``; bursty sweeps
    keep the *average* window structure fixed and scale the on-rate.
    """
    cfg = config or OpenLoopConfig()
    points = []
    for rate in rates:
        runtime, entry, sample = build()
        rand = RandomSource(seed, f"openloop/arrivals/{rate}")
        horizon = cfg.warmup_ms + duration_ms
        if arrival_model == "poisson":
            arrivals = poisson_arrivals(rate, horizon, rand)
        elif arrival_model == "bursty":
            arrivals = bursty_arrivals(rate, horizon, rand,
                                       on_ms=burst_on_ms,
                                       off_ms=burst_off_ms)
        else:
            raise ValueError(f"unknown arrival model: {arrival_model!r}")
        result = run_open_loop(runtime, entry, sample, arrivals,
                               config=cfg, seed=seed, offered_rps=rate,
                               duration_ms=duration_ms)
        points.append(OpenLoopPoint(rate=rate, result=result))
        runtime.stop_collectors()
        runtime.kernel.shutdown()
    return points


def find_knee(points: Sequence[OpenLoopPoint],
              latency_factor: float = 3.0,
              goodput_floor: float = 0.95) -> dict:
    """Identify the saturation knee of a latency-vs-RPS curve.

    A point is *saturated* when its completions fall below
    ``goodput_floor x`` its actual offered arrivals (work is being shed
    or erred away — counted against the realized arrival count, not the
    nominal rate, so Poisson count noise cannot fake saturation) or its
    p99 exceeds ``latency_factor x`` the first point's p99 (queueing
    has taken over). The knee is the last unsaturated offered rate.

    Returns ``{"knee_rps", "saturated_at", "baseline_p99_ms"}`` where
    ``saturated_at`` is the first saturated rate (None if the sweep
    never saturates — the caller should extend the sweep).
    """
    if not points:
        raise ValueError("empty sweep")
    first = points[0].result
    baseline_p99 = (first.recorder.p99 if first.recorder.samples
                    else float("nan"))
    knee = None
    saturated_at = None
    for point in points:
        result = point.result
        offered = point.rate
        goodput_ok = result.completed >= goodput_floor * result.offered
        p99 = (result.recorder.p99 if result.recorder.samples
               else float("inf"))
        latency_ok = (baseline_p99 == baseline_p99
                      and p99 <= latency_factor * baseline_p99)
        if goodput_ok and latency_ok:
            knee = offered
        elif saturated_at is None:
            saturated_at = offered
    return {
        "knee_rps": knee,
        "saturated_at": saturated_at,
        "baseline_p99_ms": baseline_p99,
    }
