"""Latency recording: percentiles and time-bucketed series."""

from __future__ import annotations

import math
from typing import Optional


class LatencyRecorder:
    """Collects completion latencies (virtual ms) with outcome labels."""

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        self.samples: list[float] = []
        self.outcomes: dict[str, int] = {}
        self.bucket_width = bucket_width
        self._buckets: dict[int, list[float]] = {}
        #: Timestamped event log: ``(start, outcome, latency-or-None)``.
        #: Completions always land here; failures only when the caller
        #: passes their arrival time — phase-sliced analyses (goodput
        #: during/after a fault window) need to attribute every request
        #: to the phase it *arrived* in.
        self.events: list[tuple[float, str, Optional[float]]] = []

    def record(self, start: float, end: float, outcome: str = "ok") -> None:
        latency = end - start
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.events.append((start, outcome, latency))
        if outcome != "ok":
            return
        self.samples.append(latency)
        if self.bucket_width:
            self._buckets.setdefault(
                int(start // self.bucket_width), []).append(latency)

    def record_failure(self, outcome: str,
                       at: Optional[float] = None) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if at is not None:
            self.events.append((at, outcome, None))

    def window(self, start: float, end: float) -> "LatencyRecorder":
        """A sub-recorder of the events whose *arrival* fell in
        ``[start, end)`` — phase-sliced percentiles and outcome counts.
        Only timestamped events contribute (see :attr:`events`)."""
        out = LatencyRecorder()
        for at, outcome, latency in self.events:
            if start <= at < end:
                if latency is None:
                    out.record_failure(outcome, at=at)
                else:
                    out.record(at, at + latency, outcome)
        return out

    # -- aggregate statistics ------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.samples)

    def total(self, outcome: str) -> int:
        return self.outcomes.get(outcome, 0)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; q in [0, 100]."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self.samples:
            return float("nan")
        return sum(self.samples) / len(self.samples)

    # -- time series (Fig. 16 uses median-per-interval) ------------------------
    def series(self, q: float = 50.0) -> list[tuple[float, float]]:
        """``(bucket start time, percentile)`` pairs, in time order."""
        if not self.bucket_width:
            raise ValueError("recorder built without bucket_width")
        points = []
        for index in sorted(self._buckets):
            samples = sorted(self._buckets[index])
            rank = max(1, math.ceil(q / 100.0 * len(samples)))
            points.append((index * self.bucket_width, samples[rank - 1]))
        return points

    def summary(self) -> dict:
        return {
            "count": self.count,
            "p50": round(self.p50, 3) if self.samples else None,
            "p99": round(self.p99, 3) if self.samples else None,
            "mean": round(self.mean, 3) if self.samples else None,
            "outcomes": dict(self.outcomes),
        }
