"""Experiment runners: constant-rate points, rate sweeps, closed loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.sim.randsrc import RandomSource
from repro.workload.generator import LoadGenerator, LoadResult
from repro.workload.recorder import LatencyRecorder


@dataclass
class SweepPoint:
    rate: float
    result: LoadResult

    def row(self) -> dict:
        return self.result.row()


@dataclass
class ClosedLoopResult:
    """Outcome of one parallel multi-user closed-loop run."""

    makespan_ms: float
    failures: int
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def completed(self) -> int:
        return self.recorder.count

    @property
    def throughput_rps(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.completed / (self.makespan_ms / 1000.0)

    def row(self) -> dict:
        return {
            "completed": self.completed,
            "failures": self.failures,
            "makespan_ms": round(self.makespan_ms, 1),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.recorder.p50, 1)
            if self.recorder.samples else None,
            "p95_ms": round(self.recorder.percentile(95.0), 1)
            if self.recorder.samples else None,
            "p99_ms": round(self.recorder.p99, 1)
            if self.recorder.samples else None,
        }


def run_closed_loop(runtime: Any, entry: str,
                    user_payloads: Sequence[Sequence[Any]]
                    ) -> ClosedLoopResult:
    """Parallel multi-user closed loop: one client process per user,
    each issuing its payload sequence back-to-back through the gateway.

    Closed-loop (think-time-free) clients expose *capacity*: with N
    users the system sees at most N in-flight requests, and throughput
    over the makespan measures how fast the backend can actually serve
    them — the measurement shard scaling is judged by, complementing the
    open-loop generator's saturation knees. The makespan ends when the
    last user finishes; platform watchdog events draining afterwards are
    not workload time. Platform-level failures (crash, timeout,
    rejection) are counted, not raised.
    """
    from repro.platform.errors import (FunctionCrashed, FunctionTimeout,
                                       TooManyRequests)
    result = ClosedLoopResult(makespan_ms=0.0, failures=0)
    finished_at = [0.0]
    obs = getattr(runtime, "obs", None)

    def user(payloads: Sequence[Any]) -> None:
        for payload in payloads:
            start = runtime.kernel.now
            try:
                runtime.client_call(entry, payload)
            except (FunctionCrashed, FunctionTimeout, TooManyRequests):
                result.failures += 1
                if obs is not None:
                    obs.metrics.inc("request.failed")
                continue
            result.recorder.record(start, runtime.kernel.now)
            if obs is not None:
                obs.metrics.inc("request.completed")
                obs.metrics.observe("request.latency_ms",
                                    runtime.kernel.now - start)
        finished_at[0] = max(finished_at[0], runtime.kernel.now)

    start = runtime.kernel.now
    for index, payloads in enumerate(user_payloads):
        runtime.kernel.spawn(user, list(payloads), name=f"user-{index}")
    runtime.kernel.run()
    result.makespan_ms = finished_at[0] - start
    return result


def run_constant_load(runtime: Any, entry: str,
                      sample: Callable[[RandomSource], Any],
                      rate_rps: float, duration_ms: float,
                      warmup_ms: float = 0.0,
                      seed: int = 0,
                      bucket_width: Optional[float] = None) -> LoadResult:
    """One constant-rate measurement against a runtime's gateway."""
    generator = LoadGenerator(
        runtime.kernel,
        submit=lambda payload: runtime.client_call(entry, payload),
        sample=sample,
        rand=RandomSource(seed, "load"),
        bucket_width=bucket_width)
    return generator.run(rate_rps, duration_ms, warmup_ms=warmup_ms)


def run_sweep(build: Callable[[], tuple[Any, str,
                                        Callable[[RandomSource], Any]]],
              rates: Iterable[float], duration_ms: float,
              warmup_ms: float = 0.0, seed: int = 0) -> list[SweepPoint]:
    """Latency-vs-throughput sweep (Figures 14/15/26 shape).

    ``build`` constructs a **fresh** runtime+app per rate point — matching
    the paper's methodology of measuring each offered load from a clean
    system rather than reusing a warmed, possibly saturated one.
    """
    points = []
    for rate in rates:
        runtime, entry, sample = build()
        result = run_constant_load(runtime, entry, sample, rate,
                                   duration_ms, warmup_ms=warmup_ms,
                                   seed=seed)
        points.append(SweepPoint(rate=rate, result=result))
        runtime.stop_collectors()
        runtime.kernel.shutdown()
    return points
