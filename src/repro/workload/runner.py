"""Experiment runners: constant-rate points and rate sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.sim.randsrc import RandomSource
from repro.workload.generator import LoadGenerator, LoadResult


@dataclass
class SweepPoint:
    rate: float
    result: LoadResult

    def row(self) -> dict:
        return self.result.row()


def run_constant_load(runtime: Any, entry: str,
                      sample: Callable[[RandomSource], Any],
                      rate_rps: float, duration_ms: float,
                      warmup_ms: float = 0.0,
                      seed: int = 0,
                      bucket_width: Optional[float] = None) -> LoadResult:
    """One constant-rate measurement against a runtime's gateway."""
    generator = LoadGenerator(
        runtime.kernel,
        submit=lambda payload: runtime.client_call(entry, payload),
        sample=sample,
        rand=RandomSource(seed, "load"),
        bucket_width=bucket_width)
    return generator.run(rate_rps, duration_ms, warmup_ms=warmup_ms)


def run_sweep(build: Callable[[], tuple[Any, str,
                                        Callable[[RandomSource], Any]]],
              rates: Iterable[float], duration_ms: float,
              warmup_ms: float = 0.0, seed: int = 0) -> list[SweepPoint]:
    """Latency-vs-throughput sweep (Figures 14/15/26 shape).

    ``build`` constructs a **fresh** runtime+app per rate point — matching
    the paper's methodology of measuring each offered load from a clean
    system rather than reusing a warmed, possibly saturated one.
    """
    points = []
    for rate in rates:
        runtime, entry, sample = build()
        result = run_constant_load(runtime, entry, sample, rate,
                                   duration_ms, warmup_ms=warmup_ms,
                                   seed=seed)
        points.append(SweepPoint(rate=rate, result=result))
        runtime.stop_collectors()
        runtime.kernel.shutdown()
    return points
