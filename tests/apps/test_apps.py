"""Integration tests for the three case-study applications."""

import pytest

from repro.apps import build_app
from repro.core import BaselineRuntime, BeldiConfig, BeldiRuntime
from repro.sim import RandomSource


def beldi_runtime(seed=1):
    return BeldiRuntime(seed=seed, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0))


class TestTravelApp:
    @pytest.fixture
    def installed(self):
        runtime = beldi_runtime()
        app = build_app("travel", seed=2, n_hotels=10, n_flights=10,
                        rooms_per_hotel=5, seats_per_flight=5, n_users=5)
        app.install(runtime)
        yield runtime, app
        runtime.kernel.shutdown()

    def test_registers_ten_ssfs(self, installed):
        runtime, app = installed
        assert len(app.envs) == app.ssf_count == 10

    def test_search_returns_ranked_hotels(self, installed):
        runtime, app = installed
        result = runtime.run_workflow(
            "frontend", {"action": "search", "cell": 3})
        assert 1 <= len(result["hotels"]) <= 5
        assert all(h["cell"] == 3 for h in result["hotels"])

    def test_recommend_by_each_criterion(self, installed):
        runtime, app = installed
        for criterion in ("price", "distance", "rate"):
            result = runtime.run_workflow(
                "frontend", {"action": "recommend", "by": criterion})
            assert result["by"] == criterion
            assert len(result["recommended"]) == 5

    def test_login_success_and_failure(self, installed):
        runtime, app = installed
        good = runtime.run_workflow("frontend", {
            "action": "login", "username": "user-0001",
            "password": "pw-0001"})
        assert good["ok"] is True
        bad = runtime.run_workflow("frontend", {
            "action": "login", "username": "user-0001",
            "password": "wrong"})
        assert bad["ok"] is False

    def test_reserve_decrements_both_inventories(self, installed):
        runtime, app = installed
        result = runtime.run_workflow("frontend", {
            "action": "reserve", "user": "user-0000",
            "hotel": "hotel-0003", "flight": "flight-0004"})
        assert result["ok"] is True
        hotel = app.envs["reserve_hotel"].peek("inventory", "hotel-0003")
        flight = app.envs["reserve_flight"].peek("seats", "flight-0004")
        assert hotel == {"available": 4}
        assert flight == {"available": 4}

    def test_reserve_atomic_when_flight_sold_out(self, installed):
        runtime, app = installed
        # Exhaust flight-0000's 5 seats against distinct hotels.
        for i in range(5):
            result = runtime.run_workflow("frontend", {
                "action": "reserve", "user": "user-0000",
                "hotel": f"hotel-{i:04d}", "flight": "flight-0000"})
            assert result["ok"] is True
        result = runtime.run_workflow("frontend", {
            "action": "reserve", "user": "user-0000",
            "hotel": "hotel-0009", "flight": "flight-0000"})
        assert result["ok"] is False
        # The hotel must not have lost a room to the failed booking.
        hotel = app.envs["reserve_hotel"].peek("inventory", "hotel-0009")
        assert hotel == {"available": 5}

    def test_capacity_invariant_under_concurrent_reservations(self):
        runtime = beldi_runtime(seed=5)
        app = build_app("travel", seed=5, n_hotels=3, n_flights=3,
                        rooms_per_hotel=2, seats_per_flight=2)
        app.install(runtime)
        outcomes = []
        rand = RandomSource(8)
        for i in range(8):
            payload = {"action": "reserve", "user": "user-0000",
                       "hotel": f"hotel-{rand.randint(0, 2):04d}",
                       "flight": f"flight-{rand.randint(0, 2):04d}"}
            runtime.kernel.spawn(
                lambda p=payload: outcomes.append(
                    runtime.client_call("frontend", p)),
                delay=float(i) * 2.0)
        runtime.kernel.run()
        rooms, seats = app.capacity_remaining()
        committed = sum(1 for o in outcomes if o["ok"])
        assert rooms == 3 * 2 - committed
        assert seats == 3 * 2 - committed
        runtime.kernel.shutdown()

    def test_sample_requests_well_formed(self, installed):
        runtime, app = installed
        rand = RandomSource(3)
        actions = set()
        for _ in range(200):
            payload = app.sample_request(rand)
            actions.add(payload["action"])
        assert actions == {"search", "recommend", "login", "reserve"}

    def test_runs_on_baseline_runtime(self):
        runtime = BaselineRuntime(seed=2)
        app = build_app("travel", seed=2, n_hotels=5, n_flights=5)
        app.install(runtime)
        result = runtime.run_workflow(
            "frontend", {"action": "search", "cell": 1})
        assert "hotels" in result
        result = runtime.run_workflow("frontend", {
            "action": "reserve", "user": "user-0000",
            "hotel": "hotel-0001", "flight": "flight-0001"})
        assert result["ok"] is True
        runtime.kernel.shutdown()

    def test_nontransactional_configuration(self):
        runtime = beldi_runtime(seed=3)
        app = build_app("travel", seed=3, n_hotels=5, n_flights=5,
                        transactional=False)
        app.install(runtime)
        result = runtime.run_workflow("frontend", {
            "action": "reserve", "user": "user-0000",
            "hotel": "hotel-0001", "flight": "flight-0001"})
        assert result["ok"] is True
        assert app.envs["reserve_hotel"].peek(
            "inventory", "hotel-0001") == {"available": 999}
        runtime.kernel.shutdown()


class TestMovieApp:
    @pytest.fixture
    def installed(self):
        runtime = beldi_runtime(seed=7)
        app = build_app("movie", seed=7, n_movies=10, n_users=5)
        app.install(runtime)
        yield runtime, app
        runtime.kernel.shutdown()

    def test_registers_thirteen_ssfs(self, installed):
        runtime, app = installed
        assert len(app.envs) == app.ssf_count == 13

    def test_movie_page_has_all_sections(self, installed):
        runtime, app = installed
        result = runtime.run_workflow(
            "frontend", {"action": "page", "title": "Title 3"})
        assert result["ok"] is True
        page = result["page"]
        assert page["info"]["title"] == "Title 3"
        assert len(page["cast"]) == 3
        assert "Plot of Title 3" in page["plot"]
        assert page["reviews"] == []

    def test_compose_then_read_review(self, installed):
        runtime, app = installed
        composed = runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0002",
            "title": "Title 4", "text": "a   fine    movie",
            "rating": 9})
        assert composed["ok"] is True
        result = runtime.run_workflow(
            "frontend", {"action": "page", "title": "Title 4"})
        reviews = result["page"]["reviews"]
        assert len(reviews) == 1
        assert reviews[0]["rating"] == 9
        assert reviews[0]["text"] == "a fine movie"  # text SSF cleaned it

    def test_unknown_title_rejected(self, installed):
        runtime, app = installed
        result = runtime.run_workflow(
            "frontend", {"action": "page", "title": "No Such Movie"})
        assert result["ok"] is False

    def test_reviews_accumulate_per_movie(self, installed):
        runtime, app = installed
        for i in range(3):
            runtime.run_workflow("frontend", {
                "action": "compose", "username": f"user-000{i}",
                "title": "Title 1", "text": f"review {i}", "rating": i + 1})
        result = runtime.run_workflow(
            "frontend", {"action": "page", "title": "Title 1"})
        assert len(result["page"]["reviews"]) == 3

    def test_user_review_index_grows(self, installed):
        runtime, app = installed
        runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0001",
            "title": "Title 2", "text": "one", "rating": 5})
        runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0001",
            "title": "Title 3", "text": "two", "rating": 6})
        by_user = app.envs["user_review"].peek("by_user", "uid-0001")
        assert len(by_user) == 2

    def test_sample_requests_well_formed(self, installed):
        runtime, app = installed
        rand = RandomSource(4)
        actions = {app.sample_request(rand)["action"]
                   for _ in range(100)}
        assert actions == {"page", "compose", "login"}


class TestSocialApp:
    @pytest.fixture
    def installed(self):
        runtime = beldi_runtime(seed=8)
        app = build_app("social", seed=8, n_users=6,
                        followers_per_user=3)
        app.install(runtime)
        yield runtime, app
        runtime.kernel.shutdown()

    def test_registers_thirteen_ssfs(self, installed):
        runtime, app = installed
        assert len(app.envs) == app.ssf_count == 13

    def test_compose_post_processes_text(self, installed):
        runtime, app = installed
        result = runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0001",
            "text": "hi @user-0002 read https://x.io/a"})
        assert result["ok"] is True
        post = app.envs["post_storage"].peek("posts", result["post_id"])
        assert post["mentions"][0]["user_id"] == "uid-0002"
        assert len(post["urls"]) == 1
        assert post["urls"][0].startswith("http://sn.io/")
        assert "<url>" in post["text"]

    def test_post_lands_on_author_timeline(self, installed):
        runtime, app = installed
        result = runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0001",
            "text": "plain post"})
        timeline = runtime.run_workflow("frontend", {
            "action": "user", "user_id": "uid-0001"})
        assert [p["post_id"] for p in timeline] == [result["post_id"]]

    def test_fanout_reaches_followers(self, installed):
        runtime, app = installed
        result = runtime.run_workflow("frontend", {
            "action": "compose", "username": "user-0000",
            "text": "fan out!"})
        assert result["fanout"] == 3
        runtime.kernel.run()  # drain async home-timeline appends
        followers = app.envs["social_graph"].peek("followers", "uid-0000")
        for follower in followers:
            home = runtime.run_workflow("frontend", {
                "action": "home", "user_id": follower})
            assert result["post_id"] in [p["post_id"] for p in home]

    def test_follow_updates_graph(self, installed):
        runtime, app = installed
        before = app.envs["social_graph"].peek("followers", "uid-0003")
        runtime.run_workflow("frontend", {
            "action": "follow", "user_id": "uid-0001",
            "target": "uid-0003"})
        after = app.envs["social_graph"].peek("followers", "uid-0003")
        assert set(after) >= set(before)
        assert "uid-0001" in after

    def test_home_timeline_empty_for_unfollowed(self, installed):
        runtime, app = installed
        home = runtime.run_workflow("frontend", {
            "action": "home", "user_id": "uid-0005"})
        assert home == []

    def test_sample_requests_well_formed(self, installed):
        runtime, app = installed
        rand = RandomSource(5)
        actions = {app.sample_request(rand)["action"]
                   for _ in range(100)}
        assert actions == {"home", "user", "compose"}


class TestAppFactory:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            build_app("nope")

    def test_mixes_sum_to_one(self):
        for name in ("movie", "travel", "social"):
            app = build_app(name)
            assert sum(app.describe_mix().values()) == pytest.approx(1.0)
