"""Chaos integration: full apps under probabilistic crashes + collectors.

The strongest end-to-end claim in the paper — applications keep their
invariants when instances crash at arbitrary points and the intent
collector re-executes them — checked on the real case-study apps.
"""

import pytest

from repro.apps import build_app
from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import ProbabilisticCrash
from repro.platform.errors import (
    FunctionCrashed,
    FunctionTimeout,
    TooManyRequests,
)
from repro.sim import RandomSource


def chaotic_runtime(seed, p=0.03, max_crashes=10):
    runtime = BeldiRuntime(seed=seed, config=BeldiConfig(
        ic_restart_delay=100.0, gc_t=1e12, lock_retry_backoff=5.0,
        lock_retry_limit=1000, invoke_retry_backoff=10.0))
    runtime.platform.crash_policy = ProbabilisticCrash.build(
        p, RandomSource(seed, "chaos"), max_crashes=max_crashes)
    return runtime


def drive(runtime, entry, payloads, horizon=60_000.0):
    outcomes = []

    def client(payload):
        try:
            outcomes.append(runtime.client_call(entry, payload))
        except (FunctionCrashed, FunctionTimeout, TooManyRequests):
            outcomes.append("failed")

    runtime.start_collectors(ic_period=200.0, gc_period=1e11)
    for i, payload in enumerate(payloads):
        runtime.kernel.spawn(client, payload, delay=float(i) * 50.0)
    runtime.kernel.run(until=horizon)
    runtime.stop_collectors()
    runtime.kernel.run(until=horizon + 10_000.0)
    runtime.kernel.shutdown()
    return outcomes


class TestTravelChaos:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_capacity_conserved_under_crashes(self, seed):
        runtime = chaotic_runtime(seed)
        app = build_app("travel", seed=seed, n_hotels=4, n_flights=4,
                        rooms_per_hotel=3, seats_per_flight=3, n_users=5)
        app.install(runtime)
        rand = RandomSource(seed, "req")
        payloads = [{"action": "reserve", "user": "user-0000",
                     "hotel": f"hotel-{rand.randint(0, 3):04d}",
                     "flight": f"flight-{rand.randint(0, 3):04d}"}
                    for _ in range(10)]
        drive(runtime, "frontend", payloads)
        # Transactional invariant: rooms consumed == seats consumed ==
        # the number of durably recorded bookings — crashes or not.
        rooms, seats = app.capacity_remaining()
        consumed_rooms = 4 * 3 - rooms
        consumed_seats = 4 * 3 - seats
        assert consumed_rooms == consumed_seats
        bookings = app.envs["reserve"].store.scan(
            app.envs["reserve"].data_table("bookings")).items
        values = [r for r in bookings
                  if r.get("RowId") == "HEAD" and r.get("Value")
                  != "__beldi_missing__"]
        assert consumed_rooms >= 0
        # Every booking consumed exactly one room and one seat: bookings
        # recorded must not exceed capacity consumed (a crashed commit
        # finishes flushing before its intent completes).
        assert len(values) == consumed_rooms


class TestMovieChaos:
    def test_reviews_never_duplicated(self):
        runtime = chaotic_runtime(404, p=0.04)
        app = build_app("movie", seed=404, n_movies=5, n_users=5)
        app.install(runtime)
        payloads = [{"action": "compose", "username": "user-0001",
                     "title": "Title 2", "text": f"take {i}",
                     "rating": 5}
                    for i in range(6)]
        outcomes = drive(runtime, "frontend", payloads)
        # Every composed review appears exactly once in both indexes —
        # including reviews whose client saw a crash but whose intent
        # completed through the IC.
        by_movie = app.envs["movie_review"].peek("by_movie",
                                                 "movie-0002") or []
        by_user = app.envs["user_review"].peek("by_user",
                                               "uid-0001") or []
        assert len(by_movie) == len(set(by_movie))
        assert len(by_user) == len(set(by_user))
        assert set(by_movie) == set(by_user)
        # Each stored review body is distinct (no double-compose).
        reviews = [app.envs["review_storage"].peek("reviews", rid)
                   for rid in by_movie]
        texts = [r["text"] for r in reviews]
        assert len(texts) == len(set(texts))
        completed_ok = sum(1 for o in outcomes
                           if isinstance(o, dict) and o.get("ok"))
        assert len(by_movie) >= completed_ok


class TestSocialChaos:
    def test_fanout_exactly_once_under_crashes(self):
        runtime = chaotic_runtime(505, p=0.03)
        app = build_app("social", seed=505, n_users=6,
                        followers_per_user=3)
        app.install(runtime)
        payloads = [{"action": "compose", "username": "user-0000",
                     "text": f"chaos post {i}"} for i in range(4)]
        drive(runtime, "frontend", payloads, horizon=90_000.0)
        followers = app.envs["social_graph"].peek("followers",
                                                  "uid-0000")
        author_posts = set()
        timeline = app.envs["timeline_storage"].peek(
            "timelines", "user:uid-0000") or []
        author_posts.update(timeline)
        # No duplicate deliveries on any follower home timeline.
        for follower in followers:
            home = app.envs["timeline_storage"].peek(
                "timelines", f"home:{follower}") or []
            assert len(home) == len(set(home))
            # Everything delivered was genuinely authored.
            assert set(home) <= author_posts
        # And the author's own timeline has no duplicates either.
        assert len(timeline) == len(set(timeline))
