"""Concurrent-workload DST harness: N conflicting requests on one kernel.

Generalizes the single-request crash sweep (``test_crashpoint_sweep``) to
a *mix* of concurrent requests — two travel reservations contending on
the same hotel/flight rows plus a movie compose-review workflow — driven
deterministically on one sim kernel, with:

- a pluggable :class:`~repro.sim.schedule.Schedule` controlling the
  interleaving at every kernel blocking point (and, for exploring
  schedules, at the named ``interleave`` points near locks, 2PC rounds,
  ``migrate:*`` phases and failover promotion);
- crash injection per (request, crash point) via the same
  ``CrashOnce``/``CrashScript`` policies, namespaced across the two
  hosted platforms with :class:`~repro.platform.PrefixedPolicy`;
- seeded schedule exploration where every assertion failure carries a
  ``(seed, schedule-trace)`` pair that replays it deterministically
  (``DST-REPLAY seed=... trace=...`` — see docs/testing.md).

Two runtimes share one kernel and one store: the apps' SSF names collide
("frontend", "user", ...), so the movie app lives on its own
``ServerlessPlatform`` and its envs are namespaced with
``env_prefix="mv."`` on the shared store. Crash points recorded from the
movie platform are prefixed ``movie:`` so the combined crash space stays
unambiguous.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.apps.movie import MovieReviewApp
from repro.apps.travel import TravelReservationApp
from repro.core import BeldiConfig, BeldiRuntime
from repro.core import daal, intents
from repro.core.gc import make_garbage_collector
from repro.core.errors import DeadlineExceeded
from repro.kvstore.errors import ThrottledError, UnavailableError
from repro.kvstore.faults import FaultPolicy
from repro.platform import CrashPolicy, PrefixedPolicy
from repro.platform.errors import FunctionCrashed, TooManyRequests
from repro.sim import RandomSchedule, SimKernel
from repro.sim.schedule import format_failure

SEED = 11
MOVIE_SEED_OFFSET = 1
GC_T = 400.0
RECOVERY_SLICE = 500.0
RECOVERY_HORIZON = 60_000.0
MOVIE_PREFIX = "movie:"

# The deepest topology (mirrors the single-request elastic sweep):
# 2 shards, 3 replicas per shard, leader crashes on store ops, hot-shard
# elasticity with hair-trigger thresholds, all fast-path flags on.
DEEP_FLAGS = dict(tail_cache=True, batch_reads=True,
                  async_io=True, batch_log_writes=True,
                  elastic=True, elastic_check_every=2,
                  elastic_min_window=8, elastic_load_ratio=1.01,
                  elastic_max_moves=4, elastic_tolerance=0.0,
                  shards=2, replicas=3, leader_crash=0.02,
                  read_consistency="eventual", observability=True)

# Exploration topology: same sharding + elasticity (the conflict sites we
# perturb), but single replicas and no injected leader crashes so one run
# is cheap enough to afford hundreds of schedules per CI job.
LIGHT_FLAGS = dict(tail_cache=True, batch_reads=True,
                   async_io=True, batch_log_writes=True,
                   elastic=True, elastic_check_every=2,
                   elastic_min_window=8, elastic_load_ratio=1.01,
                   elastic_max_moves=4, elastic_tolerance=0.0,
                   shards=2, observability=True)


@dataclass
class Request:
    """One client request in the concurrent mix."""

    name: str
    runtime_key: str  # "travel" | "movie"
    entry: str
    payload: dict


# Conflicting by construction: both reservations hit hotel-0000 and
# flight-0001 (which land on different shards — pinned by the sweep
# test), so their wait-die transactions contend on the same lock rows
# while the movie workflow keeps unrelated traffic in flight.
REQUESTS = [
    Request("travel-a", "travel", "frontend",
            {"action": "reserve", "user": "user-0000",
             "hotel": "hotel-0000", "flight": "flight-0001"}),
    Request("travel-b", "travel", "frontend",
            {"action": "reserve", "user": "user-0001",
             "hotel": "hotel-0000", "flight": "flight-0001"}),
    Request("movie-c", "movie", "frontend",
            {"action": "compose", "username": "user-0000",
             "title": "Title 0", "text": "great movie  indeed",
             "rating": 8}),
]


class ScheduleFailure(AssertionError):
    """An invariant broke under an explored schedule; carries the
    ``(seed, trace)`` pair that replays it deterministically."""

    def __init__(self, seed: int, trace: list, original: BaseException):
        self.seed = seed
        self.trace = list(trace)
        self.original = original
        super().__init__(
            f"{original}\nreplay with: {format_failure(seed, self.trace)}")


@dataclass
class Harness:
    """Two runtimes (travel + movie) sharing one kernel and one store."""

    kernel: SimKernel
    travel: BeldiRuntime
    movie: BeldiRuntime
    travel_app: TravelReservationApp
    movie_app: MovieReviewApp
    results: dict = field(default_factory=dict)

    @property
    def runtimes(self) -> dict:
        return {"travel": self.travel, "movie": self.movie}

    @property
    def injected_crashes(self) -> int:
        return (self.travel.platform.stats.injected_crashes
                + self.movie.platform.stats.injected_crashes)

    def set_crash_policy(self, policy: CrashPolicy) -> None:
        """Install one policy across both platforms; points reaching it
        from the movie platform carry the ``movie:`` function prefix."""
        self.travel.platform.crash_policy = policy
        self.movie.platform.crash_policy = PrefixedPolicy(
            policy, MOVIE_PREFIX)

    def shutdown(self) -> None:
        self.kernel.shutdown()


def build_harness(flags: dict, schedule=None,
                  seed: int = SEED) -> Harness:
    flags = dict(flags)
    shards = flags.pop("shards", 1)
    replicas = flags.pop("replicas", 1)
    leader_crash = flags.pop("leader_crash", 0.0)
    read_consistency = flags.pop("read_consistency", None)
    # Nemesis timeline: installed once on the travel runtime's store,
    # which the movie runtime shares — both apps ride out the incident.
    timeline = flags.pop("timeline", None)
    kernel = SimKernel(seed=seed, schedule=schedule)
    config = BeldiConfig(ic_restart_delay=200.0, gc_t=GC_T,
                         lock_retry_backoff=5.0, lock_retry_limit=500,
                         **flags)
    store_faults = (FaultPolicy(leader_crash_probability=leader_crash)
                    if leader_crash else None)
    travel = BeldiRuntime(kernel=kernel, seed=seed, config=config,
                          shards=shards, replicas=replicas,
                          latency_scale=0.0,
                          read_consistency=read_consistency,
                          store_faults=store_faults)
    # The movie runtime rides on the travel runtime's store. Its own
    # elasticity stays off (one controller per store); its envs are
    # namespaced so same-named envs do not adopt each other's tables.
    movie_config = BeldiConfig(ic_restart_delay=200.0, gc_t=GC_T,
                               lock_retry_backoff=5.0,
                               lock_retry_limit=500,
                               **dict(flags, elastic=False))
    movie = BeldiRuntime(kernel=kernel, seed=seed + MOVIE_SEED_OFFSET,
                         config=movie_config, store=travel.store,
                         latency_scale=0.0,
                         read_consistency=read_consistency,
                         env_prefix="mv.")
    travel_app = TravelReservationApp(seed=seed, n_hotels=2, n_flights=2,
                                      rooms_per_hotel=2,
                                      seats_per_flight=2, n_users=2)
    travel_app.register(travel)
    travel_app.seed_data(travel)
    movie_app = MovieReviewApp(seed=seed, n_movies=2, n_users=1)
    movie_app.register(movie)
    movie_app.seed_data(movie)
    if timeline is not None:
        # Installed *after* seeding (operator setup precedes the
        # incident), so windows may start at t=0 and still let the
        # fixtures land.
        BeldiRuntime._install_timeline(travel.store, timeline)
        travel.fault_timeline = timeline
        movie.fault_timeline = timeline
    return Harness(kernel=kernel, travel=travel, movie=movie,
                   travel_app=travel_app, movie_app=movie_app)


# ---------------------------------------------------------------------------
# Driving
# ---------------------------------------------------------------------------

def run_requests(h: Harness, requests=REQUESTS,
                 horizon: float = RECOVERY_HORIZON) -> dict:
    """Issue every request concurrently; drive until all clients have a
    result and no intent is pending anywhere. Returns name -> result."""
    results: dict = {}

    def client(req: Request) -> None:
        runtime = h.runtimes[req.runtime_key]
        try:
            results[req.name] = runtime.client_call(req.entry,
                                                    dict(req.payload))
        except (FunctionCrashed, TooManyRequests, ThrottledError,
                UnavailableError, DeadlineExceeded):
            # Injected-environment errors surface here when the
            # resilience layer exhausts its budget mid-incident, or
            # raw from an overlap-scope fan-out (scope bodies are
            # atomic in virtual time — nowhere to sleep a backoff).
            # Either way the *client* sees a clean abort and the
            # pending intent is the collector's to finish —
            # check_effects still demands exactly-once.
            results[req.name] = "crashed"

    for runtime in h.runtimes.values():
        runtime.start_collectors(ic_period=100.0, gc_period=1e12)
    for req in requests:
        h.kernel.spawn(client, req, name=f"client-{req.name}")
    elapsed = 0.0
    while elapsed < horizon:
        elapsed += RECOVERY_SLICE
        h.kernel.run(until=elapsed)
        if len(results) < len(requests):
            continue
        try:
            if all(not intents.pending_intents(env)
                   for runtime in h.runtimes.values()
                   for env in runtime.envs.values()):
                break
        except (ThrottledError, UnavailableError):
            # The store is dark at this poll instant — the intents
            # can't be inspected, so by definition they aren't done.
            # Keep driving; the post-heal poll settles it.
            continue
    for runtime in h.runtimes.values():
        runtime.stop_collectors()
    h.kernel.run(until=elapsed + RECOVERY_SLICE)
    assert len(results) == len(requests), (
        f"clients never completed: have {sorted(results)}")
    for runtime in h.runtimes.values():
        assert all(not intents.pending_intents(env)
                   for env in runtime.envs.values()), (
            "unfinished intents survived recovery")
    h.results = results
    return results


def run_gc_passes(h: Harness, passes: int = 3) -> None:
    """Advance past the GC horizon and collect everything, repeatedly
    (stamp -> recycle/disconnect -> delete needs T between passes)."""
    handlers = [make_garbage_collector(runtime, env)
                for runtime in h.runtimes.values()
                for env in runtime.envs.values()]

    class _Ctx:
        request_id = "dst-gc"
        invocation_index = 0

        def crash_point(self, tag):
            pass

    for _ in range(passes):
        h.kernel.spawn(lambda: h.kernel.sleep(GC_T + 50.0))
        h.kernel.run()

        def one_round():
            for handler in handlers:
                handler(_Ctx(), {})

        h.kernel.spawn(one_round)
        h.kernel.run()


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------

def check_effects(h: Harness) -> None:
    """Exactly-once + atomicity across the whole concurrent mix."""
    results = h.results
    store = h.travel.store
    # Travel: each committed reservation moves one room, one seat and
    # one booking record together. Two requests contend on the same
    # keys; capacity admits both, wait-die may abort one (ok=False).
    rooms, seats = h.travel_app.capacity_remaining()
    rooms_used = 2 * 2 - rooms
    seats_used = 2 * 2 - seats
    env = h.travel_app.envs["reserve"]
    bookings = len(daal.all_keys(store, env.data_table("bookings")))
    assert rooms_used == seats_used == bookings, (
        f"partial reservation: rooms={rooms_used} seats={seats_used} "
        f"bookings={bookings}")
    travel_ok = sum(
        1 for name in ("travel-a", "travel-b")
        if isinstance(results.get(name), dict)
        and results[name].get("ok"))
    assert travel_ok <= bookings <= 2, (
        f"{travel_ok} confirmed clients but {bookings} bookings")
    # Movie: the review lands exactly once, with both indexes in step.
    storage_env = h.movie_app.envs["review_storage"]
    review_ids = daal.all_keys(store,
                               storage_env.data_table("reviews"))
    by_user = h.movie_app.envs["user_review"].peek("by_user",
                                                   "uid-0000") or []
    by_movie = h.movie_app.envs["movie_review"].peek("by_movie",
                                                     "movie-0000") or []
    assert len(review_ids) in (0, 1), f"duplicated review: {review_ids}"
    assert len(by_user) == len(set(by_user)) == len(review_ids)
    assert len(by_movie) == len(set(by_movie)) == len(review_ids)
    movie_result = results.get("movie-c")
    if isinstance(movie_result, dict) and movie_result.get("ok"):
        assert len(review_ids) == 1


def assert_store_clean(h: Harness) -> None:
    """No residue anywhere: logs, intents, locksets, shadows, locks —
    plus settled migrations and zero placement residue when elastic."""
    store = h.travel.store
    if h.travel.elasticity is not None:
        from repro.kvstore.rebalance import (MIGRATIONS_TABLE,
                                             placement_residue)
        for record in store.scan(MIGRATIONS_TABLE).items:
            assert record["Phase"] == "done", record
        assert placement_residue(store) == []
    for runtime in h.runtimes.values():
        for env in runtime.envs.values():
            assert store.item_count(env.intent_table) == 0, env.name
            assert store.item_count(env.read_log) == 0, env.name
            assert store.item_count(env.invoke_log) == 0, env.name
            assert store.item_count(env.lockset_table) == 0, env.name
            for short in env.table_names():
                table = env.data_table(short)
                assert store.item_count(env.shadow_table(short)) == 0, (
                    f"{table} shadow not collected")
                for key in daal.all_keys(store, table):
                    for row in store.query(table, key).items:
                        assert "LockOwner" not in row, (
                            f"leaked lock on {table}:{key}")
                        assert not row.get("RecentWrites"), (
                            f"leaked log entries on {table}:{key}")


def final_state(h: Harness) -> list:
    """Deterministic digest of every env table's full contents (used by
    the bit-identical determinism and replay assertions)."""
    store = h.travel.store
    state = []
    for rt_name in sorted(h.runtimes):
        runtime = h.runtimes[rt_name]
        for env_name in sorted(runtime.envs):
            env = runtime.envs[env_name]
            for short in env.table_names():
                table = env.data_table(short)
                for key in sorted(daal.all_keys(store, table), key=repr):
                    rows = store.query(table, key).items
                    state.append((table, repr(key), sorted(
                        repr(sorted(row.items(), key=lambda kv: kv[0]))
                        for row in rows)))
    return state


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------

def run_one(flags: dict, schedule=None,
            crash_policy: Optional[CrashPolicy] = None,
            capture_trace: bool = False) -> Harness:
    """One full concurrent run: requests, effects, GC, clean store.

    Returns the (shut-down) harness for further inspection; raises
    AssertionError when any invariant breaks.
    """
    h = build_harness(flags, schedule=schedule)
    if capture_trace:
        h.kernel.capture_trace = True
    try:
        if crash_policy is not None:
            h.set_crash_policy(crash_policy)
        run_requests(h)
        check_effects(h)
        run_gc_passes(h)
        assert_store_clean(h)
    finally:
        h.shutdown()
    return h


def explore(seeds, flags: dict = LIGHT_FLAGS,
            schedule_factory: Callable[[int], Any] = RandomSchedule,
            crash_policy_factory: Optional[
                Callable[[int], CrashPolicy]] = None) -> set:
    """Run the concurrent mix once per seed under fresh schedules.

    Returns the set of distinct schedule traces covered. On any
    invariant failure raises :class:`ScheduleFailure` whose message
    contains the replayable ``DST-REPLAY seed=... trace=...`` line (and,
    when ``$DST_FAILURE_FILE`` is set, writes the pair there as JSON for
    CI artifact upload).
    """
    traces: set = set()
    for seed in seeds:
        schedule = schedule_factory(seed)
        h = build_harness(flags, schedule=schedule)
        try:
            if crash_policy_factory is not None:
                h.set_crash_policy(crash_policy_factory(seed))
            run_requests(h)
            check_effects(h)
            run_gc_passes(h)
            assert_store_clean(h)
            traces.add(tuple(h.kernel.schedule_trace))
        except AssertionError as exc:
            trace = list(h.kernel.schedule_trace)
            _write_failure_artifact(seed, trace, exc, h)
            raise ScheduleFailure(seed, trace, exc) from exc
        finally:
            h.shutdown()
    return traces


def _write_failure_artifact(seed: int, trace: list,
                            exc: BaseException,
                            h: Optional[Harness] = None) -> None:
    path = os.environ.get("DST_FAILURE_FILE")
    if not path:
        return
    artifact = {"seed": seed, "trace": trace,
                "replay": format_failure(seed, trace),
                "error": str(exc)}
    timeline = (getattr(h.travel, "fault_timeline", None)
                if h is not None else None)
    if timeline is not None:
        artifact["fault_timeline"] = timeline.describe()
    obs = getattr(h.travel, "obs", None) if h is not None else None
    if obs is not None:
        # Attach the virtual-time trace and the unified metrics snapshot
        # of the failing run, so the artifact alone explains *what the
        # system was doing* when the invariant broke — load the
        # chrome_trace value into chrome://tracing / Perfetto.
        artifact["chrome_trace"] = obs.tracer.to_chrome()
        artifact["metrics"] = obs.snapshot(h.travel)
    try:
        with open(path, "w") as fh:
            json.dump(artifact, fh, indent=2)
    except (OSError, TypeError, ValueError):
        pass  # never mask the real failure with an artifact-write error
