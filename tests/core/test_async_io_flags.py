"""Pin: ``async_io=False, batch_log_writes=False`` is PR 3, bit-for-bit.

The golden numbers below — final virtual time and total request dollars
of a travel reservation + search, at calibrated latency, across the
three store topologies — were recorded at the PR 3 head (commit
``db3a02d``) *before* the async I/O layer landed. With both flags off
the new code must reproduce them to the last bit: the overlap scope
machinery, the ``batch_write`` primitive, and the batched claim/GC
paths must all be strictly dormant. The suite is fully deterministic
(virtual time, seeded streams), so exact float equality is the right
assertion — any drift means a default-on behavior leaked past its flag.
"""

from __future__ import annotations

import pytest

from repro.apps.travel import TravelReservationApp
from repro.core import BeldiConfig, BeldiRuntime

SEED = 5

#: (shards, replicas, read_consistency) -> (kernel.now, dollar_cost)
#: recorded at the PR 3 head with this exact workload and seed.
PR3_GOLDEN = {
    (1, 1, None): (122352.74798556019, 9.350000000000001e-05),
    (2, 1, None): (121918.72783863873, 9.425e-05),
    (2, 3, "eventual"): (121917.47419790366, 9.412500000000001e-05),
}
PR3_OP_COUNTS = {"cond_write": 56, "query": 17, "read": 13, "write": 12}


def _run(shards, replicas, read_consistency, async_io, batch_log_writes):
    runtime = BeldiRuntime(
        seed=SEED, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12, async_io=async_io,
                           batch_log_writes=batch_log_writes),
        shards=shards, replicas=replicas,
        read_consistency=read_consistency)
    app = TravelReservationApp(seed=SEED, n_hotels=2, n_flights=2,
                               rooms_per_hotel=2, seats_per_flight=2,
                               n_users=1)
    app.register(runtime)
    app.seed_data(runtime)
    reserved = runtime.run_workflow(
        "frontend", {"action": "reserve", "user": "user-0000",
                     "hotel": "hotel-0000", "flight": "flight-0001"})
    runtime.run_workflow("frontend", {"action": "search", "cell": 3})
    meter = runtime.store.metering
    counts = {op: rec.count for op, rec in meter.ops.items()}
    out = (runtime.kernel.now, meter.dollar_cost(), counts,
           app.capacity_remaining())
    runtime.kernel.shutdown()
    assert reserved.get("ok")
    return out


@pytest.mark.parametrize("topology", sorted(PR3_GOLDEN,
                                            key=lambda t: (t[0], t[1])))
def test_flags_off_is_pr3_bit_for_bit(topology):
    shards, replicas, consistency = topology
    now, dollars, counts, _ = _run(shards, replicas, consistency,
                                   async_io=False,
                                   batch_log_writes=False)
    golden_now, golden_dollars = PR3_GOLDEN[topology]
    assert now == golden_now
    assert dollars == golden_dollars
    # The op mix is PR 3's exactly: in particular, no batch_write ever.
    assert "batch_write" not in counts
    for op, count in PR3_OP_COUNTS.items():
        assert counts[op] == count, (op, counts)


def test_flags_on_same_effects_and_cost():
    """Flags on: same effects and billed dollars on this workload.

    The reserve path has single-chain commits and no parallel invokes,
    so the flags change nothing here — which is itself worth pinning:
    default-on must not perturb a workload with nothing to overlap.
    """
    for topology in PR3_GOLDEN:
        shards, replicas, consistency = topology
        now, dollars, _counts, capacity = _run(
            shards, replicas, consistency,
            async_io=True, batch_log_writes=True)
        golden_now, golden_dollars = PR3_GOLDEN[topology]
        assert now == golden_now
        assert dollars == golden_dollars
        assert capacity == (2 * 2 - 1, 2 * 2 - 1)
