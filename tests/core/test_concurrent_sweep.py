"""Concurrent-workload crash sweep at the deepest topology.

Three conflicting requests (two travel reservations on the same
hotel/flight rows + a movie compose-review) run concurrently on one
kernel over a shared 2-shard, 3-replica store with leader crashes and
hot-shard elasticity on. A recording run enumerates the combined crash
space across both hosted platforms; the sweep then re-runs the whole mix
once per recorded point, killing that one invocation there, and asserts
the full invariant triple — exactly-once effects, atomicity, clean store
and zero placement residue — after recovery + GC. See docs/testing.md.
"""

from __future__ import annotations

import pytest

import dst
from repro.platform import CrashOnce, CrashScript, RecordingPolicy
from repro.platform.crashes import PrefixedPolicy


def _record_points():
    h = dst.build_harness(dst.DEEP_FLAGS)
    recording = RecordingPolicy()
    h.set_crash_policy(recording)
    results = dst.run_requests(h)
    dst.check_effects(h)
    h.shutdown()
    points = recording.unique_points()
    assert len(points) > 200, "suspiciously small concurrent crash space"
    return points, results


def test_concurrent_mix_actually_conflicts():
    """The mix must contend: under FIFO both reservations reach the same
    hotel/flight rows and wait-die resolves the conflict — exactly one
    of the two commits (capacity admits both, the lock order does not).
    Pinned so a payload change cannot quietly de-conflict the sweep."""
    h = dst.build_harness(dst.DEEP_FLAGS)
    try:
        results = dst.run_requests(h)
        dst.check_effects(h)
        oks = sorted(bool(isinstance(results[name], dict)
                          and results[name].get("ok"))
                     for name in ("travel-a", "travel-b"))
        assert oks == [False, True], results
        assert results["movie-c"].get("ok"), results
    finally:
        h.shutdown()


def test_crash_space_covers_both_platforms_and_migrations():
    points, results = _record_points()
    functions = {fn for fn, _i, _t in points}
    assert any(fn.startswith(dst.MOVIE_PREFIX) for fn in functions)
    assert any(not fn.startswith(dst.MOVIE_PREFIX) for fn in functions)
    migration_points = sum(1 for _f, _i, tag in points
                           if tag.startswith("migrate:"))
    assert migration_points >= 3, (
        f"only {migration_points} migrate:* points recorded")
    txn_points = sum(1 for _f, _i, tag in points
                     if tag.startswith("txn:"))
    assert txn_points >= 3, f"only {txn_points} txn:* points recorded"


@pytest.mark.parametrize("group", ["travel", "movie"])
def test_concurrent_crash_sweep(group):
    """Every reachable crash point, once, under the full concurrent mix."""
    points, _ = _record_points()
    selected = [p for p in points
                if p[0].startswith(dst.MOVIE_PREFIX) == (group == "movie")]
    assert selected, f"no {group} points recorded"
    failures = []
    total_failovers = 0
    total_migrations = 0
    for function, index, tag in selected:
        h = dst.build_harness(dst.DEEP_FLAGS)
        h.set_crash_policy(CrashOnce(function, tag,
                                     invocation_index=index))
        try:
            dst.run_requests(h)
            dst.check_effects(h)
            assert h.injected_crashes == 1, (
                "crash point was not reached on the re-run")
            dst.run_gc_passes(h)
            dst.assert_store_clean(h)
        except AssertionError as exc:  # collect, report all at once
            failures.append((function, index, tag, str(exc)))
        finally:
            if hasattr(h.travel.store, "replication_stats"):
                total_failovers += (
                    h.travel.store.replication_stats.failovers)
            if h.travel.elasticity is not None:
                stats = h.travel.elasticity.migrator.stats
                total_migrations += (stats.migrations
                                     + stats.rolled_forward
                                     + stats.rolled_back)
            h.shutdown()
    assert not failures, (
        f"{len(failures)}/{len(selected)} crash points violated "
        f"exactly-once/cleanliness:\n" + "\n".join(
            f"  {f}#{i} @ {t}: {msg.splitlines()[0]}"
            for f, i, t, msg in failures[:10]))
    # The deep sweep is only meaningful if the topology actually bit:
    # leaders crashed and chains migrated across the swept re-runs.
    assert total_failovers > len(selected), (
        f"only {total_failovers} leader failovers across "
        f"{len(selected)} swept runs")
    assert total_migrations > len(selected), (
        f"only {total_migrations} migrations across "
        f"{len(selected)} swept runs")


def test_multi_request_crash_script():
    """Crash *two* requests in one run — one travel invocation and one
    movie invocation — and still demand the full invariant triple."""
    points, _ = _record_points()
    travel_pt = next((f, i, t) for f, i, t in points
                     if not f.startswith(dst.MOVIE_PREFIX)
                     and t == "body:done")
    movie_pt = next((f, i, t) for f, i, t in points
                    if f.startswith(dst.MOVIE_PREFIX)
                    and t == "body:done")
    script = CrashScript.of(
        (travel_pt[0], travel_pt[1], travel_pt[2]),
        (movie_pt[0], movie_pt[1], movie_pt[2]))
    h = dst.build_harness(dst.DEEP_FLAGS)
    h.set_crash_policy(script)
    try:
        dst.run_requests(h)
        dst.check_effects(h)
        assert h.injected_crashes == 2, (
            f"expected both scripted crashes, got {h.injected_crashes}")
        assert not script.remaining
        dst.run_gc_passes(h)
        dst.assert_store_clean(h)
    finally:
        h.shutdown()


def test_prefixed_policy_namespaces_functions():
    inner = RecordingPolicy()
    prefixed = PrefixedPolicy(inner, "movie:")
    prefixed.should_crash("frontend", 0, "enter")
    inner.should_crash("frontend", 0, "enter")
    assert inner.points == [("movie:frontend", 0, "enter"),
                            ("frontend", 0, "enter")]
