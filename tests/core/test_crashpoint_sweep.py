"""Exhaustive crash-point sweep (the paper's core claim, mechanized).

A recording run enumerates every crash point a workflow passes through
(``RecordingPolicy`` sees each ``ctx.crash_point(tag)``). The sweep then
re-runs the workflow once per recorded point, killing the instance at
exactly that point with ``CrashOnce``, letting the intent collector
recover, and asserting:

1. **exactly-once effects** — the workflow's externally visible writes
   happened exactly once (or, when the crash precedes the root intent,
   exactly zero times with the client told so);
2. **atomicity** — the travel reservation's hotel/flight decrements and
   booking record move together, never partially;
3. **a clean final store** — after the GC horizon passes, every log,
   intent, lock-set record, shadow chain, lock, and write-log entry is
   gone: crashes leave no permanent residue.

Swept over the travel-booking transaction and the movie-review workflow,
with the §4.4 fast-path flags both on and off — the cache layer must not
change crash semantics anywhere in the crash space.
"""

from __future__ import annotations

import pytest

from repro.apps.movie import MovieReviewApp
from repro.apps.travel import TravelReservationApp
from repro.core import BeldiConfig, BeldiRuntime
from repro.core import daal, intents
from repro.core.gc import make_garbage_collector
from repro.kvstore.faults import FaultPolicy
from repro.platform import CrashOnce, RecordingPolicy
from repro.platform.errors import FunctionCrashed, TooManyRequests

SEED = 5
GC_T = 400.0
RECOVERY_SLICE = 500.0
RECOVERY_HORIZON = 40_000.0

# ``shards``/``replicas``/``leader_crash``/``latency_scale`` are runtime
# knobs, not BeldiConfig flags. The sharded sweep proves the commit
# protocol's shadow writes stay atomic when they span shard boundaries;
# the replicated sweep additionally crashes shard *leaders* out from
# under the workflow (``leader_crash_probability`` on every leader-routed
# store op). Store latency stays at scale 0 (deterministic recording),
# but the replica groups' own latency model always runs at scale 1, so
# replication lag — and the failover's unacked-suffix replay — is
# nonzero anyway. ``read_consistency`` rides along to exercise the GC's
# eventual first-pass scan under crash + failover recovery.
#
# The legacy variants pin ``async_io``/``batch_log_writes`` (and, since
# the elasticity PR, ``elastic``) **off** so they keep sweeping exactly
# the PR 3 code paths; ``fastpath-on-async`` turns the I/O optimizations
# on at the deepest topology (sharded, replicated, leader crashes,
# eventual reads) — overlapped commit fan-outs, batched GC deletions and
# all — and must be just as exactly-once, atomic, and residue-free at
# every point.
#
# ``fastpath-on-elastic`` additionally turns hot-shard elasticity on
# with hair-trigger detector thresholds (any 16-op window over a 1.01
# load ratio), which forces live chain migrations *mid-request* — the
# recording run captures the migration protocol's own crash points
# (``migrate:start/prepared/committed/done``) inside whatever SSF
# invocation tripped the detector, and the sweep then crashes each of
# them. Recovery is the durable migration record: the GC (or the next
# attempt) rolls the move forward or back, and ``assert_store_clean``
# additionally demands zero placement residue and no mid-phase records.
FLAG_SETTINGS = {
    "fastpath-on": dict(tail_cache=True, batch_reads=True,
                        async_io=False, batch_log_writes=False,
                        elastic=False),
    "fastpath-off": dict(tail_cache=False, batch_reads=False,
                         async_io=False, batch_log_writes=False,
                         elastic=False),
    "fastpath-on-shards2": dict(tail_cache=True, batch_reads=True,
                                async_io=False, batch_log_writes=False,
                                elastic=False, shards=2),
    "fastpath-on-repl3": dict(tail_cache=True, batch_reads=True,
                              async_io=False, batch_log_writes=False,
                              elastic=False,
                              shards=2, replicas=3, leader_crash=0.02,
                              read_consistency="eventual"),
    "fastpath-on-async": dict(tail_cache=True, batch_reads=True,
                              async_io=True, batch_log_writes=True,
                              elastic=False,
                              shards=2, replicas=3, leader_crash=0.02,
                              read_consistency="eventual"),
    "fastpath-on-elastic": dict(tail_cache=True, batch_reads=True,
                                async_io=True, batch_log_writes=True,
                                elastic=True, elastic_check_every=2,
                                elastic_min_window=8,
                                elastic_load_ratio=1.01,
                                elastic_max_moves=4,
                                elastic_tolerance=0.0,
                                shards=2, replicas=3, leader_crash=0.02,
                                read_consistency="eventual"),
}
UNSHARDED_SETTINGS = [name for name, flags in FLAG_SETTINGS.items()
                      if "shards" not in flags]


def _runtime(flags: dict) -> BeldiRuntime:
    flags = dict(flags)
    shards = flags.pop("shards", 1)
    replicas = flags.pop("replicas", 1)
    leader_crash = flags.pop("leader_crash", 0.0)
    latency_scale = flags.pop("latency_scale", 0.0)
    read_consistency = flags.pop("read_consistency", None)
    config = BeldiConfig(ic_restart_delay=200.0, gc_t=GC_T,
                         lock_retry_backoff=5.0, lock_retry_limit=500,
                         **flags)
    store_faults = (FaultPolicy(leader_crash_probability=leader_crash)
                    if leader_crash else None)
    return BeldiRuntime(seed=SEED, config=config, shards=shards,
                        replicas=replicas, latency_scale=latency_scale,
                        read_consistency=read_consistency,
                        store_faults=store_faults)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

class TravelReserveScenario:
    """One cross-SSF reservation transaction (hotel + flight + booking)."""

    entry = "frontend"
    # flight-0001 (not -0000) so that at shards=2 the hotel and flight
    # rows live on different shards — asserted by
    # test_sharded_sweep_actually_crosses_shards below.
    payload = {"action": "reserve", "user": "user-0000",
               "hotel": "hotel-0000", "flight": "flight-0001"}

    def build(self, flags: dict):
        runtime = _runtime(flags)
        app = TravelReservationApp(seed=SEED, n_hotels=2, n_flights=2,
                                   rooms_per_hotel=2, seats_per_flight=2,
                                   n_users=1)
        app.register(runtime)
        app.seed_data(runtime)
        return runtime, app

    def check_effects(self, runtime, app, client_ok: bool) -> None:
        rooms, seats = app.capacity_remaining()
        rooms_used = 2 * 2 - rooms
        seats_used = 2 * 2 - seats
        env = app.envs["reserve"]
        bookings = len(daal.all_keys(env.store,
                                     env.data_table("bookings")))
        # Atomicity: the three effects move together...
        assert rooms_used == seats_used == bookings, (
            f"partial reservation: rooms={rooms_used} "
            f"seats={seats_used} bookings={bookings}")
        # ...exactly once or not at all; and a success reply to the
        # client implies the effects landed.
        assert bookings in (0, 1)
        if client_ok:
            assert bookings == 1


class MovieComposeScenario:
    """The compose-review workflow: store + two index appends."""

    entry = "frontend"
    payload = {"action": "compose", "username": "user-0000",
               "title": "Title 0", "text": "great movie  indeed",
               "rating": 8}

    def build(self, flags: dict):
        runtime = _runtime(flags)
        app = MovieReviewApp(seed=SEED, n_movies=2, n_users=1)
        app.register(runtime)
        app.seed_data(runtime)
        return runtime, app

    def check_effects(self, runtime, app, client_ok: bool) -> None:
        storage_env = app.envs["review_storage"]
        review_ids = daal.all_keys(storage_env.store,
                                   storage_env.data_table("reviews"))
        by_user = app.envs["user_review"].peek("by_user",
                                               "uid-0000") or []
        by_movie = app.envs["movie_review"].peek("by_movie",
                                                 "movie-0000") or []
        assert len(review_ids) in (0, 1)
        # Exactly-once indexing: no duplicate appends ever.
        assert len(by_user) == len(set(by_user)) == len(review_ids)
        assert len(by_movie) == len(set(by_movie)) == len(review_ids)
        if review_ids:
            assert by_user == review_ids and by_movie == review_ids
        if client_ok:
            assert len(review_ids) == 1


SCENARIOS = {
    "travel-reserve": TravelReserveScenario(),
    "movie-compose": MovieComposeScenario(),
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def record_crash_space(scenario, flags: dict):
    """Crash-free run under a recording policy -> the full crash space."""
    runtime, app = scenario.build(flags)
    recording = RecordingPolicy()
    runtime.platform.crash_policy = recording
    result = runtime.run_workflow(scenario.entry, dict(scenario.payload))
    runtime.kernel.shutdown()
    points = recording.unique_points()
    assert len(points) > 40, "suspiciously small crash space"
    return points, result


def run_until_recovered(runtime, scenario) -> bool:
    """Issue the client request; drive until the client finished and no
    intent is pending. Returns whether the client saw a success."""
    box = {}

    def client():
        try:
            box["result"] = runtime.client_call(scenario.entry,
                                                dict(scenario.payload))
        except (FunctionCrashed, TooManyRequests):
            box["result"] = "crashed"

    runtime.start_collectors(ic_period=100.0, gc_period=1e12)
    runtime.kernel.spawn(client)
    deadline = RECOVERY_HORIZON
    elapsed = 0.0
    while elapsed < deadline:
        elapsed += RECOVERY_SLICE
        runtime.kernel.run(until=elapsed)
        if "result" not in box:
            continue
        if all(not intents.pending_intents(env)
               for env in runtime.envs.values()):
            break
    runtime.stop_collectors()
    runtime.kernel.run(until=elapsed + RECOVERY_SLICE)
    assert "result" in box, "client never completed"
    assert all(not intents.pending_intents(env)
               for env in runtime.envs.values()), (
        "unfinished intents survived recovery")
    return isinstance(box["result"], dict) and bool(
        box["result"].get("ok"))


def run_gc_passes(runtime, passes: int = 3) -> None:
    """Advance past the GC horizon and collect everything, repeatedly
    (stamp -> recycle/disconnect -> delete needs T between passes)."""
    handlers = [make_garbage_collector(runtime, env)
                for env in runtime.envs.values()]

    class _Ctx:
        request_id = "sweep-gc"
        invocation_index = 0

        def crash_point(self, tag):
            pass

    for _ in range(passes):
        runtime.kernel.spawn(
            lambda: runtime.kernel.sleep(GC_T + 50.0))
        runtime.kernel.run()

        def one_round():
            for handler in handlers:
                handler(_Ctx(), {})

        runtime.kernel.spawn(one_round)
        runtime.kernel.run()


def assert_store_clean(runtime) -> None:
    """No residue: logs, intents, locksets, shadows, locks, entries."""
    store = runtime.store
    if runtime.elasticity is not None:
        from repro.kvstore.rebalance import (MIGRATIONS_TABLE,
                                             placement_residue)
        # Every migration record settled (rolled forward or back) and
        # every row sits exactly where the forward-aware ring routes it.
        for record in store.scan(MIGRATIONS_TABLE).items:
            assert record["Phase"] == "done", record
        assert placement_residue(store) == []
    for env in runtime.envs.values():
        assert store.item_count(env.intent_table) == 0, env.name
        assert store.item_count(env.read_log) == 0, env.name
        assert store.item_count(env.invoke_log) == 0, env.name
        assert store.item_count(env.lockset_table) == 0, env.name
        for short in env.table_names():
            table = env.data_table(short)
            assert store.item_count(env.shadow_table(short)) == 0, (
                f"{table} shadow not collected")
            for key in daal.all_keys(store, table):
                for row in store.query(table, key).items:
                    assert "LockOwner" not in row, (
                        f"leaked lock on {table}:{key}")
                    assert not row.get("RecentWrites"), (
                        f"leaked log entries on {table}:{key}")


def sweep(scenario_name: str, flags_name: str) -> None:
    scenario = SCENARIOS[scenario_name]
    flags = FLAG_SETTINGS[flags_name]
    points, baseline_result = record_crash_space(scenario, flags)
    assert baseline_result.get("ok"), "crash-free run must succeed"
    failures = []
    total_failovers = 0
    total_migrations = 0
    migration_points = sum(1 for _f, _i, tag in points
                           if tag.startswith("migrate:"))
    for function, index, tag in points:
        runtime, app = scenario.build(flags)
        runtime.platform.crash_policy = CrashOnce(
            function, tag, invocation_index=index)
        try:
            client_ok = run_until_recovered(runtime, scenario)
            scenario.check_effects(runtime, app, client_ok)
            assert runtime.platform.stats.injected_crashes == 1, (
                "crash point was not reached on the re-run")
            run_gc_passes(runtime)
            assert_store_clean(runtime)
        except AssertionError as exc:  # collect, report all at once
            failures.append((function, index, tag, str(exc)))
        finally:
            if hasattr(runtime.store, "replication_stats"):
                total_failovers += (
                    runtime.store.replication_stats.failovers)
            if runtime.elasticity is not None:
                stats = runtime.elasticity.migrator.stats
                total_migrations += (stats.migrations
                                     + stats.rolled_forward
                                     + stats.rolled_back)
            runtime.kernel.shutdown()
    assert not failures, (
        f"{len(failures)}/{len(points)} crash points violated "
        f"exactly-once/cleanliness:\n" + "\n".join(
            f"  {f}#{i} @ {t}: {msg.splitlines()[0]}"
            for f, i, t, msg in failures[:10]))
    if flags.get("replicas", 1) > 1 and flags.get("leader_crash"):
        # The replicated sweep is only meaningful if leaders actually
        # crashed mid-workflow — across the whole sweep, many must.
        assert total_failovers > len(points), (
            f"only {total_failovers} leader failovers across "
            f"{len(points)} swept runs")
    if flags.get("elastic"):
        # The elastic sweep is only meaningful if chains actually moved
        # mid-request — the recording run must have reached the
        # migration protocol's own crash points, and the swept re-runs
        # must have performed (or recovered) migrations throughout.
        assert migration_points >= 3, (
            f"only {migration_points} migrate:* crash points recorded")
        assert total_migrations > len(points), (
            f"only {total_migrations} migrations across "
            f"{len(points)} swept runs")


@pytest.mark.parametrize("flags_name", sorted(FLAG_SETTINGS))
def test_travel_reserve_crash_sweep(flags_name):
    sweep("travel-reserve", flags_name)


@pytest.mark.parametrize("flags_name", sorted(UNSHARDED_SETTINGS))
def test_movie_compose_crash_sweep(flags_name):
    sweep("movie-compose", flags_name)


def test_sharded_sweep_actually_crosses_shards():
    """The shards=2 sweep is only meaningful if the reservation's three
    effects (hotel inventory, flight seats, booking record) do not all
    co-locate on one shard — pin that property so a routing change
    cannot silently turn the sharded sweep into a single-shard one."""
    scenario = SCENARIOS["travel-reserve"]
    runtime, app = scenario.build(FLAG_SETTINGS["fastpath-on-shards2"])
    store = runtime.store
    touched = {
        store.shard_for(app.envs["reserve_hotel"].data_table("inventory"),
                        scenario.payload["hotel"]),
        store.shard_for(app.envs["reserve_flight"].data_table("seats"),
                        scenario.payload["flight"]),
    }
    runtime.kernel.shutdown()
    assert len(touched) > 1, (
        "hotel and flight rows landed on one shard; pick other keys")
