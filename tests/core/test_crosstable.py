"""The cross-table-transaction logging variant (Figs. 13/16 ablation)."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import FunctionCrashed
from repro.platform.crashes import CrashOnce


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=17, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=500.0))
    yield rt
    rt.kernel.shutdown()


class TestCrossTableBasics:
    def test_read_write_roundtrip(self, runtime):
        def handler(ctx, payload):
            ctx.write("kv", "k", payload)
            return ctx.read("kv", "k")

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        assert runtime.run_workflow("ct", "hello") == "hello"
        assert ssf.env.peek("kv", "k") == "hello"

    def test_data_stays_single_row(self, runtime):
        def handler(ctx, payload):
            for i in range(50):
                ctx.write("kv", "hot", i)
            return ctx.read("kv", "hot")

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        assert runtime.run_workflow("ct") == 49
        # No chain: exactly one row regardless of write count.
        assert ssf.env.store.item_count(ssf.env.data_table("kv")) == 1
        # But the write log grew one entry per write.
        assert ssf.env.store.item_count(ssf.env.write_log) == 50

    def test_cond_write_outcomes(self, runtime):
        from repro.kvstore import Eq
        from repro.kvstore.expressions import path

        def handler(ctx, payload):
            ctx.write("kv", "slot", {"s": "open"})
            won = ctx.cond_write("kv", "slot", {"s": "mine"},
                                 Eq(path("Value", "s"), "open"))
            lost = ctx.cond_write("kv", "slot", {"s": "theirs"},
                                  Eq(path("Value", "s"), "open"))
            return [won, lost]

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        assert runtime.run_workflow("ct") == [True, False]
        assert ssf.env.peek("kv", "slot") == {"s": "mine"}


class TestCrossTableExactlyOnce:
    def test_crash_recovery_counter(self, runtime):
        runtime.platform.crash_policy = CrashOnce("ct",
                                                  tag="write:1:done")

        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("ct", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=100.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=3_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=5_000.0)
        assert ssf.env.peek("kv", "n") == 1  # exactly once

    def test_duplicate_instance_writes_once(self, runtime):
        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")

        def client():
            for _ in range(3):
                runtime.platform.sync_invoke(
                    "ct", {"kind": "call", "instance_id": "dup-1",
                           "input": None})

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        assert ssf.env.peek("kv", "n") == 1

    def test_gc_prunes_write_log(self, runtime):
        from tests.core.test_gc import advance, run_gc_now

        def handler(ctx, payload):
            ctx.write("kv", "k", payload)
            return "ok"

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        runtime.run_workflow("ct", 1)
        env = ssf.env
        assert env.store.item_count(env.write_log) == 1
        run_gc_now(runtime, env)
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)
        assert env.store.item_count(env.write_log) == 0
        assert env.peek("kv", "k") == 1

    def test_invocation_shared_with_daal_path(self, runtime):
        """Cross-table SSFs interoperate with DAAL SSFs via invoke."""
        runtime.register_ssf("leaf", lambda ctx, p: p * 2)

        def handler(ctx, payload):
            doubled = ctx.sync_invoke("leaf", payload)
            ctx.write("kv", "result", doubled)
            return doubled

        ssf = runtime.register_ssf("ct", handler, tables=["kv"],
                                   storage_mode="crosstable")
        assert runtime.run_workflow("ct", 21) == 42
        assert ssf.env.peek("kv", "result") == 42


class TestBaselineRuntime:
    def test_baseline_runs_same_handler_shape(self):
        from repro.core import BaselineRuntime
        rt = BaselineRuntime(seed=3)

        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        ssf = rt.register_ssf("counter", handler, tables=["kv"])
        assert rt.run_workflow("counter") == 1
        assert rt.run_workflow("counter") == 2
        assert ssf.env.peek("kv", "n") == 2
        rt.kernel.shutdown()

    def test_baseline_has_no_crash_recovery(self):
        from repro.core import BaselineRuntime
        rt = BaselineRuntime(seed=3)
        rt.platform.crash_policy = CrashOnce("counter", tag="mid")

        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            ctx.crash_point("mid")
            ctx.write("kv", "other", "never")
            return "ok"

        ssf = rt.register_ssf("counter", handler, tables=["kv"])
        outcome = {}

        def client():
            try:
                rt.client_call("counter", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        rt.kernel.spawn(client)
        rt.kernel.run(until=10_000.0)
        # Partial state: first write landed, second never did, and
        # nothing ever repairs it — the paper's baseline behaviour.
        assert outcome.get("crashed") is True
        assert ssf.env.peek("kv", "n") == 1
        assert ssf.env.peek("kv", "other") is None
        rt.kernel.shutdown()

    def test_baseline_transactions_are_not_isolated(self):
        """The control for §7.4: the baseline travel app is inconsistent."""
        from repro.core import BaselineRuntime
        rt = BaselineRuntime(seed=3, latency_scale=0.0)

        def transfer(ctx, payload):
            with ctx.transaction():
                a = ctx.read("kv", "a")
                ctx.sleep(50.0)  # interleaving window
                ctx.write("kv", "a", a - 10)
                b = ctx.read("kv", "b")
                ctx.write("kv", "b", b + 10)
            return "done"

        ssf = rt.register_ssf("transfer", transfer, tables=["kv"])
        ssf.env.seed("kv", "a", 100)
        ssf.env.seed("kv", "b", 0)
        for i in range(2):
            rt.kernel.spawn(lambda: rt.client_call("transfer", None))
        rt.kernel.run()
        # One decrement was lost: money not conserved.
        assert ssf.env.peek("kv", "a") == 90
        assert ssf.env.peek("kv", "b") == 20
        rt.kernel.shutdown()
