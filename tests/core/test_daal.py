"""Unit tests for the linked DAAL structure and traversal."""

import pytest

from repro.core import daal
from repro.kvstore import KVStore, Set


@pytest.fixture
def store():
    s = KVStore()
    s.create_table("t", hash_key="Key", range_key="RowId")
    return s


def grow_chain(store, key, rows, capacity=4):
    """Manually build a chain of ``rows`` rows with full logs."""
    daal.ensure_head(store, "t", key, value="v0")
    prev_id = daal.HEAD_ROW_ID
    for i in range(1, rows):
        # Fill the previous row's log to capacity.
        writes = {f"inst{i}#{j}": True for j in range(capacity)}
        store.update("t", (key, prev_id),
                     [Set("RecentWrites", writes),
                      Set("LogSize", capacity)])
        prev = store.get("t", (key, prev_id))
        prev_id = daal.append_row(store, "t", key, prev, f"r{i}")
        store.update("t", (key, prev_id), [Set("Value", f"v{i}")])
    return prev_id


class TestEnsureHead:
    def test_creates_head_once(self, store):
        daal.ensure_head(store, "t", "k", value=1)
        daal.ensure_head(store, "t", "k", value=2)  # loses the race
        row = store.get("t", ("k", daal.HEAD_ROW_ID))
        assert row["Value"] == 1
        assert row["LogSize"] == 0

    def test_extra_attrs_on_head(self, store):
        daal.ensure_head(store, "t", "k", extra_attrs={"TxnId": "tx1"})
        assert store.get("t", ("k", daal.HEAD_ROW_ID))["TxnId"] == "tx1"


class TestSkeleton:
    def test_missing_chain(self, store):
        skeleton = daal.load_skeleton(store, "t", "nope")
        assert not skeleton.exists
        assert skeleton.tail is None

    def test_single_row_chain(self, store):
        daal.ensure_head(store, "t", "k")
        skeleton = daal.load_skeleton(store, "t", "k")
        assert skeleton.reachable == [daal.HEAD_ROW_ID]
        assert skeleton.tail == daal.HEAD_ROW_ID

    def test_multi_row_chain_order(self, store):
        tail = grow_chain(store, "k", rows=4)
        skeleton = daal.load_skeleton(store, "t", "k")
        assert skeleton.reachable[0] == daal.HEAD_ROW_ID
        assert skeleton.tail == tail
        assert len(skeleton.reachable) == 4

    def test_orphan_rows_ignored(self, store):
        daal.ensure_head(store, "t", "k")
        store.put("t", {"Key": "k", "RowId": "orphan", "Value": "x",
                        "RecentWrites": {}, "LogSize": 0})
        skeleton = daal.load_skeleton(store, "t", "k")
        assert skeleton.reachable == [daal.HEAD_ROW_ID]
        assert skeleton.orphans == ["orphan"]

    def test_probe_finds_logged_outcomes(self, store):
        daal.ensure_head(store, "t", "k")
        store.update("t", ("k", daal.HEAD_ROW_ID),
                     [Set("RecentWrites", {"i#0": False})])
        skeleton = daal.load_skeleton(store, "t", "k", probe_log_key="i#0")
        assert skeleton.log_hits == {daal.HEAD_ROW_ID: False}

    def test_probe_misses_other_keys(self, store):
        daal.ensure_head(store, "t", "k")
        store.update("t", ("k", daal.HEAD_ROW_ID),
                     [Set("RecentWrites", {"i#0": True})])
        skeleton = daal.load_skeleton(store, "t", "k", probe_log_key="i#9")
        assert skeleton.log_hits == {}


class TestTailValue:
    def test_missing(self, store):
        assert daal.tail_value(store, "t", "nope") == daal.MISSING

    def test_single_row(self, store):
        daal.ensure_head(store, "t", "k", value=42)
        assert daal.tail_value(store, "t", "k") == 42

    def test_tail_holds_latest(self, store):
        grow_chain(store, "k", rows=3)
        assert daal.tail_value(store, "t", "k") == "v2"


class TestAppendRow:
    def test_append_extends_chain(self, store):
        daal.ensure_head(store, "t", "k", value="v")
        head = store.get("t", ("k", daal.HEAD_ROW_ID))
        new_id = daal.append_row(store, "t", "k", head, "r1")
        assert new_id == "r1"
        assert store.get("t", ("k", daal.HEAD_ROW_ID))["NextRow"] == "r1"
        row = store.get("t", ("k", "r1"))
        assert row["Value"] == "v"  # value carried forward
        assert row["LogSize"] == 0

    def test_append_race_loser_adopts_winner(self, store):
        daal.ensure_head(store, "t", "k", value="v")
        head = store.get("t", ("k", daal.HEAD_ROW_ID))
        winner = daal.append_row(store, "t", "k", head, "rA")
        # Second appender holds a stale view of the head.
        loser = daal.append_row(store, "t", "k", head, "rB")
        assert winner == "rA"
        assert loser == "rA"  # adopted the winner
        skeleton = daal.load_skeleton(store, "t", "k")
        assert skeleton.reachable == [daal.HEAD_ROW_ID, "rA"]
        assert "rB" in skeleton.orphans

    def test_append_carries_lock_owner(self, store):
        daal.ensure_head(store, "t", "k", value="v")
        store.update("t", ("k", daal.HEAD_ROW_ID),
                     [Set("LockOwner", {"Id": "tx9", "Ts": 5.0})])
        head = store.get("t", ("k", daal.HEAD_ROW_ID))
        daal.append_row(store, "t", "k", head, "r1")
        assert store.get("t", ("k", "r1"))["LockOwner"]["Id"] == "tx9"


class TestFlushAndRelease:
    def _lock(self, store, key, txn_id):
        daal.ensure_head(store, "t", key, value={"n": 0})
        store.update("t", (key, daal.HEAD_ROW_ID),
                     [Set("LockOwner", {"Id": txn_id, "Ts": 1.0})])

    def test_flush_installs_value_and_unlocks(self, store):
        self._lock(store, "k", "tx1")
        assert daal.flush_value(store, "t", "k", {"n": 9}, "tx1")
        row = store.get("t", ("k", daal.HEAD_ROW_ID))
        assert row["Value"] == {"n": 9}
        assert "LockOwner" not in row

    def test_flush_is_idempotent(self, store):
        self._lock(store, "k", "tx1")
        assert daal.flush_value(store, "t", "k", {"n": 9}, "tx1")
        assert not daal.flush_value(store, "t", "k", {"n": 9}, "tx1")
        assert daal.tail_value(store, "t", "k") == {"n": 9}

    def test_flush_respects_foreign_lock(self, store):
        self._lock(store, "k", "tx-other")
        assert not daal.flush_value(store, "t", "k", {"n": 9}, "tx1")
        assert daal.tail_value(store, "t", "k") == {"n": 0}

    def test_release_lock(self, store):
        self._lock(store, "k", "tx1")
        assert daal.release_lock(store, "t", "k", "tx1")
        assert "LockOwner" not in store.get("t", ("k", daal.HEAD_ROW_ID))

    def test_release_is_idempotent(self, store):
        self._lock(store, "k", "tx1")
        assert daal.release_lock(store, "t", "k", "tx1")
        assert not daal.release_lock(store, "t", "k", "tx1")


class TestAllKeys:
    def test_lists_distinct_keys(self, store):
        daal.ensure_head(store, "t", "a")
        daal.ensure_head(store, "t", "b")
        grow_chain(store, "c", rows=3)
        assert sorted(daal.all_keys(store, "t")) == ["a", "b", "c"]

    def test_chain_length(self, store):
        grow_chain(store, "k", rows=5)
        assert daal.chain_length(store, "t", "k") == 5
