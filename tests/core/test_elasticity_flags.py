"""Pin: elasticity off — and *idle* elasticity — is PR 4, bit-for-bit.

The golden numbers below — final virtual time and total request dollars
of a travel reservation + search at calibrated latency, all PR 4 flags
on — were recorded at the PR 4 head (commit ``88875b7``) *before* the
elasticity layer landed. Two things must reproduce them to the last bit:

- ``elastic=False``: every elasticity hook is dormant (no controller,
  no heat books, no migration table);
- ``elastic=True`` on this workload: the detector exists and counts,
  but the workload sits far below ``elastic_min_window``, and below its
  trigger the controller is pure python arithmetic — no randomness, no
  latency, no store traffic. Default-on must not perturb a workload
  with nothing to rebalance.

The suite is fully deterministic (virtual time, seeded streams), so
exact float equality is the right assertion — any drift means an
elasticity behavior leaked past its trigger.
"""

from __future__ import annotations

import pytest

from repro.apps.travel import TravelReservationApp
from repro.core import BeldiConfig, BeldiRuntime

SEED = 5

#: (shards, replicas, read_consistency) -> (kernel.now, dollar_cost)
#: recorded at the PR 4 head with this exact workload and seed.
PR4_GOLDEN = {
    (2, 1, None): (121918.72783863873, 9.425e-05),
    (4, 1, None): (121937.1346635691, 9.575000000000001e-05),
    (2, 3, "eventual"): (121917.47419790366, 9.412500000000001e-05),
}


def _run(shards, replicas, read_consistency, elastic):
    runtime = BeldiRuntime(
        seed=SEED, latency_scale=1.0,
        config=BeldiConfig(gc_t=1e12),
        shards=shards, replicas=replicas,
        read_consistency=read_consistency, elastic=elastic)
    app = TravelReservationApp(seed=SEED, n_hotels=2, n_flights=2,
                               rooms_per_hotel=2, seats_per_flight=2,
                               n_users=1)
    app.register(runtime)
    app.seed_data(runtime)
    reserved = runtime.run_workflow(
        "frontend", {"action": "reserve", "user": "user-0000",
                     "hotel": "hotel-0000", "flight": "flight-0001"})
    runtime.run_workflow("frontend", {"action": "search", "cell": 3})
    meter = runtime.store.metering
    out = (runtime.kernel.now, meter.dollar_cost(), runtime)
    assert reserved.get("ok")
    return out


@pytest.mark.parametrize("topology", sorted(PR4_GOLDEN,
                                            key=lambda t: (t[0], t[1])))
def test_elastic_off_is_pr4_bit_for_bit(topology):
    shards, replicas, consistency = topology
    now, dollars, runtime = _run(shards, replicas, consistency,
                                 elastic=False)
    golden_now, golden_dollars = PR4_GOLDEN[topology]
    assert now == golden_now
    assert dollars == golden_dollars
    # Off means *off*: no controller, no heat books, no meta table.
    assert runtime.elasticity is None
    assert runtime.store.heat is None
    assert "__migrations__" not in runtime.store.table_names()
    runtime.kernel.shutdown()


@pytest.mark.parametrize("topology", sorted(PR4_GOLDEN,
                                            key=lambda t: (t[0], t[1])))
def test_elastic_on_below_trigger_is_pr4_bit_for_bit(topology):
    shards, replicas, consistency = topology
    now, dollars, runtime = _run(shards, replicas, consistency,
                                 elastic=True)
    golden_now, golden_dollars = PR4_GOLDEN[topology]
    assert now == golden_now
    assert dollars == golden_dollars
    # The machinery is armed... but armed-and-idle changed nothing.
    assert runtime.elasticity is not None
    assert runtime.store.heat  # heat tracking did run
    assert runtime.elasticity.rebalances == 0
    assert runtime.elasticity.migrator.stats.migrations == 0
    assert runtime.store.ring.forwards == {}
    runtime.kernel.shutdown()


def test_single_shard_has_no_controller():
    runtime = BeldiRuntime(seed=SEED, shards=1, elastic=True)
    assert runtime.elasticity is None
    runtime.kernel.shutdown()
