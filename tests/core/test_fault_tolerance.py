"""Exactly-once semantics under crash injection (the paper's core claim).

Strategy: first run each scenario once with a recording policy to learn
every crash point the execution passes through; then re-run the scenario
from scratch once per crash point, injecting a crash exactly there, letting
the intent collector restart the work, and asserting the final state is
identical to a crash-free run.
"""

from __future__ import annotations

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import CrashPolicy, FunctionCrashed
from repro.platform.errors import TooManyRequests


class RecordingPolicy(CrashPolicy):
    """Never crashes; remembers every crash point it was asked about."""

    def __init__(self):
        self.tags = []

    def should_crash(self, function, invocation_index, tag):
        self.tags.append((function, invocation_index, tag))
        return False


class CrashExactlyOnce(CrashPolicy):
    """Crash one exact (function, invocation, tag) triple, once."""

    def __init__(self, target):
        self.target = target
        self.fired = False

    def should_crash(self, function, invocation_index, tag):
        if not self.fired and (function, invocation_index,
                               tag) == self.target:
            self.fired = True
            return True
        return False


def fast_config():
    return BeldiConfig(ic_restart_delay=50.0, gc_t=1e12,
                       invoke_retry_backoff=5.0)


def build_runtime(crash_policy=None):
    runtime = BeldiRuntime(seed=42, config=fast_config())
    if crash_policy is not None:
        runtime.platform.crash_policy = crash_policy
    return runtime


def drive_to_completion(runtime, entry, payload, horizon=3_000.0):
    """Issue one client request; let the IC mop up crashes."""
    outcome = {}

    def client():
        try:
            outcome["result"] = runtime.client_call(entry, payload)
        except FunctionCrashed:
            outcome["crashed"] = True
        except TooManyRequests:  # pragma: no cover - not expected here
            outcome["rejected"] = True

    runtime.start_collectors(ic_period=100.0, gc_period=1e11)
    runtime.kernel.spawn(client)
    runtime.kernel.run(until=horizon)
    runtime.stop_collectors()
    runtime.kernel.run(until=horizon + 2_000.0)
    runtime.kernel.shutdown()
    return outcome


class ExactlyOnceScenario:
    """A reusable harness: build SSFs, run, extract observable state."""

    entry = "entry"
    payload = None

    def build(self, runtime):
        raise NotImplementedError

    def state(self, runtime):
        raise NotImplementedError

    def crash_free_state(self):
        runtime = build_runtime()
        self.build(runtime)
        outcome = drive_to_completion(runtime, self.entry, self.payload)
        assert "crashed" not in outcome
        return self.state(runtime), outcome.get("result")

    def discover_crash_points(self):
        policy = RecordingPolicy()
        runtime = build_runtime(policy)
        self.build(runtime)
        drive_to_completion(runtime, self.entry, self.payload)
        # Only first-execution crash points are interesting targets;
        # collectors and replays get higher invocation indexes.
        return sorted(set(policy.tags))

    def assert_exactly_once_under_all_crashes(self):
        expected_state, _expected_result = self.crash_free_state()
        crash_points = self.discover_crash_points()
        assert crash_points, "scenario produced no crash points"
        # Crashing the entry SSF's very first invocation at "enter"
        # happens *before* the intent is logged: the request never
        # existed, nothing may externalize, and the client saw an error
        # it can retry. That all-or-nothing outcome is also correct.
        pre_intent = (self.entry, 0, "enter")
        initial_state = self.initial_state()
        failures = []
        for target in crash_points:
            runtime = build_runtime(CrashExactlyOnce(target))
            self.build(runtime)
            outcome = drive_to_completion(runtime, self.entry,
                                          self.payload)
            got = self.state(runtime)
            if target == pre_intent:
                ok = (got == expected_state
                      or (got == initial_state
                          and outcome.get("crashed")))
            else:
                ok = got == expected_state
            if not ok:
                failures.append((target, got))
        assert not failures, (
            f"state diverged for {len(failures)} crash points; first: "
            f"{failures[0]} (expected {expected_state})")

    def initial_state(self):
        runtime = build_runtime()
        self.build(runtime)
        state = self.state(runtime)
        runtime.kernel.shutdown()
        return state


class CounterScenario(ExactlyOnceScenario):
    """Read-modify-write: the canonical double-increment hazard."""

    def build(self, runtime):
        def handler(ctx, payload):
            count = ctx.read("kv", "counter") or 0
            ctx.write("kv", "counter", count + 10)
            tagged = ctx.read("kv", "counter")
            ctx.write("kv", "audit", f"count={tagged}")
            return tagged

        self.ssf = runtime.register_ssf(self.entry, handler, tables=["kv"])

    def state(self, runtime):
        return (self.ssf.env.peek("kv", "counter"),
                self.ssf.env.peek("kv", "audit"))


class CondWriteScenario(ExactlyOnceScenario):
    """Conditional writes must externalize their outcome exactly once."""

    def build(self, runtime):
        from repro.kvstore import Eq
        from repro.kvstore.expressions import path

        def handler(ctx, payload):
            ctx.write("kv", "slot", {"holder": "nobody"})
            won = ctx.cond_write("kv", "slot", {"holder": "me"},
                                 Eq(path("Value", "holder"), "nobody"))
            lost = ctx.cond_write("kv", "slot", {"holder": "me-again"},
                                  Eq(path("Value", "holder"), "nobody"))
            ctx.write("kv", "outcomes", [won, lost])
            return [won, lost]

        self.ssf = runtime.register_ssf(self.entry, handler, tables=["kv"])

    def state(self, runtime):
        return (self.ssf.env.peek("kv", "slot"),
                self.ssf.env.peek("kv", "outcomes"))


class InvokeChainScenario(ExactlyOnceScenario):
    """Caller/callee with state on both sides and a result dependency."""

    def build(self, runtime):
        def callee(ctx, payload):
            total = ctx.read("books", "ledger") or 0
            total += payload["amount"]
            ctx.write("books", "ledger", total)
            return total

        self.callee = runtime.register_ssf("ledger", callee,
                                           tables=["books"])

        def entry(ctx, payload):
            first = ctx.sync_invoke("ledger", {"amount": 7})
            second = ctx.sync_invoke("ledger", {"amount": 5})
            ctx.write("kv", "echo", [first, second])
            return second

        self.entry_ssf = runtime.register_ssf(self.entry, entry,
                                              tables=["kv"])

    def state(self, runtime):
        return (self.callee.env.peek("books", "ledger"),
                self.entry_ssf.env.peek("kv", "echo"))


class AsyncInvokeScenario(ExactlyOnceScenario):
    """Async registration + execution must also be exactly-once."""

    def build(self, runtime):
        def sink(ctx, payload):
            seen = ctx.read("inbox", "log") or []
            seen = seen + [payload["msg"]]
            ctx.write("inbox", "log", seen)
            return len(seen)

        self.sink = runtime.register_ssf("sink", sink, tables=["inbox"])

        def entry(ctx, payload):
            ctx.async_invoke("sink", {"msg": "m1"})
            ctx.write("kv", "sent", True)
            return "dispatched"

        self.entry_ssf = runtime.register_ssf(self.entry, entry,
                                              tables=["kv"])

    def state(self, runtime):
        return (self.sink.env.peek("inbox", "log"),
                self.entry_ssf.env.peek("kv", "sent"))


class TestExactlyOnceUnderCrashes:
    def test_counter_scenario(self):
        CounterScenario().assert_exactly_once_under_all_crashes()

    def test_cond_write_scenario(self):
        CondWriteScenario().assert_exactly_once_under_all_crashes()

    def test_invoke_chain_scenario(self):
        InvokeChainScenario().assert_exactly_once_under_all_crashes()

    def test_async_invoke_scenario(self):
        AsyncInvokeScenario().assert_exactly_once_under_all_crashes()


class TestCallbackAnomaly:
    """The Fig. 9 trace: callee dies after 'done', before returning."""

    def test_result_arrives_via_callback(self):
        runtime = build_runtime(CrashExactlyOnce(("ledger", 0, "exit")))

        def callee(ctx, payload):
            total = (ctx.read("books", "ledger") or 0) + payload
            ctx.write("books", "ledger", total)
            return total

        callee_ssf = runtime.register_ssf("ledger", callee,
                                          tables=["books"])

        def entry(ctx, payload):
            return ctx.sync_invoke("ledger", 5)

        runtime.register_ssf("entry", entry)
        outcome = drive_to_completion(runtime, "entry", None)
        # The crash happened after the callback: the caller must have
        # recovered the result from its invoke log without re-running
        # the callee.
        assert callee_ssf.env.peek("books", "ledger") == 5
        assert outcome.get("result") == 5 or "crashed" in outcome

    def test_crash_between_body_and_callback_reexecutes_safely(self):
        runtime = build_runtime(
            CrashExactlyOnce(("ledger", 0, "body:done")))

        def callee(ctx, payload):
            total = (ctx.read("books", "ledger") or 0) + payload
            ctx.write("books", "ledger", total)
            return total

        callee_ssf = runtime.register_ssf("ledger", callee,
                                          tables=["books"])
        runtime.register_ssf("entry",
                             lambda ctx, p: ctx.sync_invoke("ledger", 5))
        drive_to_completion(runtime, "entry", None)
        assert callee_ssf.env.peek("books", "ledger") == 5


class TestIntentCollector:
    def test_ic_restarts_unfinished_instance(self):
        runtime = build_runtime(
            CrashExactlyOnce(("worker", 0, "write:1:start")))

        def worker(ctx, payload):
            ctx.read("kv", "x")
            ctx.write("kv", "x", "done")
            return "ok"

        ssf = runtime.register_ssf("worker", worker, tables=["kv"])
        outcome = drive_to_completion(runtime, "worker", None)
        assert outcome.get("crashed") is True  # the client saw the crash
        assert ssf.env.peek("kv", "x") == "done"  # but Beldi finished it
        intents = ssf.env.store.scan(ssf.env.intent_table).items
        assert all(i["Done"] for i in intents)

    def test_ic_rate_limits_restarts(self):
        config = BeldiConfig(ic_restart_delay=1e9, gc_t=1e12)
        runtime = BeldiRuntime(seed=42, config=config)
        runtime.platform.crash_policy = CrashExactlyOnce(
            ("worker", 0, "write:1:start"))

        def worker(ctx, payload):
            ctx.read("kv", "x")
            ctx.write("kv", "x", "done")
            return "ok"

        ssf = runtime.register_ssf("worker", worker, tables=["kv"])
        outcome = drive_to_completion(runtime, "worker", None,
                                      horizon=30_000.0)
        # The delay is enormous, so the IC must NOT have restarted it.
        assert outcome.get("crashed") is True
        assert ssf.env.peek("kv", "x") is None
        pending = ssf.env.store.scan(ssf.env.intent_table).items
        assert pending and not pending[0]["Done"]

    def test_ic_idempotent_with_live_instance(self):
        """IC restarting a *live* instance must not duplicate effects."""
        config = BeldiConfig(ic_restart_delay=10.0, gc_t=1e12)
        runtime = BeldiRuntime(seed=42, config=config, latency_scale=1.0)

        def slow_worker(ctx, payload):
            count = ctx.read("kv", "n") or 0
            ctx.sleep(5_000.0)  # long enough for several IC periods
            ctx.write("kv", "n", count + 1)
            return count + 1

        ssf = runtime.register_ssf("slow", slow_worker, tables=["kv"])
        outcome = drive_to_completion(runtime, "slow", None,
                                      horizon=120_000.0)
        assert ssf.env.peek("kv", "n") == 1
        assert outcome.get("result") == 1
