"""Garbage collection (§5): pruning without breaking exactly-once."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.core import daal
from repro.core.gc import make_garbage_collector


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=13, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=500.0))
    yield rt
    rt.kernel.shutdown()


def run_gc_now(runtime, env, times=1):
    """Invoke the env's GC directly (no timers) from a client process."""
    handler = make_garbage_collector(runtime, env)
    results = []

    def client():
        class _Ctx:
            request_id = "gc-run"
            invocation_index = 0

            def crash_point(self, tag):
                pass

        for _ in range(times):
            results.append(handler(_Ctx(), {}))

    runtime.kernel.spawn(client)
    runtime.kernel.run()
    return results


def advance(runtime, ms):
    runtime.kernel.spawn(lambda: runtime.kernel.sleep(ms))
    runtime.kernel.run()


class TestLogPruning:
    def test_two_phase_recycling(self, runtime):
        """Run 1 stamps FinishTime; run 2 (after T) recycles."""
        def handler(ctx, payload):
            ctx.read("kv", "a")
            ctx.write("kv", "a", 1)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        runtime.run_workflow("w")
        env = ssf.env
        assert env.store.item_count(env.read_log) == 1

        first = run_gc_now(runtime, env)[0]
        assert first["stamped"] == 1
        assert first["recycled_intents"] == 0
        assert env.store.item_count(env.read_log) == 1  # too fresh

        advance(runtime, 1_000.0)  # > T
        second = run_gc_now(runtime, env)[0]
        assert second["recycled_intents"] == 1
        assert env.store.item_count(env.read_log) == 0
        assert env.store.item_count(env.intent_table) == 0

    def test_invoke_log_pruned(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: "v")
        ssf = runtime.register_ssf(
            "root", lambda ctx, p: ctx.sync_invoke("leaf", None))
        runtime.run_workflow("root")
        env = ssf.env
        assert env.store.item_count(env.invoke_log) == 1
        run_gc_now(runtime, env)
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)
        assert env.store.item_count(env.invoke_log) == 0

    def test_live_intent_logs_kept(self, runtime):
        """An unfinished instance's logs must survive any number of GCs."""
        from repro.platform.crashes import CrashOnce
        from repro.platform import FunctionCrashed
        runtime.platform.crash_policy = CrashOnce("w", tag="write:1:start")

        def handler(ctx, payload):
            ctx.read("kv", "a")
            ctx.write("kv", "a", 1)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])

        def client():
            try:
                runtime.client_call("w", None)
            except FunctionCrashed:
                pass

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        env = ssf.env
        assert env.store.item_count(env.read_log) == 1
        for _ in range(3):
            advance(runtime, 1_000.0)
            run_gc_now(runtime, env)
        # Crashed-but-pending: everything retained for the IC.
        assert env.store.item_count(env.read_log) == 1
        assert env.store.item_count(env.intent_table) == 1


class TestChainCollection:
    def _hot_key_writer(self, runtime, writes=40):
        def handler(ctx, payload):
            for i in range(writes):
                ctx.write("kv", "hot", i)
            return "ok"

        return runtime.register_ssf("w", handler, tables=["kv"])

    def test_chain_shrinks_after_recycling(self, runtime):
        ssf = self._hot_key_writer(runtime)
        runtime.run_workflow("w")
        env = ssf.env
        table = env.data_table("kv")
        before = daal.chain_length(env.store, table, "hot")
        assert before >= 5
        run_gc_now(runtime, env)                 # stamp finish time
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)                 # disconnect interior rows
        after_disconnect = daal.chain_length(env.store, table, "hot")
        assert after_disconnect <= 2             # head + tail
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)                 # delete dangled rows
        total_rows = env.store.table(table).item_count()
        assert total_rows <= 2
        # The value must survive collection.
        assert env.peek("kv", "hot") == 39

    def test_chain_stays_short_under_steady_load(self, runtime):
        """Interleave writers and GC: bounded chain, correct final value."""
        def handler(ctx, payload):
            ctx.write("kv", "hot", payload)
            return payload

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        env = ssf.env
        table = env.data_table("kv")
        lengths = []
        for round_no in range(12):
            for j in range(4):
                runtime.run_workflow("w", round_no * 10 + j)
            advance(runtime, 600.0)
            run_gc_now(runtime, env)
            lengths.append(daal.chain_length(env.store, table, "hot"))
        assert env.peek("kv", "hot") == 113
        assert max(lengths[3:]) <= 4  # stays bounded once GC warms up

    def test_orphan_rows_collected(self, runtime):
        ssf = self._hot_key_writer(runtime, writes=2)
        runtime.run_workflow("w")
        env = ssf.env
        table = env.data_table("kv")
        # Simulate a crashed append: an unreachable row.
        env.store.put(table, {"Key": "hot", "RowId": "orphan-1",
                              "Value": 0, "RecentWrites": {},
                              "LogSize": 0})
        run_gc_now(runtime, env)  # stamps DangleTime on the orphan
        row = env.store.get(table, ("hot", "orphan-1"))
        assert "DangleTime" in row
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)
        assert env.store.get(table, ("hot", "orphan-1")) is None

    def test_value_and_semantics_survive_aggressive_gc(self, runtime):
        """GC after every request: counters still count exactly."""
        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        ssf = runtime.register_ssf("inc", handler, tables=["kv"])
        env = ssf.env
        for i in range(10):
            assert runtime.run_workflow("inc") == i + 1
            advance(runtime, 600.0)
            run_gc_now(runtime, env)
        assert env.peek("kv", "n") == 10


class TestShadowCollection:
    def test_committed_txn_shadows_collected(self, runtime):
        def handler(ctx, payload):
            with ctx.transaction():
                ctx.write("kv", "a", payload)
            return "ok"

        ssf = runtime.register_ssf("txw", handler, tables=["kv"])
        runtime.run_workflow("txw", 7)
        env = ssf.env
        shadow = env.shadow_table("kv")
        assert env.store.table(shadow).item_count() > 0
        run_gc_now(runtime, env)       # finish-stamp the instance
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)       # writers recyclable: stamp chain
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)       # delete after a full T dangling
        assert env.store.table(shadow).item_count() == 0
        assert env.peek("kv", "a") == 7

    def test_lockset_rows_collected(self, runtime):
        def handler(ctx, payload):
            with ctx.transaction():
                ctx.write("kv", "a", 1)
            return "ok"

        ssf = runtime.register_ssf("txw", handler, tables=["kv"])
        runtime.run_workflow("txw")
        env = ssf.env
        assert env.store.item_count(env.lockset_table) == 1
        run_gc_now(runtime, env)
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env)
        assert env.store.item_count(env.lockset_table) == 0

    def test_live_txn_shadows_kept(self, runtime):
        """A pending (crashed) transactional instance keeps its shadow."""
        from repro.platform.crashes import CrashOnce
        from repro.platform import FunctionCrashed
        runtime.platform.crash_policy = CrashOnce("txw", tag="body:done")

        def handler(ctx, payload):
            with ctx.transaction():
                ctx.write("kv", "a", 1)
            return "ok"

        ssf = runtime.register_ssf("txw", handler, tables=["kv"])

        def client():
            try:
                runtime.client_call("txw", None)
            except FunctionCrashed:
                pass

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        env = ssf.env
        shadow = env.shadow_table("kv")
        rows_before = env.store.table(shadow).item_count()
        assert rows_before > 0
        for _ in range(3):
            advance(runtime, 1_000.0)
            run_gc_now(runtime, env)
        assert env.store.table(shadow).item_count() == rows_before


class TestGCConcurrency:
    def test_gc_safe_with_concurrent_writers(self, runtime):
        """GC runs while writers are mid-flight: no lost writes."""
        def handler(ctx, payload):
            for i in range(6):
                ctx.write("kv", "hot", (payload, i))
                ctx.sleep(10.0)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        env = ssf.env

        def gc_loop():
            handler_fn = make_garbage_collector(runtime, env)

            class _Ctx:
                request_id = "gc"
                invocation_index = 0

                def crash_point(self, tag):
                    pass

            for _ in range(20):
                runtime.kernel.sleep(7.0)
                handler_fn(_Ctx(), {})

        for i in range(3):
            runtime.kernel.spawn(
                lambda i=i: runtime.client_call("w", i), delay=float(i))
        runtime.kernel.spawn(gc_loop)
        runtime.kernel.run()
        final = env.peek("kv", "hot")
        assert final is not None and final[1] == 5

    def test_concurrent_gc_instances_converge(self, runtime):
        def handler(ctx, payload):
            for i in range(30):
                ctx.write("kv", "hot", i)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        runtime.run_workflow("w")
        env = ssf.env
        run_gc_now(runtime, env, times=2)
        advance(runtime, 1_000.0)
        # Two GC passes back-to-back (like overlapping timer fires).
        run_gc_now(runtime, env, times=3)
        advance(runtime, 1_000.0)
        run_gc_now(runtime, env, times=2)
        table = env.data_table("kv")
        assert env.store.table(table).item_count() <= 2
        assert env.peek("kv", "hot") == 29
