"""Invocation edge cases: spurious callbacks, id reuse, log contents."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.core.invoke import ASYNC_ACK, record_callback


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=31, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=1e12))
    yield rt
    rt.kernel.shutdown()


class TestSpuriousCallbacks:
    def test_callback_for_unknown_invoke_ignored(self, runtime):
        """Fig. 9's tail case: a re-executed callee calls back after the
        caller's logs were garbage collected — detected and dropped."""
        ssf = runtime.register_ssf("caller", lambda ctx, p: "x")
        recorded = record_callback(ssf.env, ssf.env.store,
                                   "ghost-instance", 3, "some-callee",
                                   "result")
        assert recorded is False
        # Nothing was created in the invoke log.
        assert ssf.env.store.item_count(ssf.env.invoke_log) == 0

    def test_callback_with_wrong_callee_id_ignored(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: "v")
        ssf = runtime.register_ssf(
            "caller", lambda ctx, p: ctx.sync_invoke("leaf", None))
        runtime.run_workflow("caller")
        entry = ssf.env.store.scan(ssf.env.invoke_log).items[0]
        # A stale callback carrying a different callee id must not
        # overwrite the logged result.
        recorded = record_callback(ssf.env, ssf.env.store,
                                   entry["InstanceId"], entry["Step"],
                                   "imposter-id", "tampered")
        assert recorded is False
        entry_after = ssf.env.store.get(
            ssf.env.invoke_log, (entry["InstanceId"], entry["Step"]))
        assert entry_after["Result"] == "v"

    def test_duplicate_callback_is_idempotent(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: "v")
        ssf = runtime.register_ssf(
            "caller", lambda ctx, p: ctx.sync_invoke("leaf", None))
        runtime.run_workflow("caller")
        entry = ssf.env.store.scan(ssf.env.invoke_log).items[0]
        recorded = record_callback(ssf.env, ssf.env.store,
                                   entry["InstanceId"], entry["Step"],
                                   entry["CalleeId"], "v")
        assert recorded is True  # same deterministic result, harmless
        entry_after = ssf.env.store.get(
            ssf.env.invoke_log, (entry["InstanceId"], entry["Step"]))
        assert entry_after["Result"] == "v"


class TestCalleeIdReuse:
    def test_reexecuted_caller_reuses_callee_id(self, runtime):
        """The core §4.5 guarantee: a replayed caller re-invokes with the
        *logged* callee id, so the callee can dedupe."""
        seen_ids = []

        def leaf(ctx, payload):
            seen_ids.append(ctx.instance_id)
            return "v"

        runtime.register_ssf("leaf", leaf)
        ssf = runtime.register_ssf(
            "caller", lambda ctx, p: ctx.sync_invoke("leaf", None))

        def client():
            # Same caller instance delivered twice (duplicate delivery).
            for _ in range(2):
                runtime.platform.sync_invoke(
                    "caller", {"kind": "call", "instance_id": "dup-A",
                               "input": None})

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        # The leaf may have been *delivered* twice, but always under one
        # instance id, and its intent executed once.
        assert len(set(seen_ids)) <= 1
        leaf_env = runtime.ssfs["leaf"].env
        intents = leaf_env.store.scan(leaf_env.intent_table).items
        assert len(intents) == 1

    def test_invoke_log_schema(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: p)
        ssf = runtime.register_ssf(
            "caller",
            lambda ctx, p: ctx.sync_invoke("leaf", {"k": 1}))
        runtime.run_workflow("caller")
        entry = ssf.env.store.scan(ssf.env.invoke_log).items[0]
        assert entry["Callee"] == "leaf"
        assert entry["Async"] is False
        assert entry["InTxn"] is False
        assert entry["Result"] == {"k": 1}
        assert "CalleeId" in entry


class TestAsyncAck:
    def test_registration_acks_into_invoke_log(self, runtime):
        sink_calls = []

        def sink(ctx, payload):
            sink_calls.append(payload)
            return "done"

        runtime.register_ssf("sink", sink)
        ssf = runtime.register_ssf(
            "caller",
            lambda ctx, p: ctx.async_invoke("sink", {"m": 1}) or "sent")
        runtime.run_workflow("caller")
        runtime.kernel.run()
        entry = ssf.env.store.scan(ssf.env.invoke_log).items[0]
        assert entry["Result"] == ASYNC_ACK
        assert entry["Async"] is True
        assert sink_calls == [{"m": 1}]

    def test_async_exec_without_registration_is_dropped(self, runtime):
        ran = []
        runtime.register_ssf("sink", lambda ctx, p: ran.append(p))

        def client():
            # An async exec delivery whose intent was never registered
            # (e.g. a stray retry after GC) must be ignored (Fig. 20).
            runtime.platform.sync_invoke(
                "sink", {"kind": "call", "instance_id": "never-registered",
                         "async": True})

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        assert ran == []

    def test_async_exec_after_done_is_dropped(self, runtime):
        count = []

        def sink(ctx, payload):
            count.append(1)
            return "done"

        runtime.register_ssf("sink", sink)
        runtime.register_ssf(
            "caller",
            lambda ctx, p: ctx.async_invoke("sink", None) or "sent")
        runtime.run_workflow("caller")
        runtime.kernel.run()
        assert len(count) == 1
        sink_env = runtime.ssfs["sink"].env
        intent = sink_env.store.scan(sink_env.intent_table).items[0]

        def replay():
            runtime.platform.sync_invoke(
                "sink", {"kind": "call",
                         "instance_id": intent["InstanceId"],
                         "async": True})

        runtime.kernel.spawn(replay)
        runtime.kernel.run()
        assert len(count) == 1  # the duplicate dispatch did nothing


class TestGCPaging:
    def test_page_limit_still_recycles_everything_eventually(self):
        from tests.core.test_gc import advance, run_gc_now
        runtime = BeldiRuntime(seed=37, config=BeldiConfig(
            gc_t=500.0, gc_page_limit=2))
        ssf = runtime.register_ssf(
            "w", lambda ctx, p: ctx.write("kv", f"k{p}", p) or p,
            tables=["kv"])
        for i in range(5):
            runtime.run_workflow("w", i)
        env = ssf.env
        assert env.store.item_count(env.intent_table) == 5
        # Paged runs: each processes at most 2 intent records, but
        # repeated ticks drain the table.
        for _ in range(10):
            advance(runtime, 700.0)
            run_gc_now(runtime, env)
        assert env.store.item_count(env.intent_table) == 0
        for i in range(5):
            assert env.peek("kv", f"k{i}") == i
        runtime.kernel.shutdown()

    def test_paged_gc_never_prunes_live_entries(self):
        from tests.core.test_gc import advance, run_gc_now
        from repro.platform.crashes import CrashOnce
        from repro.platform import FunctionCrashed
        runtime = BeldiRuntime(seed=38, config=BeldiConfig(
            gc_t=500.0, gc_page_limit=1, ic_restart_delay=1e12))
        runtime.platform.crash_policy = CrashOnce("w", tag="write:1:start")

        def w(ctx, payload):
            ctx.read("kv", "a")
            ctx.write("kv", "a", payload)
            return payload

        ssf = runtime.register_ssf("w", w, tables=["kv"])

        def client():
            try:
                runtime.client_call("w", 1)
            except FunctionCrashed:
                pass

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        for _ in range(6):
            advance(runtime, 700.0)
            run_gc_now(runtime, ssf.env)
        # The crashed instance is pending: its read log must survive
        # every paged GC pass.
        assert ssf.env.store.item_count(ssf.env.read_log) == 1
        runtime.kernel.shutdown()
