"""Locks-with-intent (§6.1): mutual exclusion owned by intents."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.platform import FunctionCrashed
from repro.platform.crashes import CrashOnce


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=5, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0))
    yield rt
    rt.kernel.shutdown()


class TestMutualExclusion:
    def test_lock_serializes_critical_sections(self, runtime):
        """Two concurrent instances increment under a lock: no lost update.

        Without the lock this read-modify-write with an intervening sleep
        would interleave and lose one increment.
        """
        def worker(ctx, payload):
            ctx.lock("kv", "shared")
            value = ctx.read("kv", "shared") or 0
            ctx.sleep(50.0)  # force overlap without the lock
            ctx.write("kv", "shared", value + 1)
            ctx.unlock("kv", "shared")
            return value + 1

        ssf = runtime.register_ssf("worker", worker, tables=["kv"])
        results = []
        for i in range(2):
            runtime.kernel.spawn(
                lambda: results.append(runtime.client_call("worker", None)))
        runtime.kernel.run()
        assert sorted(results) == [1, 2]
        assert ssf.env.peek("kv", "shared") == 2

    def test_without_lock_updates_can_be_lost(self, runtime):
        """Control experiment: same workload, no lock, lost update."""
        def worker(ctx, payload):
            value = ctx.read("kv", "shared") or 0
            ctx.sleep(50.0)
            ctx.write("kv", "shared", value + 1)
            return value + 1

        ssf = runtime.register_ssf("racer", worker, tables=["kv"])
        for i in range(2):
            runtime.kernel.spawn(
                lambda: runtime.client_call("racer", None))
        runtime.kernel.run()
        assert ssf.env.peek("kv", "shared") == 1  # one update lost

    def test_reacquire_own_lock_is_noop(self, runtime):
        def worker(ctx, payload):
            ctx.lock("kv", "item")
            ctx.lock("kv", "item")  # own lock: condition still true
            ctx.write("kv", "item", "v")
            ctx.unlock("kv", "item")
            return "ok"

        runtime.register_ssf("worker", worker, tables=["kv"])
        assert runtime.run_workflow("worker") == "ok"


class TestLocksWithIntent:
    def test_lock_survives_crash_and_restart(self, runtime):
        """Fig. 11's motivation: a crashed holder's lock is not lost —
        the re-executed intent still owns it and finishes the job."""
        runtime.platform.crash_policy = CrashOnce(
            "worker", tag="write:2:start")

        def worker(ctx, payload):
            ctx.lock("kv", "item")          # step 0 (condWrite)
            value = ctx.read("kv", "item") or 0   # step 1
            ctx.write("kv", "item", value + 1)    # step 2  <- crash here
            ctx.unlock("kv", "item")        # step 3
            return "done"

        ssf = runtime.register_ssf("worker", worker, tables=["kv"])
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("worker", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=100.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=3_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=5_000.0)
        assert outcome.get("crashed") is True
        assert ssf.env.peek("kv", "item") == 1
        # And the lock must have been released by the re-execution.
        table = ssf.env.data_table("kv")
        rows = ssf.env.store.query(table, "item").items
        assert all("LockOwner" not in row or row["LockOwner"] is None
                   for row in rows)

    def test_unlock_is_exactly_once_under_replay(self, runtime):
        """Re-running a completed instance must not unlock a lock that a
        *different* instance has since acquired."""
        def locker(ctx, payload):
            ctx.lock("kv", "item")
            ctx.unlock("kv", "item")
            return "cycled"

        ssf = runtime.register_ssf("locker", locker, tables=["kv"])

        def client():
            # First instance runs, completes, releases.
            runtime.platform.sync_invoke(
                "locker", {"kind": "call", "instance_id": "inst-A",
                           "input": None})
            # Second instance acquires the lock (and keeps it briefly).
            runtime.platform.sync_invoke(
                "locker", {"kind": "call", "instance_id": "inst-B",
                           "input": None})
            # Replay of the first instance: its unlock must replay from
            # the log, not release anything anew.
            runtime.platform.sync_invoke(
                "locker", {"kind": "call", "instance_id": "inst-A",
                           "input": None})

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        table = ssf.env.data_table("kv")
        rows = ssf.env.store.query(table, "item").items
        assert all("LockOwner" not in row for row in rows)

    def test_lock_starvation_raises(self, runtime):
        """A dead-held lock (no IC running) eventually errors, not hangs."""
        from repro.core.errors import MisusedApi
        runtime.config.lock_retry_limit = 3
        runtime.platform.crash_policy = CrashOnce(
            "holder", tag="body:done")

        def holder(ctx, payload):
            ctx.lock("kv", "item")
            return "held"

        def contender(ctx, payload):
            ctx.lock("kv", "item")
            return "acquired"

        # Same team, shared env: both SSFs address the same "kv" table.
        shared = runtime.create_env("team", tables=["kv"])
        runtime.register_ssf("holder", holder, env=shared)
        runtime.register_ssf("contender", contender, env=shared)
        outcome = {}

        def client():
            try:
                runtime.client_call("holder", None)
            except FunctionCrashed:
                pass
            try:
                outcome["r"] = runtime.client_call("contender", None)
            except MisusedApi:
                outcome["starved"] = True

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        assert outcome.get("starved") is True
