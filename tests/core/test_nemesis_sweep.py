"""Nemesis sweep: the concurrent DST mix under scheduled fault timelines.

Each scenario scripts an incident — a shard dark for a window, an
asymmetric leader↔follower partition, a gray (persistently slow) node,
an error burst, a deadline-bounded run — and drives the full concurrent
workload (two conflicting travel reservations + a movie review) through
it. After recovery + GC the invariant triple must hold regardless of
what the clients saw: exactly-once effects, atomicity, clean store,
zero placement residue. A sub-grid additionally sweeps *when* the
outage lands, and a seeded-schedule exploration races protocol steps
against the fault edges' interleave points. Failures are replayable
from the printed ``DST-REPLAY seed=... trace=...`` line and carry the
timeline in the ``$DST_FAILURE_FILE`` artifact. See docs/resilience.md.
"""

from __future__ import annotations

import os

import pytest

import dst
from repro.kvstore import FaultTimeline

WRITE_OPS = ("db.write", "db.cond_write", "db.batch_write")

# Retry/breaker knobs matched to the incident scale of the DST mix
# (tens-to-hundreds of virtual ms): enough budget to ride out the
# survivable windows, cooldowns short enough to re-probe before the
# retry budget drains against fast-fails.
TUNED = dict(retry_max_attempts=10, breaker_cooldown=60.0)


def scenario_flags(base, timeline, **extra):
    flags = dict(base, timeline=timeline, **TUNED)
    flags.update(extra)
    return flags


def outcomes(results):
    return {name: (value.get("ok") if isinstance(value, dict) else value)
            for name, value in sorted(results.items())}


LIGHT_SCENARIOS = {
    "outage-shard0": FaultTimeline().outage(0.0, 100.0, shards=0),
    "outage-shard1-writes": FaultTimeline().outage(0.0, 100.0, shards=1,
                                                   ops=WRITE_OPS),
    "outage-both-shards": FaultTimeline().outage(0.0, 60.0),
    "error-burst": FaultTimeline().error_burst(0.0, 150.0, rate=0.5),
    "gray-shard1": FaultTimeline().gray(0.0, 400.0, multiplier=25.0,
                                        shards=1),
    "rolling-outage": (FaultTimeline().outage(0.0, 60.0, shards=0)
                       .outage(60.0, 120.0, shards=1)),
}

DEEP_SCENARIOS = {
    "leader-outage": FaultTimeline().outage(0.0, 100.0, shards=0,
                                            role="leader"),
    "partition": FaultTimeline().partition(0.0, 300.0, shards=0),
}

# The kitchen-sink incident: a client is *allowed* to fail cleanly (an
# overlap-scope fan-out has nowhere to sleep a backoff, so a burst
# throttle inside one propagates raw) — the invariant triple must hold
# regardless, with the collector finishing whatever the client dropped.
COMBINED_INCIDENT = (FaultTimeline().outage(0.0, 80.0, shards=0)
                     .partition(40.0, 300.0, shards=1)
                     .gray(0.0, 500.0, multiplier=10.0, shards=1)
                     .error_burst(100.0, 200.0, rate=0.3))


@pytest.mark.parametrize("name", sorted(LIGHT_SCENARIOS))
def test_light_scenarios_hold_invariants(name):
    timeline = LIGHT_SCENARIOS[name]
    h = dst.run_one(scenario_flags(dst.LIGHT_FLAGS, timeline))
    # The scripted windows sit inside the retry budget: clients must
    # *survive* these incidents, not merely fail cleanly.
    assert all(isinstance(r, dict) for r in h.results.values()), (
        f"{name}: client lost to a survivable incident: "
        f"{outcomes(h.results)}")


@pytest.mark.parametrize("name", sorted(DEEP_SCENARIOS))
def test_deep_scenarios_hold_invariants(name):
    timeline = DEEP_SCENARIOS[name]
    h = dst.run_one(scenario_flags(dst.DEEP_FLAGS, timeline))
    assert all(isinstance(r, dict) for r in h.results.values()), (
        f"{name}: client lost to a survivable incident: "
        f"{outcomes(h.results)}")


def test_combined_incident_holds_invariants():
    """Outage + partition + gray + burst at once. ``run_one`` asserts
    the triple; client survival is not promised here."""
    h = dst.run_one(scenario_flags(dst.DEEP_FLAGS, COMBINED_INCIDENT))
    assert any(isinstance(r, dict) for r in h.results.values()), (
        f"every client died — incident should be partial: "
        f"{outcomes(h.results)}")


@pytest.mark.parametrize("start", [0.0, 20.0, 60.0, 120.0])
@pytest.mark.parametrize("duration", [40.0, 150.0])
def test_outage_onset_grid(start, duration):
    """Sweep *when* the dark window lands relative to the protocol —
    onset during intent creation, mid-transaction, during recovery —
    crossed with short/long windows. Long windows may cost a client
    (budget exhausted: clean abort, IC finishes); invariants never
    bend either way."""
    timeline = FaultTimeline().outage(start, start + duration, shards=0)
    dst.run_one(scenario_flags(dst.LIGHT_FLAGS, timeline))


def test_unsurvivable_outage_fails_clients_cleanly():
    """A window far beyond any retry budget: every client sees a clean
    failure, the IC completes the pending work after the heal, and the
    final state is exactly-once anyway."""
    timeline = FaultTimeline().outage(0.0, 5_000.0)
    h = dst.run_one(scenario_flags(dst.LIGHT_FLAGS, timeline))
    stats = h.travel.resilience.stats
    assert stats.unavailable_errors > 0
    assert h.travel.resilience.snapshot()["breakers"]  # breakers engaged


def test_deadline_bounded_run_stays_exactly_once():
    """Request deadlines + an outage: aborted attempts leave pending
    intents for the collector; the triple still holds."""
    timeline = FaultTimeline().outage(0.0, 200.0, shards=0)
    h = dst.run_one(scenario_flags(dst.LIGHT_FLAGS, timeline,
                                   request_deadline=150.0))
    total_aborts = (h.travel.resilience.stats.deadline_aborts
                    + h.movie.resilience.stats.deadline_aborts)
    assert total_aborts >= 0  # aborts allowed, never required


def test_resilience_off_still_recovers_via_collector():
    """Flag off, nemesis on: clients die raw, but Beldi's own IC-based
    recovery still converges to the exactly-once state."""
    timeline = FaultTimeline().outage(0.0, 100.0, shards=0)
    h = dst.run_one(dict(dst.LIGHT_FLAGS, timeline=timeline,
                         resilience=False))
    assert h.travel.resilience is None


def test_nemesis_run_is_deterministic():
    """Same seed + same timeline ⇒ bit-identical final state."""
    def run():
        timeline = FaultTimeline().outage(0.0, 100.0, shards=0)
        h = dst.run_one(scenario_flags(dst.LIGHT_FLAGS, timeline))
        return dst.final_state(h), outcomes(h.results)

    assert run() == run()


def test_fault_edges_reach_the_schedule():
    """Window edges must surface as interleave points so exploration
    can race protocol steps against fault onset/heal. Interleave points
    are gated on a schedule that opts in, so run under RandomSchedule
    with the wakeup trace captured."""
    from repro.sim.schedule import RandomSchedule

    timeline = FaultTimeline().outage(0.0, 100.0, shards=0)
    flags = scenario_flags(dst.LIGHT_FLAGS, timeline)
    h = dst.build_harness(flags, schedule=RandomSchedule(0))
    h.kernel.capture_trace = True
    try:
        dst.run_requests(h)
        fault_labels = [label for _t, label in h.kernel.fired_trace
                        if "fault:" in str(label)]
    finally:
        h.shutdown()
    assert any("fault:outage:start:0" in str(label)
               for label in fault_labels), (
        "no fault edge reached the kernel's interleave trace")


EXPLORE_SEEDS = int(os.environ.get("NEMESIS_SEEDS", "12"))


def test_schedule_exploration_under_nemesis():
    """Race the incident against schedule perturbations: every explored
    interleaving must keep the triple; any failure is replayable from
    its (seed, trace) pair."""
    timeline = FaultTimeline().outage(0.0, 100.0, shards=0)
    flags = scenario_flags(dst.LIGHT_FLAGS, timeline)
    traces = dst.explore(range(EXPLORE_SEEDS), flags=flags)
    assert len(traces) >= EXPLORE_SEEDS // 2, (
        f"exploration degenerated: {len(traces)} distinct traces")


def test_failure_artifact_embeds_timeline(tmp_path, monkeypatch):
    """A nemesis failure's DST artifact carries the timeline alongside
    the replay pair, trace, and metrics."""
    import json

    path = tmp_path / "failure.json"
    monkeypatch.setenv("DST_FAILURE_FILE", str(path))
    timeline = FaultTimeline().outage(0.0, 100.0, shards=0)
    h = dst.build_harness(scenario_flags(dst.LIGHT_FLAGS, timeline))
    try:
        dst.run_requests(h)
        dst._write_failure_artifact(
            seed=dst.SEED, trace=list(h.kernel.schedule_trace),
            exc=AssertionError("synthetic"), h=h)
    finally:
        h.shutdown()
    artifact = json.loads(path.read_text())
    assert artifact["fault_timeline"][0]["kind"] == "outage"
    assert "replay" in artifact
    assert "chrome_trace" in artifact  # obs is on in LIGHT_FLAGS
    assert "resilience" in artifact["metrics"]
