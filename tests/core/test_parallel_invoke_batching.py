"""The batched parallel-invoke claim path, swept through every crash.

``batch_log_writes`` replaces the N conditional invoke-log puts of a
parallel fan-out with one unconditional ``batch_write`` of
*deterministic* entries (callee ids derived from ``(instance id,
step)``). The soundness argument — overwrites commute, an erased
``Result`` is re-derived from the callee's intent table — is exactly the
kind of claim that needs a crash sweep, so this file enumerates every
crash point of a fan-out workflow and re-runs it once per point with
``CrashOnce`` + intent-collector recovery, asserting exactly-once
effects both with the flag on and off.
"""

from __future__ import annotations

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.core import intents
from repro.core.invoke import _derived_callee_id
from repro.platform import CrashOnce, RecordingPolicy
from repro.platform.errors import FunctionCrashed, TooManyRequests

SEED = 11
N_BRANCHES = 3
RECOVERY_HORIZON = 40_000.0


def build_runtime(batch_log_writes: bool) -> BeldiRuntime:
    runtime = BeldiRuntime(
        seed=SEED,
        config=BeldiConfig(gc_t=1e12, ic_restart_delay=200.0,
                           batch_log_writes=batch_log_writes))

    def fan(ctx, payload):
        results = ctx.parallel_invoke(
            [("bump", {"slot": i}) for i in range(N_BRANCHES)])
        return {"ok": True, "results": results}

    def bump(ctx, payload):
        key = f"counter-{payload['slot']}"
        current = ctx.read("counters", key) or 0
        ctx.write("counters", key, current + 1)
        return current + 1

    runtime.register_ssf("fan", fan)
    runtime.register_ssf("bump", bump, tables=["counters"])
    return runtime


def run_recovered(runtime) -> dict:
    box = {}

    def client():
        try:
            box["result"] = runtime.client_call("fan", None)
        except (FunctionCrashed, TooManyRequests):
            box["result"] = "crashed"

    runtime.start_collectors(ic_period=100.0, gc_period=1e12)
    runtime.kernel.spawn(client)
    elapsed = 0.0
    while elapsed < RECOVERY_HORIZON:
        elapsed += 500.0
        runtime.kernel.run(until=elapsed)
        if "result" in box and all(
                not intents.pending_intents(env)
                for env in runtime.envs.values()):
            break
    runtime.stop_collectors()
    runtime.kernel.run(until=elapsed + 500.0)
    assert "result" in box, "client never completed"
    assert all(not intents.pending_intents(env)
               for env in runtime.envs.values())
    return box


def check_effects(runtime, client_ok: bool) -> None:
    env = runtime.envs["bump"]
    counters = [env.peek("counters", f"counter-{i}") or 0
                for i in range(N_BRANCHES)]
    # Exactly once or (crash before the root intent) exactly zero —
    # never twice, never a partial fan-out left behind.
    assert set(counters) in ({0}, {1}), f"partial/duplicated {counters}"
    if client_ok:
        assert counters == [1] * N_BRANCHES


@pytest.mark.parametrize("batch_log_writes", [False, True])
def test_fan_out_crash_sweep(batch_log_writes):
    runtime = build_runtime(batch_log_writes)
    recording = RecordingPolicy()
    runtime.platform.crash_policy = recording
    result = runtime.run_workflow("fan", None)
    assert result["ok"] and result["results"] == [1] * N_BRANCHES
    points = recording.unique_points()
    runtime.kernel.shutdown()
    if batch_log_writes:
        # The batched claim's own crash points must be in the space.
        assert any(tag.startswith("pinvoke:") for _, _, tag in points)
    assert len(points) > 15, "suspiciously small crash space"

    failures = []
    for function, index, tag in points:
        runtime = build_runtime(batch_log_writes)
        runtime.platform.crash_policy = CrashOnce(
            function, tag, invocation_index=index)
        try:
            box = run_recovered(runtime)
            assert runtime.platform.stats.injected_crashes == 1
            client_ok = (isinstance(box["result"], dict)
                         and bool(box["result"].get("ok")))
            check_effects(runtime, client_ok)
        except AssertionError as exc:
            failures.append((function, index, tag, str(exc)))
        finally:
            runtime.kernel.shutdown()
    assert not failures, (
        f"{len(failures)}/{len(points)} crash points broke the fan-out:\n"
        + "\n".join(f"  {f}#{i} @ {t}: {m.splitlines()[0]}"
                    for f, i, t, m in failures[:10]))


def test_batched_claims_are_deterministic_and_coalesced():
    """One batch_write claims all N entries with derivable callee ids."""
    runtime = build_runtime(batch_log_writes=True)
    result = runtime.run_workflow("fan", None)
    assert result["ok"]
    env = runtime.envs["fan"]
    rows = runtime.store.scan(env.invoke_log).items
    assert len(rows) == N_BRANCHES
    for row in rows:
        assert row["CalleeId"] == _derived_callee_id(row["InstanceId"],
                                                     row["Step"])
        assert "Result" in row  # callbacks landed on the batched entries
    assert runtime.store.metering.ops["batch_write"].count == 1
    runtime.kernel.shutdown()


def test_flag_off_keeps_conditional_claims():
    runtime = build_runtime(batch_log_writes=False)
    result = runtime.run_workflow("fan", None)
    assert result["ok"]
    assert "batch_write" not in runtime.store.metering.ops
    runtime.kernel.shutdown()
