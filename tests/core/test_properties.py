"""Property-based tests (hypothesis) on Beldi's core invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BeldiConfig, BeldiRuntime
from repro.core import daal
from repro.platform import CrashPolicy, FunctionCrashed
from repro.platform.errors import TooManyRequests
from repro.sim import RandomSource

FAST = dict(deadline=None, max_examples=25,
            suppress_health_check=[HealthCheck.too_slow,
                                   HealthCheck.data_too_large])


class SeededCrash(CrashPolicy):
    """Crash pseudo-randomly, at most ``budget`` times, from a seed."""

    def __init__(self, seed: int, p: float, budget: int):
        self.rand = RandomSource(seed, "crash")
        self.p = p
        self.budget = budget

    def should_crash(self, function, invocation_index, tag):
        if self.budget <= 0 or tag in ("enter",):
            return False
        if self.rand.random() < self.p:
            self.budget -= 1
            return True
        return False


def run_with_recovery(runtime, entry, payloads, horizon=20_000.0):
    outcomes = []

    def client(payload):
        try:
            outcomes.append(runtime.client_call(entry, payload))
        except (FunctionCrashed, TooManyRequests):
            outcomes.append("crashed")

    runtime.start_collectors(ic_period=100.0, gc_period=1e11)
    for i, payload in enumerate(payloads):
        runtime.kernel.spawn(client, payload, delay=float(i) * 5.0)
    runtime.kernel.run(until=horizon)
    runtime.stop_collectors()
    runtime.kernel.run(until=horizon + 5_000.0)
    runtime.kernel.shutdown()
    return outcomes


class TestExactlyOnceProperty:
    @given(seed=st.integers(0, 10_000), crashes=st.integers(0, 4))
    @settings(**FAST)
    def test_locked_counter_counts_requests_exactly(self, seed, crashes):
        """For any crash schedule, N lock-protected read-modify-writes
        move the counter by exactly N.

        (Without the lock this property is rightly false: a crashed
        instance's replayed read is its *original* logged read, which is
        a legal racy interleaving — exactly-once, not serializability.
        §6.1's locks-with-intent are what make the counter exact.)
        """
        runtime = BeldiRuntime(seed=7, config=BeldiConfig(
            ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0,
            lock_retry_limit=2000))
        runtime.platform.crash_policy = SeededCrash(seed, p=0.15,
                                                    budget=crashes)

        def handler(ctx, payload):
            ctx.lock("kv", "n")
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            ctx.unlock("kv", "n")
            return n + 1

        ssf = runtime.register_ssf("inc", handler, tables=["kv"])
        requests = 3
        run_with_recovery(runtime, "inc", [None] * requests)
        assert ssf.env.peek("kv", "n") == requests

    @given(seed=st.integers(0, 10_000))
    @settings(**FAST)
    def test_unlocked_replay_is_a_legal_interleaving(self, seed):
        """Without locks, the final counter must still be one of the
        values a crash-free concurrent interleaving could produce
        (between 1 and N) — never 0, never more than N."""
        runtime = BeldiRuntime(seed=7, config=BeldiConfig(
            ic_restart_delay=50.0, gc_t=1e12))
        runtime.platform.crash_policy = SeededCrash(seed, p=0.2, budget=2)

        def handler(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        ssf = runtime.register_ssf("inc", handler, tables=["kv"])
        requests = 3
        run_with_recovery(runtime, "inc", [None] * requests)
        final = ssf.env.peek("kv", "n")
        assert final is not None and 1 <= final <= requests

    @given(seed=st.integers(0, 10_000))
    @settings(**FAST)
    def test_invoke_fanout_exactly_once(self, seed):
        """Caller fans out to two callees; all ledgers settle exactly."""
        runtime = BeldiRuntime(seed=3, config=BeldiConfig(
            ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0,
            lock_retry_limit=2000))
        runtime.platform.crash_policy = SeededCrash(seed, p=0.1, budget=3)

        def ledger(ctx, payload):
            ctx.lock("books", "sum")
            total = (ctx.read("books", "sum") or 0) + payload
            ctx.write("books", "sum", total)
            ctx.unlock("books", "sum")
            return total

        led_a = runtime.register_ssf("led_a", ledger, tables=["books"])
        led_b = runtime.register_ssf("led_b", ledger, tables=["books"])

        def entry(ctx, payload):
            ctx.sync_invoke("led_a", 3)
            ctx.sync_invoke("led_b", 4)
            return "ok"

        runtime.register_ssf("entry", entry)
        run_with_recovery(runtime, "entry", [None, None])
        assert led_a.env.peek("books", "sum") == 6
        assert led_b.env.peek("books", "sum") == 8


class TestTransactionProperties:
    @given(transfers=st.lists(
        st.tuples(st.sampled_from(["ann", "bob", "cyn"]),
                  st.sampled_from(["ann", "bob", "cyn"]),
                  st.integers(1, 40)),
        min_size=1, max_size=6))
    @settings(**FAST)
    def test_money_conserved_and_non_negative(self, transfers):
        runtime = BeldiRuntime(seed=21, config=BeldiConfig(
            ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0,
            lock_retry_limit=300))

        def transfer(ctx, payload):
            src, dst, amount = payload
            if src == dst:
                return "self"
            with ctx.transaction() as tx:
                a = ctx.read("accts", src)
                b = ctx.read("accts", dst)
                if a < amount:
                    ctx.abort_tx()
                ctx.write("accts", src, a - amount)
                ctx.write("accts", dst, b + amount)
            return tx.outcome

        ssf = runtime.register_ssf("transfer", transfer,
                                   tables=["accts"])
        for name in ("ann", "bob", "cyn"):
            ssf.env.seed("accts", name, 50)
        run_with_recovery(runtime, "transfer", transfers)
        balances = [ssf.env.peek("accts", name)
                    for name in ("ann", "bob", "cyn")]
        assert sum(balances) == 150
        assert all(b >= 0 for b in balances)

    @given(seed=st.integers(0, 5_000))
    @settings(**FAST)
    def test_paired_keys_stay_equal(self, seed):
        """Every committed txn writes x == y; opacity means no reader
        (even a doomed one) observes x != y."""
        runtime = BeldiRuntime(seed=seed % 17, config=BeldiConfig(
            ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0,
            lock_retry_limit=300))
        violations = []

        def bump(ctx, payload):
            with ctx.transaction() as tx:
                x = ctx.read("kv", "x") or 0
                y = ctx.read("kv", "y") or 0
                if x != y:
                    violations.append((x, y))
                ctx.write("kv", "x", x + 1)
                ctx.write("kv", "y", y + 1)
            return tx.outcome

        ssf = runtime.register_ssf("bump", bump, tables=["kv"])
        outcomes = run_with_recovery(runtime, "bump", [None] * 3)
        assert not violations
        committed = outcomes.count("committed")
        assert ssf.env.peek("kv", "x") == ssf.env.peek("kv", "y")
        if committed:
            assert ssf.env.peek("kv", "x") == committed


class TestDAALStructuralInvariants:
    @given(writes=st.lists(st.integers(0, 99), min_size=1, max_size=40),
           capacity=st.integers(1, 6))
    @settings(**FAST)
    def test_chain_structure_after_writes(self, writes, capacity):
        """After any write sequence: a single reachable chain, the tail
        holds the last value, interior rows are full, and log entries
        count exactly the number of writes."""
        runtime = BeldiRuntime(seed=5, config=BeldiConfig(
            row_log_capacity=capacity, gc_t=1e12))

        def handler(ctx, payload):
            for value in payload:
                ctx.write("kv", "k", value)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        runtime.run_workflow("w", list(writes))
        runtime.kernel.shutdown()
        env = ssf.env
        table = env.data_table("kv")
        skeleton = daal.load_skeleton(env.store, table, "k")
        rows = [env.store.get(table, ("k", rid))
                for rid in skeleton.reachable]
        # Tail value is the last write.
        assert rows[-1]["Value"] == writes[-1]
        # Interior rows are exactly full; only the tail may have space.
        for row in rows[:-1]:
            assert row["LogSize"] == capacity
            assert "NextRow" in row
        assert "NextRow" not in rows[-1]
        # Exactly one log entry per write, across the chain.
        total_entries = sum(len(r["RecentWrites"]) for r in rows)
        assert total_entries == len(writes)
        # No orphans in a crash-free run.
        assert skeleton.orphans == []

    @given(n_writers=st.integers(2, 5), per_writer=st.integers(1, 6),
           capacity=st.integers(1, 4))
    @settings(**FAST)
    def test_concurrent_writers_never_lose_log_entries(
            self, n_writers, per_writer, capacity):
        """Any interleaving of concurrent writers yields one entry per
        write and a consistent chain."""
        runtime = BeldiRuntime(seed=2, config=BeldiConfig(
            row_log_capacity=capacity, gc_t=1e12), latency_scale=1.0)

        def handler(ctx, payload):
            for i in range(per_writer):
                ctx.write("kv", "k", (payload, i))
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        for w in range(n_writers):
            runtime.kernel.spawn(
                lambda w=w: runtime.client_call("w", w),
                delay=float(w) * 0.5)
        runtime.kernel.run()
        runtime.kernel.shutdown()
        env = ssf.env
        table = env.data_table("kv")
        skeleton = daal.load_skeleton(env.store, table, "k")
        rows = [env.store.get(table, ("k", rid))
                for rid in skeleton.reachable]
        total_entries = sum(len(r["RecentWrites"]) for r in rows)
        assert total_entries == n_writers * per_writer
        # Every log key is unique across the chain.
        seen = set()
        for row in rows:
            for log_key in row["RecentWrites"]:
                assert log_key not in seen
                seen.add(log_key)


class TestGCInterleavingProperties:
    """Append-row races interleaved with the GC: orphan rows are born
    (losing CAS candidates), stamped, and reclaimed — and neither the
    happy chain walk nor the §4.4 tail cache may ever observe them."""

    @given(n_writers=st.integers(2, 4), per_writer=st.integers(2, 5),
           seed=st.integers(0, 2_000),
           tail_cache=st.booleans())
    @settings(**FAST)
    def test_orphans_from_append_races_are_reclaimed(
            self, n_writers, per_writer, seed, tail_cache):
        """Concurrent writers with capacity-1 rows force an append race
        on nearly every write; racing losers orphan their candidates.
        After the writers finish and the GC horizon passes: every orphan
        is stamped then deleted, no log entry is lost while live, the
        final value survives collection, and a tail cache that watched
        the whole interleaving never serves a stale row."""
        from repro.core.gc import make_garbage_collector

        gc_t = 800.0
        runtime = BeldiRuntime(
            seed=seed % 29, latency_scale=1.0,
            config=BeldiConfig(row_log_capacity=1, gc_t=gc_t,
                               ic_restart_delay=1e12,
                               tail_cache=tail_cache,
                               batch_reads=tail_cache))

        def handler(ctx, payload):
            for i in range(per_writer):
                ctx.write("kv", "k", (payload, i))
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        env = ssf.env
        table = env.data_table("kv")
        gc_handler = make_garbage_collector(runtime, env)

        class _Ctx:
            request_id = "gc"
            invocation_index = 0

            def crash_point(self, tag):
                pass

        # Writers race; a GC pass runs *while* they are in flight (its
        # liveness rules must protect live instances' entries).
        for w in range(n_writers):
            runtime.kernel.spawn(
                lambda w=w: runtime.client_call("w", w),
                delay=float(w) * 0.5)
        runtime.kernel.spawn(lambda: gc_handler(_Ctx(), {}), delay=5.0)
        runtime.kernel.run()

        skeleton = daal.load_skeleton(env.store, table, "k")
        total = n_writers * per_writer
        rows = [env.store.get(table, ("k", rid))
                for rid in skeleton.reachable]
        entries = sum(len(r["RecentWrites"]) for r in rows)
        assert entries == total  # mid-run GC lost nothing live
        final_value = rows[-1]["Value"]
        # Tuples round-trip through the store as lists.
        assert final_value in [[w, per_writer - 1]
                               for w in range(n_writers)]

        # Capacity-1 chains make every write an append; any lost race
        # leaves an orphan. Sweep the GC past the horizon twice: stamp,
        # then delete. (Orphans may be zero if no race lost — hypothesis
        # explores seeds where they aren't.)
        def advance_and_collect():
            runtime.kernel.sleep(gc_t + 50.0)
            gc_handler(_Ctx(), {})
            runtime.kernel.sleep(gc_t + 50.0)
            gc_handler(_Ctx(), {})
            runtime.kernel.sleep(gc_t + 50.0)
            gc_handler(_Ctx(), {})

        runtime.kernel.spawn(advance_and_collect)
        runtime.kernel.run()

        after = daal.load_skeleton(env.store, table, "k")
        assert after.orphans == []  # every orphan reclaimed
        assert after.exists
        # Collection never disturbs the tail value, cached or not.
        assert env.peek("kv", "k") == final_value
        assert daal.tail_value(env.store, table, "k") == final_value
        if tail_cache:
            # The cache watched writes, disconnections, and deletions;
            # its view must match a cold traversal exactly.
            entry = runtime.tail_cache.tail_of(table, "k")
            if entry is not None:
                assert entry.row_id in after.reachable
        runtime.kernel.shutdown()

    @given(seed=st.integers(0, 2_000))
    @settings(**FAST)
    def test_stale_cache_across_gc_never_serves_deleted_rows(self, seed):
        """Pin the cache at every row of a chain in turn, GC the chain
        down, and re-read: every answer must equal the live tail value
        regardless of which (possibly deleted) row was pinned."""
        runtime = BeldiRuntime(seed=seed % 13, config=BeldiConfig(
            row_log_capacity=1, gc_t=300.0, ic_restart_delay=1e12))
        from repro.core.gc import make_garbage_collector

        def handler(ctx, payload):
            for i in range(5):
                ctx.write("kv", "k", i)
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        runtime.run_workflow("w")
        env = ssf.env
        table = env.data_table("kv")
        all_rows = [row["RowId"]
                    for row in env.store.query(table, "k").items]
        gc_handler = make_garbage_collector(runtime, env)

        class _Ctx:
            request_id = "gc"
            invocation_index = 0

            def crash_point(self, tag):
                pass

        def collect():
            for _ in range(3):
                runtime.kernel.sleep(400.0)
                gc_handler(_Ctx(), {})

        runtime.kernel.spawn(collect)
        runtime.kernel.run()

        for row_id in all_rows:
            runtime.tail_cache.remember_tail(table, "k", row_id)
            assert env.peek("kv", "k") == 4, f"stale via {row_id}"
        runtime.kernel.shutdown()


class TestLogKeyProperties:
    @given(instance=st.text(
        alphabet=st.characters(blacklist_characters="#",
                               min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=40),
        step=st.integers(0, 10_000))
    @settings(**FAST)
    def test_encode_decode_roundtrip(self, instance, step):
        from repro.core import logkeys
        encoded = logkeys.encode(instance, step)
        assert logkeys.decode(encoded) == (instance, step)
        assert logkeys.instance_of(encoded) == instance
