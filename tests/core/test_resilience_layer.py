"""The resilience layer: retry/backoff, breakers, deadlines, fallbacks.

Unit tests for the pure policies, then end-to-end runtime tests proving
the contract the layer exists for: injected-environment errors
(throttles, scheduled outages) no longer kill workflows when the budget
covers them, the off-flag reproduces the raw-propagation behavior, and a
deadline abort is clean — the intent collector still finishes the work
exactly once.
"""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.core.errors import DeadlineExceeded
from repro.kvstore import FaultTimeline, ThrottledError, UnavailableError
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.sim import RandomSource


class TestRetryPolicy:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(base_backoff=10.0, max_backoff=100.0,
                             jitter=0.0)
        rand = RandomSource(1, "r")
        delays = [policy.backoff(n, rand) for n in range(1, 7)]
        assert delays == [10.0, 20.0, 40.0, 80.0, 100.0, 100.0]

    def test_jitter_shrinks_within_bounds(self):
        policy = RetryPolicy(base_backoff=100.0, jitter=0.5)
        rand = RandomSource(2, "r")
        for _ in range(50):
            delay = policy.backoff(1, rand)
            assert 50.0 < delay <= 100.0

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.backoff(n, RandomSource(3, "r")) for n in (1, 2, 3)]
        b = [policy.backoff(n, RandomSource(3, "r")) for n in (1, 2, 3)]
        assert a == b


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(threshold=3, cooldown=100.0)
        for _ in range(2):
            b.record_failure(0.0)
        assert b.allow(0.0)  # still closed
        b.record_failure(0.0)
        assert b.state == "open"
        assert not b.allow(50.0)

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(threshold=3, cooldown=100.0)
        b.record_failure(0.0)
        b.record_failure(0.0)
        b.record_success()
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        b = CircuitBreaker(threshold=1, cooldown=100.0)
        b.record_failure(10.0)
        assert not b.allow(109.0)
        assert b.allow(110.0)  # half-open probe passes
        assert b.state == "half_open"
        b.record_success()
        assert b.state == "closed"

    def test_failed_probe_reopens_for_another_cooldown(self):
        b = CircuitBreaker(threshold=1, cooldown=100.0)
        b.record_failure(10.0)
        assert b.allow(110.0)
        b.record_failure(110.0)
        assert b.state == "open"
        assert not b.allow(200.0)
        assert b.allow(210.0)


class ThrottleScript:
    """Duck-typed FaultPolicy: throttle the first ``n`` in-scope draws.

    ``FaultPolicy`` is probabilistic; regression-testing "a single
    throttle must not abort a workflow" needs the deterministic version:
    100% throttle for exactly ``n`` operations, then clean air.
    """

    def __init__(self, n=1, only_ops=None):
        self.remaining = n
        self.only_ops = only_ops
        self.throttled = 0

    def should_throttle(self, rand, op="", shard=None):
        if self.only_ops is not None and op not in self.only_ops:
            return False
        if self.remaining > 0:
            self.remaining -= 1
            self.throttled += 1
            return True
        return False

    def should_crash_leader(self, rand, op="", shard=None):
        return False

    def latency_multiplier(self, rand, op="", shard=None):
        return 1.0


def run_counter(runtime):
    def handler(ctx, payload):
        count = ctx.read("kv", "counter") or 0
        ctx.write("kv", "counter", count + 1)
        return count + 1

    ssf = runtime.register_ssf("counter", handler, tables=["kv"])
    result = runtime.run_workflow("counter")
    return result, ssf


class TestThrottleRecovery:
    """Satellite regression: point-op throttles used to escape
    ``core/ops.py``/``core/daal.py`` raw and abort the whole workflow."""

    def test_single_throttle_no_longer_aborts(self):
        script = ThrottleScript(n=1)
        runtime = BeldiRuntime(seed=11, store_faults=script)
        try:
            result, ssf = run_counter(runtime)
            assert result == 1
            assert ssf.env.peek("kv", "counter") == 1
            assert script.throttled == 1
            assert runtime.resilience.stats.retries >= 1
            assert runtime.resilience.stats.throttled_errors >= 1
        finally:
            runtime.kernel.shutdown()

    def test_burst_of_throttles_survives_within_budget(self):
        script = ThrottleScript(n=4)
        runtime = BeldiRuntime(seed=11, store_faults=script)
        try:
            result, _ = run_counter(runtime)
            assert result == 1
        finally:
            runtime.kernel.shutdown()

    def test_flag_off_reproduces_raw_propagation(self):
        script = ThrottleScript(n=1)
        runtime = BeldiRuntime(seed=11, store_faults=script,
                               resilience=False)
        try:
            assert runtime.resilience is None
            with pytest.raises(ThrottledError):
                run_counter(runtime)
        finally:
            runtime.kernel.shutdown()

    def test_throttles_never_trip_the_breaker(self):
        script = ThrottleScript(n=4)
        runtime = BeldiRuntime(seed=11, store_faults=script)
        try:
            run_counter(runtime)
            assert runtime.resilience.stats.breaker_opens == 0
        finally:
            runtime.kernel.shutdown()


class TestOutageRecovery:
    def make_runtime(self, outage_end, **kwargs):
        runtime = BeldiRuntime(seed=11, **kwargs)
        timeline = FaultTimeline().outage(0.0, outage_end)
        BeldiRuntime._install_timeline(runtime.store, timeline)
        runtime.fault_timeline = timeline
        return runtime

    def test_workflow_rides_out_a_short_outage(self):
        runtime = self.make_runtime(outage_end=40.0)
        try:
            result, ssf = run_counter(runtime)
            assert result == 1
            assert ssf.env.peek("kv", "counter") == 1
            stats = runtime.resilience.stats
            assert stats.unavailable_errors >= 1
            assert stats.retries >= 1
        finally:
            runtime.kernel.shutdown()

    def test_endless_outage_exhausts_the_budget(self):
        runtime = self.make_runtime(outage_end=1e12)
        try:
            with pytest.raises(UnavailableError):
                run_counter(runtime)
        finally:
            runtime.kernel.shutdown()

    def test_breaker_opens_under_a_long_outage(self):
        config = BeldiConfig(breaker_threshold=2, retry_max_attempts=8)
        runtime = self.make_runtime(outage_end=1e12, config=config)
        try:
            with pytest.raises(UnavailableError):
                run_counter(runtime)
            stats = runtime.resilience.stats
            assert stats.breaker_opens >= 1
            assert stats.fast_fails >= 1
        finally:
            runtime.kernel.shutdown()


class TestDeadlines:
    def test_deadline_abort_is_clean_and_ic_finishes(self):
        """The client sees ``DeadlineExceeded``; the pending intent stays
        for the collector, which completes it after the heal — the write
        lands exactly once."""
        config = BeldiConfig(request_deadline=100.0,
                             ic_restart_delay=50.0)
        runtime = BeldiRuntime(seed=11, config=config)
        # Scoped to chain reads so the intent record itself lands: the
        # deadline then aborts a request whose intent is pending — the
        # recovery case (an unreachable intent table is a clean
        # never-started failure instead).
        timeline = FaultTimeline().outage(0.0, 600.0, ops="db.query")
        BeldiRuntime._install_timeline(runtime.store, timeline)
        runtime.fault_timeline = timeline

        def handler(ctx, payload):
            count = ctx.read("kv", "counter") or 0
            ctx.write("kv", "counter", count + 1)
            return count + 1

        ssf = runtime.register_ssf("counter", handler, tables=["kv"])
        box = {}

        def client():
            try:
                box["result"] = runtime.client_call("counter")
            except DeadlineExceeded:
                box["result"] = "deadline"

        try:
            runtime.start_collectors(ic_period=100.0, gc_period=1e12)
            runtime.kernel.spawn(client, name="client")
            # Drive past the heal: the IC re-runs the instance with a
            # fresh budget and the effect lands exactly once.
            runtime.kernel.run(until=2_000.0)
            runtime.stop_collectors()
            runtime.kernel.run(until=2_500.0)
            assert box["result"] == "deadline"
            assert runtime.resilience.stats.deadline_aborts >= 1
            assert ssf.env.peek("kv", "counter") == 1
        finally:
            runtime.kernel.shutdown()

    def test_no_deadline_outside_invocations(self):
        runtime = BeldiRuntime(
            seed=11, config=BeldiConfig(request_deadline=50.0))
        try:
            assert runtime.resilience.current_deadline() is None
            run_counter(runtime)
            assert runtime.resilience.current_deadline() is None
        finally:
            runtime.kernel.shutdown()


class TestDegradedReads:
    def test_dark_leader_serves_stale_follower_read(self):
        runtime = BeldiRuntime(seed=11, shards=1, replicas=2)
        store = runtime.store
        wrapped = runtime._resilient_store
        store.ensure_table("app.data", hash_key="Key")
        store.put("app.data", {"Key": "a", "V": 1})
        box = {}

        def probe():
            for source in store.time_sources():
                source.sleep(5_000.0)  # let the write ship
            timeline = FaultTimeline().outage(
                5_000.0, 1e12, role="leader")
            BeldiRuntime._install_timeline(store, timeline)
            box["value"] = wrapped.get("app.data", "a")

        try:
            runtime.kernel.spawn(probe)
            runtime.kernel.run()
            assert box["value"]["V"] == 1
            assert runtime.resilience.stats.degraded_reads == 1
        finally:
            runtime.kernel.shutdown()

    def test_protocol_tables_never_degrade(self):
        runtime = BeldiRuntime(seed=11, shards=1, replicas=2)
        store = runtime.store
        wrapped = runtime._resilient_store
        store.ensure_table("app.intent", hash_key="Key")
        store.put("app.intent", {"Key": "a", "V": 1})

        def probe():
            for source in store.time_sources():
                source.sleep(5_000.0)
            timeline = FaultTimeline().outage(
                5_000.0, 1e12, role="leader")
            BeldiRuntime._install_timeline(store, timeline)
            wrapped.get("app.intent", "a")

        try:
            proc = runtime.kernel.spawn(probe)
            runtime.kernel.run()
            assert isinstance(proc.error, UnavailableError)
            assert runtime.resilience.stats.degraded_reads == 0
        finally:
            runtime.kernel.shutdown()

    def test_degraded_reads_flag_off_fails_instead(self):
        runtime = BeldiRuntime(
            seed=11, shards=1, replicas=2,
            config=BeldiConfig(degraded_reads=False))
        store = runtime.store
        wrapped = runtime._resilient_store
        store.ensure_table("app.data", hash_key="Key")
        store.put("app.data", {"Key": "a", "V": 1})

        def probe():
            for source in store.time_sources():
                source.sleep(5_000.0)
            timeline = FaultTimeline().outage(
                5_000.0, 1e12, role="leader")
            BeldiRuntime._install_timeline(store, timeline)
            wrapped.get("app.data", "a")

        try:
            proc = runtime.kernel.spawn(probe)
            runtime.kernel.run()
            assert isinstance(proc.error, UnavailableError)
        finally:
            runtime.kernel.shutdown()


class TestFlagDiscipline:
    def test_fault_free_runs_identical_on_and_off(self):
        """With no faults injected the layer must be pure overhead-free
        pass-through: same virtual time, same metering, same results."""
        def run(resilience):
            runtime = BeldiRuntime(seed=11, latency_scale=1.0,
                                   resilience=resilience)
            try:
                result, ssf = run_counter(runtime)
                return (result, runtime.kernel.now,
                        runtime.store.metering.snapshot(),
                        ssf.env.peek("kv", "counter"))
            finally:
                runtime.kernel.shutdown()

        assert run(True) == run(False)
