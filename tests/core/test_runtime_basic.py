"""End-to-end tests of the Beldi runtime: happy paths first."""

import pytest

from repro.core import BeldiRuntime, TableNotDeclared


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=11)
    yield rt
    rt.kernel.shutdown()


class TestSingleSSF:
    def test_simple_read_write(self, runtime):
        def handler(ctx, payload):
            ctx.write("kv", "greeting", payload)
            return ctx.read("kv", "greeting")

        ssf = runtime.register_ssf("hello", handler, tables=["kv"])
        result = runtime.run_workflow("hello", "hi there")
        assert result == "hi there"
        assert ssf.env.peek("kv", "greeting") == "hi there"

    def test_read_missing_returns_none(self, runtime):
        runtime.register_ssf("reader",
                             lambda ctx, p: ctx.read("kv", "ghost"),
                             tables=["kv"])
        assert runtime.run_workflow("reader") is None

    def test_counter_increments_once_per_request(self, runtime):
        def handler(ctx, payload):
            count = ctx.read("kv", "counter") or 0
            ctx.write("kv", "counter", count + 1)
            return count + 1

        ssf = runtime.register_ssf("counter", handler, tables=["kv"])
        for expected in (1, 2, 3):
            assert runtime.run_workflow("counter") == expected
        assert ssf.env.peek("kv", "counter") == 3

    def test_cond_write_outcomes(self, runtime):
        from repro.kvstore import Eq
        from repro.kvstore.expressions import path

        def handler(ctx, payload):
            ctx.write("kv", "item", {"state": "open"})
            first = ctx.cond_write("kv", "item", {"state": "claimed"},
                                   Eq(path("Value", "state"), "open"))
            second = ctx.cond_write("kv", "item", {"state": "claimed2"},
                                    Eq(path("Value", "state"), "open"))
            return [first, second]

        ssf = runtime.register_ssf("claimer", handler, tables=["kv"])
        assert runtime.run_workflow("claimer") == [True, False]
        assert ssf.env.peek("kv", "item") == {"state": "claimed"}

    def test_undeclared_table_rejected(self, runtime):
        def handler(ctx, payload):
            return ctx.read("secret", "k")

        runtime.register_ssf("snoop", handler, tables=["kv"])
        with pytest.raises(TableNotDeclared):
            runtime.run_workflow("snoop")

    def test_values_can_be_structured(self, runtime):
        def handler(ctx, payload):
            ctx.write("kv", "doc", {"tags": ["a", "b"], "n": 3})
            return ctx.read("kv", "doc")

        runtime.register_ssf("docs", handler, tables=["kv"])
        assert runtime.run_workflow("docs") == {"tags": ["a", "b"], "n": 3}

    def test_record_logs_nondeterminism(self, runtime):
        def handler(ctx, payload):
            return ctx.fresh_id()

        runtime.register_ssf("ids", handler, tables=[])
        first = runtime.run_workflow("ids")
        second = runtime.run_workflow("ids")
        assert first != second


class TestChainGrowth:
    def test_many_writes_grow_the_chain(self, runtime):
        from repro.core import daal

        def handler(ctx, payload):
            for i in range(30):
                ctx.write("kv", "hot", i)
            return ctx.read("kv", "hot")

        ssf = runtime.register_ssf("writer", handler, tables=["kv"])
        assert runtime.run_workflow("writer") == 29
        length = daal.chain_length(ssf.env.store,
                                   ssf.env.data_table("kv"), "hot")
        # 30 writes at capacity 8 need at least 4 rows.
        assert length >= 4
        assert ssf.env.peek("kv", "hot") == 29

    def test_interleaved_keys_grow_independent_chains(self, runtime):
        from repro.core import daal

        def handler(ctx, payload):
            for i in range(10):
                ctx.write("kv", "a", i)
            ctx.write("kv", "b", "solo")
            return True

        ssf = runtime.register_ssf("writer", handler, tables=["kv"])
        runtime.run_workflow("writer")
        table = ssf.env.data_table("kv")
        assert daal.chain_length(ssf.env.store, table, "a") >= 2
        assert daal.chain_length(ssf.env.store, table, "b") == 1


class TestInvocation:
    def test_sync_invoke_returns_value(self, runtime):
        runtime.register_ssf("adder", lambda ctx, p: p["a"] + p["b"])

        def driver(ctx, payload):
            return ctx.sync_invoke("adder", {"a": 2, "b": 3})

        runtime.register_ssf("driver", driver)
        assert runtime.run_workflow("driver") == 5

    def test_nested_workflow_three_deep(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: p * 2)
        runtime.register_ssf(
            "middle", lambda ctx, p: ctx.sync_invoke("leaf", p) + 1)
        runtime.register_ssf(
            "root", lambda ctx, p: ctx.sync_invoke("middle", p) * 10)
        assert runtime.run_workflow("root", 4) == 90

    def test_callee_state_survives(self, runtime):
        def bank(ctx, payload):
            balance = ctx.read("accounts", payload["user"]) or 0
            balance += payload["amount"]
            ctx.write("accounts", payload["user"], balance)
            return balance

        bank_ssf = runtime.register_ssf("bank", bank, tables=["accounts"])

        def driver(ctx, payload):
            ctx.sync_invoke("bank", {"user": "ann", "amount": 50})
            return ctx.sync_invoke("bank", {"user": "ann", "amount": 25})

        runtime.register_ssf("driver2", driver)
        assert runtime.run_workflow("driver2") == 75
        assert bank_ssf.env.peek("accounts", "ann") == 75

    def test_callback_recorded_in_invoke_log(self, runtime):
        runtime.register_ssf("leaf", lambda ctx, p: "leafy")

        def driver(ctx, payload):
            return ctx.sync_invoke("leaf", None)

        ssf = runtime.register_ssf("driver3", driver)
        assert runtime.run_workflow("driver3") == "leafy"
        logs = ssf.env.store.scan(ssf.env.invoke_log).items
        assert len(logs) == 1
        assert logs[0]["Result"] == "leafy"
        assert logs[0]["Callee"] == "leaf"

    def test_async_invoke_runs_to_completion(self, runtime):
        sink = runtime.create_env("sink-env", tables=["inbox"])

        def sink_handler(ctx, payload):
            ctx.write("inbox", payload["id"], payload["msg"])
            return "stored"

        runtime.register_ssf("sink", sink_handler, env=sink)

        def driver(ctx, payload):
            ctx.async_invoke("sink", {"id": "m1", "msg": "hello"})
            return "sent"

        runtime.register_ssf("driver4", driver)
        assert runtime.run_workflow("driver4") == "sent"
        # Let the async execution drain.
        runtime.kernel.run()
        assert sink.peek("inbox", "m1") == "hello"

    def test_recursive_ssf(self, runtime):
        def fact(ctx, payload):
            n = payload["n"]
            if n <= 1:
                return 1
            return n * ctx.sync_invoke("fact", {"n": n - 1})

        runtime.register_ssf("fact", fact)
        assert runtime.run_workflow("fact", {"n": 5}) == 120


class TestIntentLifecycle:
    def test_intent_marked_done(self, runtime):
        ssf = runtime.register_ssf("noop", lambda ctx, p: "ok")
        runtime.run_workflow("noop")
        intents = ssf.env.store.scan(ssf.env.intent_table).items
        assert len(intents) == 1
        assert intents[0]["Done"] is True
        assert intents[0]["Ret"] == "ok"
        assert "Pending" not in intents[0]

    def test_duplicate_delivery_returns_cached_result(self, runtime):
        calls = []

        def handler(ctx, payload):
            calls.append(1)
            count = ctx.read("kv", "c") or 0
            ctx.write("kv", "c", count + 1)
            return count + 1

        ssf = runtime.register_ssf("once", handler, tables=["kv"])

        def client():
            first = runtime.platform.sync_invoke(
                "once", {"kind": "call", "instance_id": "fixed-id",
                         "input": None})
            second = runtime.platform.sync_invoke(
                "once", {"kind": "call", "instance_id": "fixed-id",
                         "input": None})
            assert first == second == 1

        runtime.kernel.spawn(client)
        runtime.kernel.run()
        assert ssf.env.peek("kv", "c") == 1
